//! Offline consistency checking (fsck) for the rsfs on-disk format.
//!
//! The paper's Step 4 argues that a specification is the prerequisite for
//! trusting an implementation. The journal's crash spec covers *dynamic*
//! behaviour; this module is the *static* half: the well-formedness
//! invariant of an rsfs disk image, written as a total checker:
//!
//! - **I1** superblock is parseable and internally consistent;
//! - **I2** every block referenced by a live inode (direct, indirect, and
//!   indirect-pointed) is marked allocated in the block bitmap;
//! - **I3** no data block is referenced by two different owners;
//! - **I4** every inode marked live in the inode bitmap has a live mode in
//!   the table, and vice versa;
//! - **I5** every directory entry points to a live inode;
//! - **I6** every file's size fits within its allocated blocks;
//! - **I7** every live non-root inode is reachable from the root;
//! - **I8** the journal superblock parses, and no fully committed journal
//!   record is stranded beyond a tear in the descriptor chain (the walk is
//!   strictly bounded — a corrupt record's count can never make it loop).
//!
//! The crash-recovery test suite runs fsck over every recovered image, so
//! "recovers to an allowed model" is complemented by "recovers to a
//! well-formed tree".

use std::collections::{HashMap, HashSet, VecDeque};

use sk_ksim::block::BlockDevice;
use sk_ksim::errno::KResult;

use crate::journal::{fnv1a, COMMIT_MAGIC, DESC_MAGIC, JSB_MAGIC};
use crate::layout::{
    dirent_parse, DiskInode, Superblock, BLOCK_BITMAP, BLOCK_SIZE, INODES_PER_BLOCK, INODE_BITMAP,
    INODE_SIZE, INODE_TABLE, MODE_DIR, MODE_FREE, NDIRECT, NINDIRECT, ROOT_INO, SB_BLOCK,
};

/// One detected inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// I1: the superblock failed to parse or is inconsistent.
    BadSuperblock(String),
    /// I2: a referenced block is not marked allocated.
    UnallocatedBlockReferenced {
        /// Owning inode.
        ino: u64,
        /// The referenced block.
        blkno: u64,
    },
    /// I3: two owners reference the same block.
    DoublyReferencedBlock {
        /// The block in question.
        blkno: u64,
        /// First owner.
        first: u64,
        /// Second owner.
        second: u64,
    },
    /// I4: inode bitmap and table disagree.
    BitmapTableMismatch {
        /// The inode number.
        ino: u64,
        /// True if the bitmap says live but the table says free.
        bitmap_live: bool,
    },
    /// I5: a directory entry names a dead inode.
    DanglingDirent {
        /// The directory inode.
        dir: u64,
        /// The entry's name.
        name: String,
        /// The dead target.
        target: u64,
    },
    /// I5 (form): a directory's content failed to parse.
    CorruptDirectory {
        /// The directory inode.
        dir: u64,
    },
    /// I6: a file's size exceeds its allocation.
    SizeBeyondAllocation {
        /// The inode.
        ino: u64,
        /// Recorded size.
        size: u64,
    },
    /// I7: a live inode is unreachable from the root.
    Orphan {
        /// The unreachable inode.
        ino: u64,
    },
    /// I8: the journal superblock failed to parse or points outside the
    /// log area.
    BadJournalSuperblock(String),
    /// I8: the journal's descriptor chain is torn *with committed data
    /// beyond the tear* — a fully committed record sits past a gap the
    /// recovery walk can never cross, so it would be silently dropped.
    /// (A torn record with nothing valid beyond it is normal crash
    /// residue, not a finding: recovery discards it by design.)
    TornJournal {
        /// The sequence number recovery would expect at the tear.
        expected_seq: u64,
        /// Offset of the tear in the log area.
        off: u64,
    },
}

/// fsck result.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Everything found, in scan order.
    pub findings: Vec<Finding>,
    /// Live inodes scanned.
    pub inodes_checked: u64,
    /// Blocks accounted to owners.
    pub blocks_checked: u64,
}

impl FsckReport {
    /// True if the image satisfies the invariant.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

fn bit(bitmap: &[u8], i: u64) -> bool {
    bitmap[(i / 8) as usize] & (1 << (i % 8)) != 0
}

/// Runs the checker over a device holding an rsfs image.
pub fn fsck(dev: &dyn BlockDevice) -> KResult<FsckReport> {
    let mut report = FsckReport::default();
    let bs = dev.block_size();
    let mut blk = vec![0u8; bs];

    // I1: superblock.
    dev.read_block(SB_BLOCK, &mut blk)?;
    let sb = match Superblock::decode(&blk) {
        Ok(sb) => sb,
        Err(e) => {
            report.findings.push(Finding::BadSuperblock(format!("{e}")));
            return Ok(report);
        }
    };

    let mut block_bitmap = vec![0u8; bs];
    dev.read_block(BLOCK_BITMAP, &mut block_bitmap)?;
    let mut inode_bitmap = vec![0u8; bs];
    dev.read_block(INODE_BITMAP, &mut inode_bitmap)?;

    // Load the inode table.
    let mut inodes: HashMap<u64, DiskInode> = HashMap::new();
    let table_blocks = (sb.inode_count as usize).div_ceil(INODES_PER_BLOCK) as u64;
    for t in 0..table_blocks {
        dev.read_block(INODE_TABLE + t, &mut blk)?;
        for s in 0..INODES_PER_BLOCK {
            let ino = t * INODES_PER_BLOCK as u64 + s as u64;
            if ino == 0 || ino >= u64::from(sb.inode_count) {
                continue;
            }
            if let Ok(di) = DiskInode::decode(&blk[s * INODE_SIZE..(s + 1) * INODE_SIZE]) {
                inodes.insert(ino, di);
            }
        }
    }

    // I4: bitmap/table agreement.
    for ino in 2..u64::from(sb.inode_count) {
        let live_bitmap = bit(&inode_bitmap, ino);
        let live_table = inodes
            .get(&ino)
            .map(|d| d.mode != MODE_FREE)
            .unwrap_or(false);
        if live_bitmap != live_table {
            report.findings.push(Finding::BitmapTableMismatch {
                ino,
                bitmap_live: live_bitmap,
            });
        }
    }

    // Walk live inodes: block ownership (I2, I3, I6).
    let mut owner: HashMap<u64, u64> = HashMap::new();
    let mut claim = |blkno: u64, ino: u64, report: &mut FsckReport| {
        if blkno == 0 {
            return;
        }
        report.blocks_checked += 1;
        if !bit(&block_bitmap, blkno) {
            report
                .findings
                .push(Finding::UnallocatedBlockReferenced { ino, blkno });
        }
        if let Some(&first) = owner.get(&blkno) {
            report.findings.push(Finding::DoublyReferencedBlock {
                blkno,
                first,
                second: ino,
            });
        } else {
            owner.insert(blkno, ino);
        }
    };

    for (&ino, di) in &inodes {
        if di.mode == MODE_FREE {
            continue;
        }
        report.inodes_checked += 1;
        for d in di.direct {
            claim(u64::from(d), ino, &mut report);
        }
        if di.indirect != 0 {
            claim(u64::from(di.indirect), ino, &mut report);
            dev.read_block(u64::from(di.indirect), &mut blk)?;
            for i in 0..NINDIRECT {
                let e = u32::from_le_bytes(blk[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
                claim(u64::from(e), ino, &mut report);
            }
        }
        // I6: holes are legal, so the checkable bound is the format
        // maximum (nine direct + one single-indirect block's worth).
        let max_by_format = ((NDIRECT + NINDIRECT) * BLOCK_SIZE) as u64;
        if di.size > max_by_format {
            report
                .findings
                .push(Finding::SizeBeyondAllocation { ino, size: di.size });
        }
    }

    // I5 + I7: walk the tree from the root.
    let mut reachable: HashSet<u64> = HashSet::new();
    let mut queue = VecDeque::new();
    queue.push_back(ROOT_INO);
    reachable.insert(ROOT_INO);
    while let Some(dir) = queue.pop_front() {
        let Some(di) = inodes.get(&dir) else { continue };
        if di.mode != MODE_DIR {
            continue;
        }
        // Read directory content through the raw device.
        let mut content = vec![0u8; di.size as usize];
        let mut read = 0usize;
        let mut fblk = 0usize;
        while read < content.len() {
            let dblk = if fblk < NDIRECT {
                u64::from(di.direct[fblk])
            } else if di.indirect != 0 {
                dev.read_block(u64::from(di.indirect), &mut blk)?;
                let idx = fblk - NDIRECT;
                u64::from(u32::from_le_bytes(
                    blk[idx * 4..idx * 4 + 4].try_into().expect("4 bytes"),
                ))
            } else {
                0
            };
            let n = (content.len() - read).min(bs);
            if dblk != 0 {
                dev.read_block(dblk, &mut blk)?;
                content[read..read + n].copy_from_slice(&blk[..n]);
            }
            read += n;
            fblk += 1;
        }
        match dirent_parse(&content) {
            Ok(entries) => {
                for (target, name) in entries {
                    let live = inodes
                        .get(&target)
                        .map(|d| d.mode != MODE_FREE)
                        .unwrap_or(false);
                    if !live {
                        report
                            .findings
                            .push(Finding::DanglingDirent { dir, name, target });
                    } else if reachable.insert(target) {
                        queue.push_back(target);
                    }
                }
            }
            Err(_) => report.findings.push(Finding::CorruptDirectory { dir }),
        }
    }
    for (&ino, di) in &inodes {
        if di.mode != MODE_FREE && !reachable.contains(&ino) {
            report.findings.push(Finding::Orphan { ino });
        }
    }

    check_journal(dev, &sb, &mut report)?;

    report.findings.sort_by_key(|f| format!("{f:?}"));
    Ok(report)
}

/// Parses the record starting at log offset `off`; returns `Some((seq,
/// count))` only for a *fully committed* record (descriptor, in-range
/// count, sane home blknos, matching commit record, matching payload
/// checksum) whose sequence is at least `seq_min`.
fn committed_record_at(
    dev: &dyn BlockDevice,
    jstart: u64,
    area: u64,
    off: u64,
    seq_min: u64,
) -> KResult<Option<(u64, u64)>> {
    let bs = dev.block_size();
    let mut desc = vec![0u8; bs];
    dev.read_block(jstart + 1 + off, &mut desc)?;
    if u32::from_le_bytes(desc[0..4].try_into().expect("4 bytes")) != DESC_MAGIC {
        return Ok(None);
    }
    let dseq = u64::from_le_bytes(desc[4..12].try_into().expect("8 bytes"));
    if dseq < seq_min {
        return Ok(None);
    }
    let count = u64::from(u32::from_le_bytes(
        desc[12..16].try_into().expect("4 bytes"),
    ));
    if count == 0 || off + 2 + count > area {
        return Ok(None);
    }
    let claimed = u64::from_le_bytes(desc[bs - 8..].try_into().expect("8 bytes"));
    let mut blknos = Vec::with_capacity(count as usize);
    for i in 0..count as usize {
        let o = 16 + i * 8;
        let b = u64::from_le_bytes(desc[o..o + 8].try_into().expect("8 bytes"));
        if b >= jstart {
            return Ok(None);
        }
        blknos.push(b);
    }
    let mut commit = vec![0u8; bs];
    dev.read_block(jstart + 1 + off + 1 + count, &mut commit)?;
    if u32::from_le_bytes(commit[0..4].try_into().expect("4 bytes")) != COMMIT_MAGIC
        || u64::from_le_bytes(commit[4..12].try_into().expect("8 bytes")) != dseq
        || u64::from_le_bytes(commit[12..20].try_into().expect("8 bytes")) != claimed
    {
        return Ok(None);
    }
    let mut payload = Vec::with_capacity(count as usize);
    for i in 0..count {
        let mut data = vec![0u8; bs];
        dev.read_block(jstart + 1 + off + 1 + i, &mut data)?;
        payload.push(data);
    }
    let seq_bytes = dseq.to_le_bytes();
    let blkno_bytes: Vec<u8> = blknos.iter().flat_map(|b| b.to_le_bytes()).collect();
    let mut chunks: Vec<&[u8]> = vec![&seq_bytes, &blkno_bytes];
    for p in &payload {
        chunks.push(p.as_slice());
    }
    if fnv1a(&chunks) != claimed {
        return Ok(None);
    }
    Ok(Some((dseq, count)))
}

/// I8: the journal's descriptor chain. Mirrors the recovery walk but is
/// read-only and *strictly bounded*: along the valid chain each record
/// advances the offset by its full length, and past the first tear the
/// probe advances one block at a time — an adversarial `count` field can
/// make a record invalid, but never make the checker loop or run past
/// the log area. A tear is only a finding when a fully committed record
/// with a later sequence lies beyond it (committed data recovery can
/// never reach); a bare torn tail is the normal residue of a crash
/// mid-commit.
fn check_journal(dev: &dyn BlockDevice, sb: &Superblock, report: &mut FsckReport) -> KResult<()> {
    let jstart = u64::from(sb.journal_start);
    let jblocks = u64::from(sb.journal_blocks);
    if jblocks == 0 {
        report.findings.push(Finding::BadJournalSuperblock(
            "journal region is empty".into(),
        ));
        return Ok(());
    }
    let area = jblocks - 1;
    let bs = dev.block_size();
    let mut jsb = vec![0u8; bs];
    dev.read_block(jstart, &mut jsb)?;
    if u32::from_le_bytes(jsb[0..4].try_into().expect("4 bytes")) != JSB_MAGIC {
        report.findings.push(Finding::BadJournalSuperblock(
            "bad journal superblock magic".into(),
        ));
        return Ok(());
    }
    let tail_seq = u64::from_le_bytes(jsb[4..12].try_into().expect("8 bytes"));
    let tail_off = u64::from_le_bytes(jsb[12..20].try_into().expect("8 bytes"));
    if tail_off > area {
        report.findings.push(Finding::BadJournalSuperblock(format!(
            "journal tail offset {tail_off} beyond log area {area}"
        )));
        return Ok(());
    }

    // Follow the committed chain exactly as recovery would.
    let mut expected = tail_seq;
    let mut off = tail_off;
    while off + 3 <= area {
        match committed_record_at(dev, jstart, area, off, expected)? {
            Some((dseq, count)) if dseq == expected => {
                expected += 1;
                off += 2 + count;
            }
            _ => break,
        }
    }
    // Past the chain's end: any fully committed record with a sequence
    // recovery still expects is unreachable behind the tear.
    let mut probe = off;
    while probe + 3 <= area {
        if let Some((dseq, _)) = committed_record_at(dev, jstart, area, probe, expected)? {
            if dseq >= expected {
                report.findings.push(Finding::TornJournal {
                    expected_seq: expected,
                    off,
                });
                break;
            }
        }
        probe += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::MODE_REG;
    use crate::rsfs::{JournalMode, Rsfs};
    use sk_ksim::block::RamDisk;
    use sk_vfs::modular::FileSystem;
    use std::sync::Arc;

    fn populated() -> (Arc<RamDisk>, Arc<dyn BlockDevice>) {
        let ram = Arc::new(RamDisk::new(1024));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&ram) as Arc<dyn BlockDevice>;
        Rsfs::mkfs(&dev, 128, 64).unwrap();
        let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).unwrap();
        let root = fs.root_ino();
        let d = fs.mkdir(root, "dir").unwrap();
        let f = fs.create(d, "file").unwrap();
        fs.write(f, 0, &vec![3u8; 10_000]).unwrap();
        fs.create(root, "top").unwrap();
        // fsck reads the raw device: drain the deferred checkpoints so
        // home locations reflect every committed transaction.
        fs.sync().unwrap();
        (ram, dev)
    }

    #[test]
    fn freshly_made_fs_is_clean() {
        let (_ram, dev) = populated();
        let report = fsck(&*dev).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
        assert!(report.inodes_checked >= 4);
        assert!(report.blocks_checked >= 3);
    }

    #[test]
    fn fsck_after_heavy_churn_is_clean() {
        let ram = Arc::new(RamDisk::new(2048));
        let dev: Arc<dyn BlockDevice> = ram;
        Rsfs::mkfs(&dev, 128, 64).unwrap();
        let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).unwrap();
        let root = fs.root_ino();
        for round in 0..5 {
            for i in 0..20 {
                let f = fs.create(root, &format!("f{i}")).unwrap();
                fs.write(f, 0, &vec![round as u8; 2000 + i * 100]).unwrap();
            }
            for i in 0..20 {
                if i % 2 == 0 {
                    fs.unlink(root, &format!("f{i}")).unwrap();
                } else {
                    fs.rename(root, &format!("f{i}"), root, &format!("g{i}"))
                        .unwrap();
                }
            }
            for i in (1..20).step_by(2) {
                fs.unlink(root, &format!("g{i}")).unwrap();
            }
        }
        fs.sync().unwrap();
        let report = fsck(&*dev).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn detects_bitmap_table_mismatch() {
        let (ram, dev) = populated();
        // Clear a live inode's bitmap bit.
        let mut bm = vec![0u8; 4096];
        ram.read_block(INODE_BITMAP, &mut bm).unwrap();
        bm[0] &= !(1 << 2); // inode 2 is the first allocated after root
        ram.write_block(INODE_BITMAP, &bm).unwrap();
        let report = fsck(&*dev).unwrap();
        assert!(report.findings.iter().any(|f| matches!(
            f,
            Finding::BitmapTableMismatch {
                ino: 2,
                bitmap_live: false
            }
        )));
    }

    #[test]
    fn detects_dangling_dirent() {
        let (ram, dev) = populated();
        // Kill an inode in the table without touching its parent dir.
        let mut tbl = vec![0u8; 4096];
        ram.read_block(INODE_TABLE, &mut tbl).unwrap();
        let victim = 3usize; // "file" or "top"
        tbl[victim * INODE_SIZE..victim * INODE_SIZE + 2].copy_from_slice(&MODE_FREE.to_le_bytes());
        ram.write_block(INODE_TABLE, &tbl).unwrap();
        let report = fsck(&*dev).unwrap();
        assert!(
            report
                .findings
                .iter()
                .any(|f| matches!(f, Finding::DanglingDirent { .. })),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn detects_double_referenced_block() {
        let (ram, dev) = populated();
        // Point two inodes' direct[0] at the same block.
        let mut tbl = vec![0u8; 4096];
        ram.read_block(INODE_TABLE, &mut tbl).unwrap();
        // Find two live regular files and alias their first blocks.
        let mut live: Vec<usize> = Vec::new();
        for s in 2..64 {
            let mode =
                u16::from_le_bytes(tbl[s * INODE_SIZE..s * INODE_SIZE + 2].try_into().unwrap());
            let d0 = u32::from_le_bytes(
                tbl[s * INODE_SIZE + 24..s * INODE_SIZE + 28]
                    .try_into()
                    .unwrap(),
            );
            if mode == MODE_REG && d0 != 0 {
                live.push(s);
            }
        }
        if live.len() < 2 {
            // Ensure a second file with data exists for the scenario.
            drop(dev);
            let dev: Arc<dyn BlockDevice> = Arc::clone(&ram) as Arc<dyn BlockDevice>;
            let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).unwrap();
            let f = fs.create(fs.root_ino(), "second").unwrap();
            fs.write(f, 0, b"data").unwrap();
            fs.sync().unwrap();
            ram.read_block(INODE_TABLE, &mut tbl).unwrap();
            live.clear();
            for s in 2..64 {
                let mode =
                    u16::from_le_bytes(tbl[s * INODE_SIZE..s * INODE_SIZE + 2].try_into().unwrap());
                let d0 = u32::from_le_bytes(
                    tbl[s * INODE_SIZE + 24..s * INODE_SIZE + 28]
                        .try_into()
                        .unwrap(),
                );
                if mode == MODE_REG && d0 != 0 {
                    live.push(s);
                }
            }
            let (a, b) = (live[0], live[1]);
            let d0 = tbl[a * INODE_SIZE + 24..a * INODE_SIZE + 28].to_vec();
            tbl[b * INODE_SIZE + 24..b * INODE_SIZE + 28].copy_from_slice(&d0);
            ram.write_block(INODE_TABLE, &tbl).unwrap();
            let report = fsck(&*ram.clone()).unwrap();
            assert!(report
                .findings
                .iter()
                .any(|f| matches!(f, Finding::DoublyReferencedBlock { .. })));
            return;
        }
        let (a, b) = (live[0], live[1]);
        let d0 = tbl[a * INODE_SIZE + 24..a * INODE_SIZE + 28].to_vec();
        tbl[b * INODE_SIZE + 24..b * INODE_SIZE + 28].copy_from_slice(&d0);
        ram.write_block(INODE_TABLE, &tbl).unwrap();
        let report = fsck(&*dev).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::DoublyReferencedBlock { .. })));
    }

    #[test]
    fn detects_unallocated_block_reference() {
        let (ram, dev) = populated();
        // Clear a data block's bitmap bit while a file still points at it.
        let mut tbl = vec![0u8; 4096];
        ram.read_block(INODE_TABLE, &mut tbl).unwrap();
        let mut target = 0u32;
        for s in 2..64 {
            let mode =
                u16::from_le_bytes(tbl[s * INODE_SIZE..s * INODE_SIZE + 2].try_into().unwrap());
            let d0 = u32::from_le_bytes(
                tbl[s * INODE_SIZE + 24..s * INODE_SIZE + 28]
                    .try_into()
                    .unwrap(),
            );
            if mode == MODE_REG && d0 != 0 {
                target = d0;
                break;
            }
        }
        assert_ne!(target, 0);
        let mut bm = vec![0u8; 4096];
        ram.read_block(BLOCK_BITMAP, &mut bm).unwrap();
        bm[(target / 8) as usize] &= !(1 << (target % 8));
        ram.write_block(BLOCK_BITMAP, &bm).unwrap();
        let report = fsck(&*dev).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::UnallocatedBlockReferenced { .. })));
    }

    #[test]
    fn garbage_image_reports_bad_superblock() {
        let ram = RamDisk::new(64);
        let report = fsck(&ram).unwrap();
        assert_eq!(report.findings.len(), 1);
        assert!(matches!(report.findings[0], Finding::BadSuperblock(_)));
    }

    /// Reads the journal geometry off a populated image.
    fn journal_geom(ram: &RamDisk) -> (u64, u64) {
        let mut blk = vec![0u8; 4096];
        ram.read_block(SB_BLOCK, &mut blk).unwrap();
        let sb = Superblock::decode(&blk).unwrap();
        (u64::from(sb.journal_start), u64::from(sb.journal_blocks))
    }

    /// Builds a fully committed journal record (desc + payload + commit)
    /// for `seq` writing `fill` to home block 4.
    fn committed_record(seq: u64, fill: u8) -> Vec<Vec<u8>> {
        use crate::journal::{fnv1a, COMMIT_MAGIC, DESC_MAGIC};
        let bs = 4096;
        let payload = vec![fill; bs];
        let blkno = 4u64;
        let seq_bytes = seq.to_le_bytes();
        let blkno_bytes = blkno.to_le_bytes().to_vec();
        let checksum = fnv1a(&[&seq_bytes, &blkno_bytes, payload.as_slice()]);
        let mut desc = vec![0u8; bs];
        desc[0..4].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        desc[4..12].copy_from_slice(&seq_bytes);
        desc[12..16].copy_from_slice(&1u32.to_le_bytes());
        desc[16..24].copy_from_slice(&blkno.to_le_bytes());
        desc[bs - 8..].copy_from_slice(&checksum.to_le_bytes());
        let mut commit = vec![0u8; bs];
        commit[0..4].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
        commit[4..12].copy_from_slice(&seq_bytes);
        commit[12..20].copy_from_slice(&checksum.to_le_bytes());
        vec![desc, payload, commit]
    }

    /// A torn record at the tail with nothing committed beyond it is the
    /// normal residue of a crash mid-commit — not a finding.
    #[test]
    fn bare_torn_tail_record_is_clean() {
        use crate::journal::DESC_MAGIC;
        let (ram, dev) = populated();
        let (jstart, _) = journal_geom(&ram);
        let mut blk = vec![0u8; 4096];
        ram.read_block(jstart, &mut blk).unwrap();
        let tail_off = u64::from_le_bytes(blk[12..20].try_into().unwrap());
        // A descriptor with the expected seq but an absurd count: torn.
        let tail_seq = u64::from_le_bytes(blk[4..12].try_into().unwrap());
        let mut desc = vec![0u8; 4096];
        desc[0..4].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        desc[4..12].copy_from_slice(&tail_seq.to_le_bytes());
        desc[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        ram.write_block(jstart + 1 + tail_off, &desc).unwrap();
        let report = fsck(&*dev).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    /// A committed record stranded beyond a tear is exactly the data-loss
    /// image the journal-abort fix prevents; fsck must flag it — and must
    /// terminate despite the torn descriptor's adversarial count.
    #[test]
    fn committed_record_beyond_tear_is_flagged() {
        use crate::journal::DESC_MAGIC;
        let (ram, dev) = populated();
        let (jstart, _) = journal_geom(&ram);
        let mut blk = vec![0u8; 4096];
        ram.read_block(jstart, &mut blk).unwrap();
        let tail_seq = u64::from_le_bytes(blk[4..12].try_into().unwrap());
        let tail_off = u64::from_le_bytes(blk[12..20].try_into().unwrap());
        // The gap: a torn descriptor (bad count) for the expected seq…
        let mut desc = vec![0u8; 4096];
        desc[0..4].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        desc[4..12].copy_from_slice(&tail_seq.to_le_bytes());
        desc[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        ram.write_block(jstart + 1 + tail_off, &desc).unwrap();
        // …followed by a fully committed record for the NEXT seq, as the
        // pre-abort journal would have produced after a failed batch.
        for (i, b) in committed_record(tail_seq + 1, 0xEE).iter().enumerate() {
            ram.write_block(jstart + 1 + tail_off + 3 + i as u64, b)
                .unwrap();
        }
        let report = fsck(&*dev).unwrap();
        assert!(
            report
                .findings
                .iter()
                .any(|f| matches!(f, Finding::TornJournal { .. })),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn corrupt_journal_superblock_is_flagged() {
        let (ram, dev) = populated();
        let (jstart, _) = journal_geom(&ram);
        let mut jsb = vec![0u8; 4096];
        ram.read_block(jstart, &mut jsb).unwrap();
        jsb[0] ^= 0xFF;
        ram.write_block(jstart, &jsb).unwrap();
        let report = fsck(&*dev).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::BadJournalSuperblock(_))));
    }
}
