//! jbd2-style write-ahead journal with **group commit** and **deferred
//! checkpointing**.
//!
//! The journal occupies the tail of the device:
//!
//! ```text
//! jsb                 journal superblock: magic, tail_seq, tail_off
//! jsb+1 .. jsb+blocks log area: committed transactions back to back,
//!                     each   descriptor | payload .. | commit record
//! ```
//!
//! Unlike the seed's one-transaction-at-a-time design, the log area holds
//! **multiple committed, un-checkpointed transactions**. `tail_seq` /
//! `tail_off` in the superblock name the oldest transaction whose home
//! blocks may not be durable yet; everything from there to the in-memory
//! head is replayed, in sequence order, by [`Journal::recover`].
//!
//! **Group commit.** Concurrent committers merge into one open
//! transaction, exactly as jbd2 batches handles into its running
//! transaction: each operation *joins* the open transaction (taking a
//! monotonic order token) before it publishes its block images, and the
//! first committer to find no leader becomes the leader, writing a single
//! descriptor/payload/commit record — one flush barrier — for every
//! member of the batch. Followers block on a condvar until their token's
//! batch is durable. Batches always cover a token-contiguous prefix of
//! operations, so a crash leaves a prefix of the operation history — never
//! a later operation without an earlier one it may depend on.
//!
//! **Deferred checkpoint.** `commit` returns once the journal record is
//! durable; home-location writes are deferred. [`Journal::checkpoint`]
//! (driven by the `Flusher` workqueue, or forced when the log area fills)
//! drains transactions oldest-first: homes are written and flushed, then
//! the superblock tail advances. Until then the journal is the only
//! durable copy, so the log area is bounded and append forces a full
//! drain when a record does not fit. Checkpoint is the **only** writer
//! of journaled blocks' home locations: the file system keeps such
//! blocks `Delay`-pinned in the buffer cache (writeback and eviction
//! skip them) until the [`RetireHook`] reports their transactions
//! retired, and a per-block newest-committed-seq map keeps a partial
//! drain from ever writing an image home when a later pending
//! transaction holds a newer one — the pair rules out home-write
//! reordering between checkpoint and cache writeback entirely.
//!
//! **Recovery**: read the superblock; starting at `(tail_seq, tail_off)`,
//! walk forward parsing descriptor/commit pairs with strictly increasing
//! sequence numbers and matching payload checksums. Replay every valid
//! transaction's payload to its home locations *in sequence order*, then
//! retire them by advancing the tail. The walk stops at the first invalid
//! or stale record: a torn transaction never committed and is discarded.
//! Replay is idempotent, so crashing *during recovery* is also covered,
//! and an `EIO` mid-replay propagates as a reportable error — the retry
//! replays from the unchanged tail.
//!
//! **Journal abort.** A failed record write leaves a gap in the log at a
//! consumed sequence number; recovery's forward walk would stop there, so
//! any record appended afterwards could be acknowledged and then lost.
//! Like ext4, the journal therefore goes *sticky read-only*
//! ([`Journal::is_aborted`]): every later commit and checkpoint fails
//! with `EROFS` until the file system is remounted, at which point
//! recovery replays exactly the durable prefix. An `EIO` during
//! *checkpoint* is the benign counterpart: the drained transactions stay
//! registered, the on-disk tail stays put, and no Delay pin is released,
//! so the checkpoint simply retries.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use sk_ksim::block::BlockDevice;
use sk_ksim::errno::{Errno, KResult};
use sk_ksim::lock::{LockRegistry, TrackedMutex, TrackedMutexGuard};

/// Journal-superblock magic.
pub const JSB_MAGIC: u32 = 0x4A_5342; // "JSB"
/// Descriptor magic.
pub const DESC_MAGIC: u32 = 0x4A_4453; // "JDS"
/// Commit-record magic.
pub const COMMIT_MAGIC: u32 = 0x4A_434D; // "JCM"

/// FNV-1a 64-bit, the journal's payload checksum.
pub fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Journal usage counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    /// Logical transactions committed (one per `commit` caller).
    pub commits: u64,
    /// Operations staged into the running transaction without waiting
    /// for durability (the async-commit path).
    pub stages: u64,
    /// Running-transaction commits forced by log pressure: the staged
    /// payload reached record capacity, so the staging operation ran
    /// leader duty itself instead of waiting for the timer or an fsync.
    pub pressure_commits: u64,
    /// Journal records written — group commit merges many commits into
    /// one batch, so `batches <= commits`.
    pub batches: u64,
    /// Blocks journaled (payload only).
    pub blocks_journaled: u64,
    /// Transactions replayed by recovery.
    pub replays: u64,
    /// Flush barriers issued.
    pub barriers: u64,
    /// Transactions checkpointed (homes written, tail advanced).
    pub checkpoints: u64,
    /// Checkpoints forced by log-area pressure rather than the flusher.
    pub forced_checkpoints: u64,
    /// Ascending contiguous home-block runs checkpoint coalesced into a
    /// single vectored `write_blocks` call (runs of length ≥ 2 only).
    pub coalesced_runs: u64,
}

/// What recovery found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Journal was empty/retired; nothing to do.
    Clean,
    /// One or more committed transactions were replayed.
    Replayed {
        /// Number of payload blocks written home.
        blocks: usize,
    },
    /// An uncommitted (torn) transaction was discarded.
    DiscardedTorn,
}

/// One committed, un-checkpointed transaction (a journal record).
struct TxnRecord {
    seq: u64,
    /// Offset of the descriptor in the log area.
    off: u64,
    /// Record size in blocks (descriptor + payload + commit).
    len: u64,
    /// Home images, kept in memory so checkpoint never re-reads the log.
    writes: Vec<(u64, Vec<u8>)>,
    /// Home block numbers with *per-member* multiplicity — one entry per
    /// block per operation merged into this record. The retire hook must
    /// decrement exactly as many pins as op publishes took; the merged
    /// `writes` (one entry per block) under-counts whenever two ops in
    /// one batch touched the same block, which leaked pins and left
    /// buffers `Delay`-flagged forever.
    pins: Vec<u64>,
}

/// Log-area bookkeeping: where the next record goes and which records
/// still await checkpoint.
struct Space {
    head_off: u64,
    tail_seq: u64,
    tail_off: u64,
    txns: VecDeque<TxnRecord>,
    /// Per home block, the sequence number of the newest committed
    /// transaction that journaled it (jbd2-style). Checkpoint consults
    /// this to never write an image home when a newer committed image
    /// exists in a later, still-pending transaction; entries retire with
    /// their transactions.
    newest_seq: HashMap<u64, u64>,
}

/// Callback invoked after checkpoint retires transactions: receives the
/// home block numbers of every retired transaction, with multiplicity (a
/// block appears once per *operation* that journaled it — matching the
/// per-op publish pins, even when group commit merged several ops'
/// images of one block into a single record entry). The
/// file system hangs its `Delay`-pin release off this, so cache
/// writeback stays out of the home-write path until the journal is done
/// with a block.
pub type RetireHook = Box<dyn Fn(&[u64]) + Send + Sync>;

/// One member of the open transaction: an operation's block images,
/// tagged with its join-order token.
struct Member {
    token: u64,
    writes: Vec<(u64, Vec<u8>)>,
    /// True for [`OpHandle::commit`] members, whose caller blocks on the
    /// batch result via `completed`. Staged ([`OpHandle::stage`]) members
    /// have no waiter: their result is never inserted into `completed`
    /// (a batch failure surfaces as the sticky journal abort instead).
    sync: bool,
}

/// The open (merging) transaction plus the leader/follower machinery.
struct GroupState {
    /// Next join token; tokens order operations exactly as the file
    /// system staged them.
    next_token: u64,
    /// Tokens of joined operations that have not yet handed in their
    /// writes. The leader flushes the member prefix *below the oldest
    /// open token* — so a commit waits only for operations that joined
    /// before it, never for the stream of operations that keep joining
    /// behind it (which is what a global "outstanding == 0" barrier
    /// degenerates into once N reactors stage concurrently).
    open: BTreeSet<u64>,
    /// Every token below this bound has its writes durable in the log
    /// (or contributed none). Advanced by the leader after each record;
    /// `commit_running` waits for it to pass the tokens issued before
    /// the call instead of waiting for the whole group to drain.
    flushed_upto: u64,
    /// Contributed members of the open transaction, in token order.
    members: Vec<Member>,
    /// Whether a leader is currently flushing a batch.
    leader_running: bool,
    /// Next on-disk sequence number.
    next_seq: u64,
    /// Results of finished batches, keyed by member token; entries are
    /// reaped as their waiters pick them up.
    completed: HashMap<u64, KResult<()>>,
}

/// RAII handle for an operation that has joined the open transaction via
/// [`Journal::begin_op`]. Dropping it without committing aborts the join
/// so the group leader never waits for a dead operation.
pub struct OpHandle<'a> {
    journal: &'a Journal,
    token: u64,
    done: bool,
}

impl OpHandle<'_> {
    /// This operation's position in the global commit order.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Publishes `writes` (home blkno → full block image) as one atomic
    /// transaction and blocks until the batch containing it is durable in
    /// the journal. Home writes are deferred to checkpoint.
    pub fn commit(mut self, writes: Vec<(u64, Vec<u8>)>) -> KResult<()> {
        self.done = true;
        self.journal.commit_op(self.token, writes)
    }

    /// Publishes `writes` into the **running transaction** and returns as
    /// soon as staging is published — without waiting for a journal
    /// record or flush barrier. Durability arrives later, when the
    /// running transaction commits: on the kupdate-style timer, under
    /// log pressure (in which case this very call runs leader duty), or
    /// at an explicit [`Journal::commit_running`] (fsync/sync).
    ///
    /// Validation errors (`EINVAL`/`ENOSPC`) and a pre-existing abort
    /// (`EROFS`) still surface synchronously, so a failed stage leaves
    /// nothing in the running transaction.
    pub fn stage(mut self, writes: Vec<(u64, Vec<u8>)>) -> KResult<()> {
        self.done = true;
        self.journal.stage_op(self.token, writes)
    }
}

impl Drop for OpHandle<'_> {
    fn drop(&mut self) {
        if !self.done {
            let mut g = self.journal.group.lock();
            g.open.remove(&self.token);
            self.journal.group_cv.notify_all();
        }
    }
}

/// The write-ahead journal over a device region `[start, start+blocks)`.
pub struct Journal {
    dev: Arc<dyn BlockDevice>,
    start: u64,
    blocks: u64,
    group: TrackedMutex<GroupState>,
    group_cv: Condvar,
    space: TrackedMutex<Space>,
    /// Serializes checkpointers (the flusher and forced drains). The
    /// one journal class allowed to be held across blocking device I/O:
    /// its whole purpose is to serialize the home-write drain.
    ckpt_lock: TrackedMutex<()>,
    /// Held across the retire callback (which may take file-system
    /// locks), so lockdep must see it: it orders against the fs classes.
    retire_hook: TrackedMutex<Option<RetireHook>>,
    /// Leaf counters; never held across another acquisition, left raw.
    stats: Mutex<JournalStats>,
    registry: Arc<LockRegistry>,
    /// ext4-style journal abort: set when a record write fails partway.
    ///
    /// The leader consumes a sequence number and reserves log space
    /// *before* the record IO, so a failed [`Journal::write_batch`] leaves
    /// a gap (garbage or a partial record) in the log at the sequence
    /// recovery will expect next. Any record appended after that gap is
    /// unreachable: recovery's forward walk stops at the gap, so a later
    /// commit could be acknowledged and then silently lost after a crash.
    /// The only safe continuation is none — once set, every subsequent
    /// commit and checkpoint fails with `EROFS` and the caller must
    /// remount, which replays exactly the durable prefix.
    aborted: AtomicBool,
}

impl Journal {
    /// Log-area size in blocks (everything after the superblock).
    fn area(&self) -> u64 {
        self.blocks - 1
    }

    /// Maximum payload blocks per journal record for this geometry.
    pub fn capacity(&self) -> usize {
        // jsb + descriptor + commit leave blocks-3 payload slots.
        (self.blocks as usize).saturating_sub(3)
    }

    /// Formats the journal region (sequence starts at 1, tail at offset 0).
    pub fn format(dev: &Arc<dyn BlockDevice>, start: u64, blocks: u64) -> KResult<()> {
        if blocks < 4 {
            return Err(Errno::EINVAL);
        }
        Self::write_jsb(dev, start, 1, 0)?;
        dev.flush()
    }

    /// Opens a formatted journal. **Run [`Journal::recover`] first** after
    /// an unclean shutdown — open assumes a recovered (or clean) log.
    pub fn open(dev: Arc<dyn BlockDevice>, start: u64, blocks: u64) -> KResult<Journal> {
        Self::open_with_registry(dev, start, blocks, LockRegistry::new_disabled())
    }

    /// Opens a formatted journal with its locks reporting to `registry`,
    /// so the mounted system's lockdep graph covers the commit path.
    pub fn open_with_registry(
        dev: Arc<dyn BlockDevice>,
        start: u64,
        blocks: u64,
        registry: Arc<LockRegistry>,
    ) -> KResult<Journal> {
        let bs = dev.block_size();
        let mut jsb = vec![0u8; bs];
        dev.read_block(start, &mut jsb)?;
        if u32::from_le_bytes(jsb[0..4].try_into().expect("4 bytes")) != JSB_MAGIC {
            return Err(Errno::EUCLEAN);
        }
        let tail_seq = u64::from_le_bytes(jsb[4..12].try_into().expect("8 bytes"));
        let tail_off = u64::from_le_bytes(jsb[12..20].try_into().expect("8 bytes"));
        // A fully-drained tail may sit exactly at the end of the area.
        if tail_off > blocks - 1 {
            return Err(Errno::EUCLEAN);
        }
        Ok(Journal {
            dev,
            start,
            blocks,
            group: TrackedMutex::new(
                &registry,
                "journal.group",
                GroupState {
                    next_token: 1,
                    open: BTreeSet::new(),
                    flushed_upto: 1,
                    members: Vec::new(),
                    leader_running: false,
                    next_seq: tail_seq,
                    completed: HashMap::new(),
                },
            ),
            group_cv: Condvar::new(),
            space: TrackedMutex::new(
                &registry,
                "journal.space",
                Space {
                    head_off: tail_off,
                    tail_seq,
                    tail_off,
                    txns: VecDeque::new(),
                    newest_seq: HashMap::new(),
                },
            ),
            ckpt_lock: TrackedMutex::new_io_ok(&registry, "journal.ckpt", ()),
            retire_hook: TrackedMutex::new(&registry, "journal.retire", None),
            stats: Mutex::new(JournalStats::default()),
            registry,
            aborted: AtomicBool::new(false),
        })
    }

    /// The lock registry the journal's locks report to.
    pub fn lock_registry(&self) -> &Arc<LockRegistry> {
        &self.registry
    }

    /// True once the journal has aborted after a failed record write.
    /// An aborted journal refuses all further commits and checkpoints
    /// with `EROFS`; recovery at the next mount replays the durable
    /// prefix of the log.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
    }

    /// Next on-disk sequence number (the open transaction's).
    pub fn seq(&self) -> u64 {
        self.group.lock().next_seq
    }

    /// Committed transactions awaiting checkpoint.
    pub fn pending_checkpoints(&self) -> usize {
        self.space.lock().txns.len()
    }

    /// Newest *committed* image of `blkno` still owned by the journal
    /// (committed but not yet checkpointed), if any. A failed commit
    /// that already published its images into shared cache buffers uses
    /// this to roll those buffers back to the last durable content when
    /// the buffer is also pinned by an earlier transaction and so
    /// cannot simply be invalidated.
    pub fn committed_image(&self, blkno: u64) -> Option<Vec<u8>> {
        let sp = self.space.lock();
        let seq = *sp.newest_seq.get(&blkno)?;
        let txn = sp.txns.iter().rev().find(|t| t.seq == seq)?;
        txn.writes
            .iter()
            .rev()
            .find(|(b, _)| *b == blkno)
            .map(|(_, data)| data.clone())
    }

    /// Usage counters.
    pub fn stats(&self) -> JournalStats {
        *self.stats.lock()
    }

    /// Installs the transaction-retire callback (see [`RetireHook`]).
    /// Called with no journal locks the caller could conflict with; the
    /// hook may take file-system locks and touch the buffer cache.
    pub fn set_retire_hook(&self, hook: impl Fn(&[u64]) + Send + Sync + 'static) {
        *self.retire_hook.lock() = Some(Box::new(hook));
    }

    fn write_jsb(dev: &Arc<dyn BlockDevice>, start: u64, seq: u64, tail_off: u64) -> KResult<()> {
        let mut jsb = vec![0u8; dev.block_size()];
        jsb[0..4].copy_from_slice(&JSB_MAGIC.to_le_bytes());
        jsb[4..12].copy_from_slice(&seq.to_le_bytes());
        jsb[12..20].copy_from_slice(&tail_off.to_le_bytes());
        dev.write_block(start, &jsb)
    }

    /// Joins the open transaction, fixing this operation's place in the
    /// global commit order. Call while holding whatever lock orders the
    /// caller's state updates, so token order matches state order; then
    /// release that lock before [`OpHandle::commit`] so commits can merge.
    pub fn begin_op(&self) -> OpHandle<'_> {
        let mut g = self.group.lock();
        let token = g.next_token;
        g.next_token += 1;
        g.open.insert(token);
        OpHandle {
            journal: self,
            token,
            done: false,
        }
    }

    /// Commits `writes` (home blkno → full block image) atomically.
    ///
    /// Duplicate block numbers are allowed; the last image wins. Empty
    /// transactions are a no-op. Oversize transactions return `ENOSPC` —
    /// the caller must keep operations within journal capacity.
    pub fn commit(&self, writes: &[(u64, Vec<u8>)]) -> KResult<()> {
        self.begin_op().commit(writes.to_vec())
    }

    /// Validates one operation's writes, returning them deduplicated
    /// (last image wins, stable home order).
    fn validate(&self, writes: Vec<(u64, Vec<u8>)>) -> KResult<Vec<(u64, Vec<u8>)>> {
        let bs = self.dev.block_size();
        let mut dedup: Vec<(u64, Vec<u8>)> = Vec::with_capacity(writes.len());
        let mut index: HashMap<u64, usize> = HashMap::with_capacity(writes.len());
        for (blkno, data) in writes {
            if data.len() != bs {
                return Err(Errno::EINVAL);
            }
            if blkno >= self.start {
                // Nothing may journal a write into the journal itself.
                return Err(Errno::EINVAL);
            }
            match index.get(&blkno) {
                Some(&at) => dedup[at].1 = data,
                None => {
                    index.insert(blkno, dedup.len());
                    dedup.push((blkno, data));
                }
            }
        }
        if dedup.len() > self.capacity() {
            return Err(Errno::ENOSPC);
        }
        Ok(dedup)
    }

    fn commit_op(&self, token: u64, writes: Vec<(u64, Vec<u8>)>) -> KResult<()> {
        let mut g = self.group.lock();
        if self.is_aborted() {
            g.open.remove(&token);
            self.group_cv.notify_all();
            return Err(Errno::EROFS);
        }
        if writes.is_empty() {
            g.open.remove(&token);
            self.group_cv.notify_all();
            return Ok(());
        }
        let dedup = match self.validate(writes) {
            Ok(d) => d,
            Err(e) => {
                g.open.remove(&token);
                self.group_cv.notify_all();
                return Err(e);
            }
        };
        g.members.push(Member {
            token,
            writes: dedup,
            sync: true,
        });
        g.open.remove(&token);
        self.group_cv.notify_all();

        // Leader/follower: the first committer to find no leader flushes
        // batches until the open transaction drains; everyone else waits
        // for their token's batch.
        loop {
            if let Some(res) = g.completed.remove(&token) {
                self.stats.lock().commits += 1;
                return res;
            }
            if !g.leader_running {
                g.leader_running = true;
                self.lead(&mut g);
                g.leader_running = false;
                self.group_cv.notify_all();
            } else {
                g.wait(&self.group_cv);
            }
        }
    }

    /// Stages one operation's writes into the running transaction (see
    /// [`OpHandle::stage`]). Returns once the member is published; the
    /// only device IO on this path is a log-pressure commit, when the
    /// staged payload has reached record capacity and the staging
    /// operation itself drains the running transaction.
    fn stage_op(&self, token: u64, writes: Vec<(u64, Vec<u8>)>) -> KResult<()> {
        let mut g = self.group.lock();
        if self.is_aborted() {
            g.open.remove(&token);
            self.group_cv.notify_all();
            return Err(Errno::EROFS);
        }
        if writes.is_empty() {
            g.open.remove(&token);
            self.group_cv.notify_all();
            return Ok(());
        }
        let dedup = match self.validate(writes) {
            Ok(d) => d,
            Err(e) => {
                g.open.remove(&token);
                self.group_cv.notify_all();
                return Err(e);
            }
        };
        g.members.push(Member {
            token,
            writes: dedup,
            sync: false,
        });
        g.open.remove(&token);
        self.group_cv.notify_all();
        self.stats.lock().stages += 1;

        // Log pressure: once the staged payload could fill a whole
        // record, commit now rather than letting the running transaction
        // grow without bound between timer ticks. The staging operation
        // runs leader duty itself (jbd2 ditto: the handle that fills the
        // transaction kicks the commit).
        if self.staged_fraction(&g) >= 1.0 && !g.leader_running {
            self.stats.lock().pressure_commits += 1;
            g.leader_running = true;
            self.lead(&mut g);
            g.leader_running = false;
            self.group_cv.notify_all();
            if self.is_aborted() {
                // Our own member may have been in the failed batch; the
                // caller must treat the operation as not acknowledged.
                return Err(Errno::EROFS);
            }
        }
        Ok(())
    }

    /// Commits the running transaction and waits for its flush barrier —
    /// the fsync/sync durability point. On return every operation staged
    /// before this call is durable in the journal (or `EROFS` if the
    /// journal aborted, in which case some staged operations were lost
    /// and only a remount recovers the durable prefix).
    ///
    /// Also the kupdate-style timer commit entry point: with nothing
    /// staged it is a no-op (no barrier).
    pub fn commit_running(&self) -> KResult<()> {
        let mut g = self.group.lock();
        // Durability bound: everything staged before this call has a
        // token below `upto`. Waiting for `flushed_upto` to pass it —
        // rather than for the whole group to drain — means this barrier
        // never waits on operations that join *after* it, so concurrent
        // reactors can keep staging without starving the fsync path.
        let upto = g.next_token;
        loop {
            if self.is_aborted() {
                return Err(Errno::EROFS);
            }
            if g.flushed_upto >= upto {
                return Ok(());
            }
            // With nothing staged, leading again is futile while an
            // older operation still holds its handle open: lead() would
            // return immediately and this loop would spin with the group
            // lock held, blocking the very hand-in it needs. Wait for
            // the hand-in notification instead.
            let blocked_on_open = g.members.is_empty() && g.open.first().is_some_and(|&t| t < upto);
            if blocked_on_open {
                g.wait(&self.group_cv);
                continue;
            }
            if !g.leader_running {
                g.leader_running = true;
                self.lead(&mut g);
                g.leader_running = false;
                self.group_cv.notify_all();
            } else {
                g.wait(&self.group_cv);
            }
        }
    }

    /// Number of operations currently staged in the running transaction.
    pub fn staged_ops(&self) -> usize {
        self.group.lock().members.len()
    }

    /// Payload blocks staged in the open transaction, as a fraction of
    /// record capacity. This is the *exact* expression the stage path
    /// tests against `1.0` for its pressure commit ([`Journal::stage_op`]
    /// runs leader duty once the fraction reaches one), so external
    /// throttles reading [`Journal::log_pressure`] see the same value the
    /// leader-duty path acts on.
    fn staged_fraction(&self, g: &GroupState) -> f32 {
        let staged: usize = g.members.iter().map(|m| m.writes.len()).sum();
        staged as f32 / self.capacity().max(1) as f32
    }

    /// Log pressure in `[0, 1]`-ish: how close the journal is to being
    /// forced into synchronous work.
    ///
    /// The max of two fractions:
    ///
    /// - **staged fraction** — open-transaction payload vs. record
    ///   capacity. At `1.0` the next stage runs a pressure commit
    ///   (leader duty on the staging thread), turning the async op path
    ///   synchronous.
    /// - **area fraction** — committed-but-unretired record blocks vs.
    ///   the log area. At `1.0` the next record write must force
    ///   checkpoints to reclaim space.
    ///
    /// Both locks are taken *sequentially* (group, then space, neither
    /// nested in the other), so this is safe to poll from any context
    /// that may already order against either class — e.g. the ring
    /// reactor between batches.
    pub fn log_pressure(&self) -> f32 {
        let staged = {
            let g = self.group.lock();
            self.staged_fraction(&g)
        };
        let area = {
            let sp = self.space.lock();
            let used: u64 = sp.txns.iter().map(|t| t.len).sum();
            used as f32 / self.area().max(1) as f32
        };
        staged.max(area)
    }

    /// Leader duty: flush token-prefix batches until no members remain.
    /// Called (and returns) with the group lock held; drops it around
    /// device IO.
    fn lead(&self, g: &mut TrackedMutexGuard<'_, GroupState>) {
        loop {
            if g.members.is_empty() {
                // Nothing staged: every token below the oldest still-open
                // handle (or below next_token if none) is durable or
                // contributed nothing.
                let upto = g.open.first().copied().unwrap_or(g.next_token);
                g.flushed_upto = g.flushed_upto.max(upto);
                return;
            }
            if self.is_aborted() {
                // Members that joined before the abort landed: refuse them
                // all — their writes never reach the log. Only sync
                // members have a waiter to tell; staged members' loss is
                // what the sticky abort itself reports.
                let refused: Vec<Member> = g.members.drain(..).collect();
                for m in refused {
                    if m.sync {
                        g.completed.insert(m.token, Err(Errno::EROFS));
                    }
                }
                self.group_cv.notify_all();
                return;
            }
            g.members.sort_by_key(|m| m.token);
            // A batch must be a token-contiguous prefix of operations,
            // so only members *below the oldest open token* may flush.
            // If the oldest staged member is still behind an open
            // handle, wait for that hand-in — a strictly older
            // operation, so the bound only ever advances and this wait
            // never blocks on work that joined after the leader.
            let bound = g.open.first().copied().unwrap_or(u64::MAX);
            if g.members[0].token >= bound {
                g.wait(&self.group_cv);
                continue;
            }
            // Take the longest prefix of members (below `bound`) whose
            // merged image set fits one journal record. Only block
            // *numbers* are counted here — building the merged images
            // clones whole block payloads, so that work happens outside
            // the group lock, where it cannot stall committers joining
            // the next transaction.
            let mut seen: HashSet<u64> = HashSet::new();
            let mut taken = 0;
            for m in g.members.iter() {
                if m.token >= bound {
                    break;
                }
                let fresh = m.writes.iter().filter(|(b, _)| !seen.contains(b)).count();
                if taken > 0 && seen.len() + fresh > self.capacity() {
                    break;
                }
                for (b, _) in &m.writes {
                    seen.insert(*b);
                }
                taken += 1;
            }
            let batch: Vec<Member> = g.members.drain(..taken).collect();
            // After this batch lands, every token below all three of
            // these is durable or contributed nothing: `bound` (older
            // opens would violate it), the next remaining member, and
            // the tokens issued so far (later joins get larger ones).
            let next_remaining = g.members.first().map(|m| m.token).unwrap_or(u64::MAX);
            let issued = g.next_token;
            let pins: Vec<u64> = batch
                .iter()
                .flat_map(|m| m.writes.iter().map(|(b, _)| *b))
                .collect();
            // Only the token and sync flag survive the merge; the images
            // themselves are moved into the record payload below.
            let meta: Vec<(u64, bool)> = batch.iter().map(|m| (m.token, m.sync)).collect();
            let merged_len = seen.len();
            let seq = g.next_seq;
            g.next_seq += 1;

            // Image merge + device IO without the group lock: later
            // committers can keep joining the (new) open transaction
            // meanwhile. Last image wins per block, stable home order;
            // the members are owned here, so merging moves payloads
            // instead of cloning them.
            let res = g.unlocked(|| {
                let mut merged: Vec<(u64, Vec<u8>)> = Vec::with_capacity(merged_len);
                let mut index: HashMap<u64, usize> = HashMap::with_capacity(merged_len);
                for m in batch {
                    for (blkno, data) in m.writes {
                        match index.get(&blkno) {
                            Some(&at) => merged[at].1 = data,
                            None => {
                                index.insert(blkno, merged.len());
                                merged.push((blkno, data));
                            }
                        }
                    }
                }
                self.write_batch(seq, merged, pins)
            });
            if res.is_ok() {
                self.stats.lock().batches += 1;
                let upto = bound.min(next_remaining).min(issued);
                g.flushed_upto = g.flushed_upto.max(upto);
            } else {
                // The sequence number is consumed and the log may hold a
                // partial record at it; nothing appended after that gap
                // would ever be replayed. Abort rather than lose an
                // acknowledged later commit.
                self.abort();
            }
            for (token, sync) in meta {
                if sync {
                    g.completed.insert(token, res);
                }
            }
            self.group_cv.notify_all();
        }
    }

    /// Appends one record (descriptor + payload + commit) to the log and
    /// flushes. On success the transaction is registered for checkpoint.
    fn write_batch(&self, seq: u64, writes: Vec<(u64, Vec<u8>)>, pins: Vec<u64>) -> KResult<()> {
        let bs = self.dev.block_size();
        let count = writes.len();
        let need = count as u64 + 2;

        // Reserve log space, forcing a drain when the record won't fit.
        let off = loop {
            let mut sp = self.space.lock();
            if sp.head_off + need <= self.area() {
                let off = sp.head_off;
                sp.head_off += need;
                break off;
            }
            if sp.txns.is_empty() {
                // Fully drained: rewind the log to offset 0. The on-disk
                // tail must move first, or a crash would recover from a
                // stale offset and miss the record we are about to write.
                if need > self.area() {
                    return Err(Errno::ENOSPC);
                }
                // The superblock write is blocking device I/O, so the
                // space lock is dropped around it (lockdep finding:
                // `journal.space` held across `write_block`). Safe:
                // write_batch runs under a single leader at a time, and
                // a concurrent checkpoint of an empty txn queue is a
                // no-op, so nothing can move the offsets while unlocked.
                let tail_seq = sp.tail_seq;
                sp.unlocked(|| {
                    self.registry.note_blocking_io("write_block");
                    Self::write_jsb(&self.dev, self.start, tail_seq, 0)?;
                    self.registry.note_blocking_io("flush");
                    self.dev.flush()
                })?;
                self.stats.lock().barriers += 1;
                sp.head_off = 0;
                sp.tail_off = 0;
                continue;
            }
            drop(sp);
            self.checkpoint_inner(usize::MAX, true)?;
        };

        // Checksum covers seq, home blknos, and payload bytes.
        let seq_bytes = seq.to_le_bytes();
        let blkno_bytes: Vec<u8> = writes.iter().flat_map(|(b, _)| b.to_le_bytes()).collect();
        let mut chunks: Vec<&[u8]> = vec![&seq_bytes, &blkno_bytes];
        for (_, data) in &writes {
            chunks.push(data.as_slice());
        }
        let checksum = fnv1a(&chunks);

        // Assemble the whole record and write it as one vectored extent.
        let mut record = vec![0u8; need as usize * bs];
        {
            let desc = &mut record[0..bs];
            desc[0..4].copy_from_slice(&DESC_MAGIC.to_le_bytes());
            desc[4..12].copy_from_slice(&seq_bytes);
            desc[12..16].copy_from_slice(&(count as u32).to_le_bytes());
            for (i, (blkno, _)) in writes.iter().enumerate() {
                let o = 16 + i * 8;
                desc[o..o + 8].copy_from_slice(&blkno.to_le_bytes());
            }
            desc[bs - 8..].copy_from_slice(&checksum.to_le_bytes());
        }
        for (i, (_, data)) in writes.iter().enumerate() {
            record[(1 + i) * bs..(2 + i) * bs].copy_from_slice(data);
        }
        {
            let commit = &mut record[(1 + count) * bs..];
            commit[0..4].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
            commit[4..12].copy_from_slice(&seq_bytes);
            commit[12..20].copy_from_slice(&checksum.to_le_bytes());
        }
        self.registry.note_blocking_io("write_blocks");
        self.dev
            .write_blocks(self.start + 1 + off, need as usize, &record)?;
        self.registry.note_blocking_io("flush");
        self.dev.flush()?;

        let mut stats = self.stats.lock();
        stats.blocks_journaled += count as u64;
        stats.barriers += 1;
        drop(stats);

        let mut sp = self.space.lock();
        for (blkno, _) in &writes {
            // Batches register in ascending seq order (one leader at a
            // time), so a plain insert keeps the newest seq per block.
            sp.newest_seq.insert(*blkno, seq);
        }
        sp.txns.push_back(TxnRecord {
            seq,
            off,
            len: need,
            writes,
            pins,
        });
        Ok(())
    }

    /// Checkpoints up to `max_txns` transactions oldest-first: writes
    /// their home blocks, flushes, then advances the on-disk tail.
    /// Returns the number of transactions drained.
    pub fn checkpoint(&self, max_txns: usize) -> KResult<usize> {
        self.checkpoint_inner(max_txns, false)
    }

    /// Drains every pending checkpoint.
    pub fn checkpoint_all(&self) -> KResult<usize> {
        self.checkpoint_inner(usize::MAX, false)
    }

    fn checkpoint_inner(&self, max_txns: usize, forced: bool) -> KResult<usize> {
        // (seq, off, len, writes, pins) per drained transaction.
        type DrainEntry = (u64, u64, u64, Vec<(u64, Vec<u8>)>, Vec<u64>);
        if self.is_aborted() {
            return Err(Errno::EROFS);
        }
        let _serialize = self.ckpt_lock.lock();
        // Snapshot the drain set together with the newest-committed-seq
        // map; records stay registered (and the tail on disk) until
        // their homes are durable, so a crash mid-drain still replays
        // them.
        let (drain, newest): (Vec<DrainEntry>, HashMap<u64, u64>) = {
            let sp = self.space.lock();
            (
                sp.txns
                    .iter()
                    .take(max_txns)
                    .map(|t| (t.seq, t.off, t.len, t.writes.clone(), t.pins.clone()))
                    .collect(),
                sp.newest_seq.clone(),
            )
        };
        if drain.is_empty() {
            return Ok(0);
        }
        let last = drain.last().expect("non-empty");
        let (last_seq, last_off, last_len) = (last.0, last.1, last.2);
        // One home write per block, newest drained image wins — and none
        // at all for a block whose newest committed image sits in a
        // later, still-pending transaction: writing our older image
        // could regress the home past what that transaction (or a
        // recovery replaying it) has already put there. The skip is
        // race-free, not merely narrow: `Delay` pins keep journaled
        // blocks out of cache writeback until retire, so home writes
        // happen only on this `ckpt_lock`-serialized path, and a
        // transaction committing after our snapshot cannot reach its
        // home before its own (later) checkpoint.
        let mut homes: BTreeMap<u64, &Vec<u8>> = BTreeMap::new();
        for (_, _, _, writes, _) in &drain {
            for (blkno, data) in writes {
                homes.insert(*blkno, data);
            }
        }
        // `homes` is a BTreeMap, so targets come out ascending: coalesce
        // contiguous runs into one vectored `write_blocks` each (the
        // common case — a file's data blocks plus its metadata cluster —
        // collapses from N device round trips to a handful).
        let bs = self.dev.block_size();
        let targets: Vec<(u64, &Vec<u8>)> = homes
            .iter()
            .filter(|(blkno, _)| newest.get(blkno).copied().unwrap_or(0) <= last_seq)
            .map(|(blkno, data)| (*blkno, *data))
            .collect();
        let mut coalesced_runs = 0u64;
        self.registry.note_blocking_io("write_block");
        let mut i = 0;
        while i < targets.len() {
            let mut j = i + 1;
            while j < targets.len() && targets[j].0 == targets[j - 1].0 + 1 {
                j += 1;
            }
            if j - i == 1 {
                self.dev.write_block(targets[i].0, targets[i].1)?;
            } else {
                let mut run = Vec::with_capacity((j - i) * bs);
                for (_, data) in &targets[i..j] {
                    run.extend_from_slice(data);
                }
                self.dev.write_blocks(targets[i].0, j - i, &run)?;
                coalesced_runs += 1;
            }
            i = j;
        }
        self.registry.note_blocking_io("flush");
        self.dev.flush()?;
        Self::write_jsb(&self.dev, self.start, last_seq + 1, last_off + last_len)?;
        self.dev.flush()?;

        let mut sp = self.space.lock();
        for _ in 0..drain.len() {
            sp.txns.pop_front();
        }
        sp.tail_seq = last_seq + 1;
        sp.tail_off = last_off + last_len;
        sp.newest_seq.retain(|_, seq| *seq > last_seq);
        drop(sp);

        let mut stats = self.stats.lock();
        stats.checkpoints += drain.len() as u64;
        stats.barriers += 2;
        stats.coalesced_runs += coalesced_runs;
        if forced {
            stats.forced_checkpoints += 1;
        }
        drop(stats);

        // Tell the file system which transactions' blocks retired, so it
        // can release the Delay pins that kept writeback away.
        if let Some(hook) = self.retire_hook.lock().as_ref() {
            let retired: Vec<u64> = drain
                .iter()
                .flat_map(|(_, _, _, _, pins)| pins.iter().copied())
                .collect();
            hook(&retired);
        }
        Ok(drain.len())
    }

    /// Scans the journal after an unclean shutdown and replays every
    /// committed-but-unretired transaction in sequence order.
    pub fn recover(
        dev: &Arc<dyn BlockDevice>,
        start: u64,
        blocks: u64,
    ) -> KResult<RecoveryOutcome> {
        let bs = dev.block_size();
        let area = blocks - 1;
        let mut jsb = vec![0u8; bs];
        dev.read_block(start, &mut jsb)?;
        if u32::from_le_bytes(jsb[0..4].try_into().expect("4 bytes")) != JSB_MAGIC {
            return Err(Errno::EUCLEAN);
        }
        let tail_seq = u64::from_le_bytes(jsb[4..12].try_into().expect("8 bytes"));
        let tail_off = u64::from_le_bytes(jsb[12..20].try_into().expect("8 bytes"));
        if tail_off > area {
            return Err(Errno::EUCLEAN);
        }

        // Walk committed records forward from the tail.
        let mut expected = tail_seq;
        let mut off = tail_off;
        let mut torn = false;
        let mut replay: Vec<(Vec<u64>, Vec<Vec<u8>>)> = Vec::new();
        'scan: while off + 3 <= area {
            let mut desc = vec![0u8; bs];
            dev.read_block(start + 1 + off, &mut desc)?;
            if u32::from_le_bytes(desc[0..4].try_into().expect("4 bytes")) != DESC_MAGIC {
                break;
            }
            let dseq = u64::from_le_bytes(desc[4..12].try_into().expect("8 bytes"));
            if dseq != expected {
                // Residue of an already-retired (older) transaction.
                break;
            }
            let count = u32::from_le_bytes(desc[12..16].try_into().expect("4 bytes")) as u64;
            if count == 0 || off + 2 + count > area {
                torn = true;
                break;
            }
            let claimed = u64::from_le_bytes(desc[bs - 8..].try_into().expect("8 bytes"));
            let mut blknos = Vec::with_capacity(count as usize);
            for i in 0..count as usize {
                let o = 16 + i * 8;
                let b = u64::from_le_bytes(desc[o..o + 8].try_into().expect("8 bytes"));
                if b >= start {
                    torn = true;
                    break 'scan;
                }
                blknos.push(b);
            }

            // Commit record must match.
            let mut commit = vec![0u8; bs];
            dev.read_block(start + 1 + off + 1 + count, &mut commit)?;
            if u32::from_le_bytes(commit[0..4].try_into().expect("4 bytes")) != COMMIT_MAGIC
                || u64::from_le_bytes(commit[4..12].try_into().expect("8 bytes")) != expected
                || u64::from_le_bytes(commit[12..20].try_into().expect("8 bytes")) != claimed
            {
                torn = true;
                break;
            }

            // Verify the payload checksum.
            let mut payload = Vec::with_capacity(count as usize);
            for i in 0..count {
                let mut data = vec![0u8; bs];
                dev.read_block(start + 1 + off + 1 + i, &mut data)?;
                payload.push(data);
            }
            let seq_bytes = expected.to_le_bytes();
            let blkno_bytes: Vec<u8> = blknos.iter().flat_map(|b| b.to_le_bytes()).collect();
            let mut chunks: Vec<&[u8]> = vec![&seq_bytes, &blkno_bytes];
            for p in &payload {
                chunks.push(p.as_slice());
            }
            if fnv1a(&chunks) != claimed {
                torn = true;
                break;
            }

            replay.push((blknos, payload));
            expected += 1;
            off += 2 + count;
        }

        if replay.is_empty() {
            return Ok(if torn {
                RecoveryOutcome::DiscardedTorn
            } else {
                RecoveryOutcome::Clean
            });
        }

        // Replay in sequence order, then retire the whole run.
        let mut blocks_replayed = 0;
        for (blknos, payload) in &replay {
            for (blkno, data) in blknos.iter().zip(payload.iter()) {
                dev.write_block(*blkno, data)?;
                blocks_replayed += 1;
            }
        }
        dev.flush()?;
        Self::write_jsb(dev, start, expected, off)?;
        dev.flush()?;
        Ok(RecoveryOutcome::Replayed {
            blocks: blocks_replayed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sk_ksim::block::{CrashDevice, RamDisk, BLOCK_SIZE};

    const JSTART: u64 = 56;
    const JBLOCKS: u64 = 8;

    /// Captures the pending-write set at each flush barrier, so a test can
    /// enumerate crash images per barrier interval.
    struct Tap {
        inner: Arc<CrashDevice<Arc<RamDisk>>>,
        script: Mutex<Vec<Vec<sk_ksim::block::PendingWrite>>>,
    }
    impl BlockDevice for Tap {
        fn num_blocks(&self) -> u64 {
            self.inner.num_blocks()
        }
        fn block_size(&self) -> usize {
            self.inner.block_size()
        }
        fn read_block(&self, b: u64, buf: &mut [u8]) -> KResult<()> {
            self.inner.read_block(b, buf)
        }
        fn write_block(&self, b: u64, buf: &[u8]) -> KResult<()> {
            self.inner.write_block(b, buf)
        }
        fn flush(&self) -> KResult<()> {
            self.script.lock().push(self.inner.pending_writes());
            self.inner.flush()
        }
        fn stats(&self) -> sk_ksim::block::DeviceStats {
            self.inner.stats()
        }
    }

    fn fresh() -> (Arc<dyn BlockDevice>, Journal) {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(64));
        Journal::format(&dev, JSTART, JBLOCKS).unwrap();
        let j = Journal::open(Arc::clone(&dev), JSTART, JBLOCKS).unwrap();
        (dev, j)
    }

    fn img(fill: u8) -> Vec<u8> {
        vec![fill; BLOCK_SIZE]
    }

    #[test]
    fn commit_then_checkpoint_writes_home_blocks() {
        let (dev, j) = fresh();
        j.commit(&[(3, img(7)), (5, img(9))]).unwrap();
        // Checkpoint is deferred: commit only made the journal durable.
        assert_eq!(j.pending_checkpoints(), 1);
        let mut out = vec![0u8; BLOCK_SIZE];
        dev.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 0, "home write deferred until checkpoint");
        assert_eq!(j.checkpoint_all().unwrap(), 1);
        dev.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 7);
        dev.read_block(5, &mut out).unwrap();
        assert_eq!(out[0], 9);
        assert_eq!(j.seq(), 2);
        assert_eq!(j.stats().commits, 1);
        assert_eq!(j.stats().batches, 1);
        assert_eq!(j.pending_checkpoints(), 0);
    }

    #[test]
    fn log_rewind_never_holds_space_lock_across_device_io() {
        // Regression for a real lockdep finding: the fully-drained rewind
        // in write_batch used to write the journal superblock (and flush)
        // while still holding `journal.space`. Reverting the unlocked()
        // window re-flags HeldAcrossIo here.
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(64));
        Journal::format(&dev, JSTART, JBLOCKS).unwrap();
        let j = Journal::open_with_registry(Arc::clone(&dev), JSTART, JBLOCKS, LockRegistry::new())
            .unwrap();
        // Area is 7; a 1-payload record takes 3. Two records leave
        // head_off = 6; after a full drain the third must rewind.
        j.commit(&[(3, img(1))]).unwrap();
        j.commit(&[(4, img(2))]).unwrap();
        j.checkpoint_all().unwrap();
        j.commit(&[(5, img(3))]).unwrap();
        // 3 record barriers + 2 checkpoint barriers + 1 rewind barrier:
        // proves the rewind branch actually executed.
        assert_eq!(j.stats().barriers, 6);
        assert!(
            j.lock_registry().violations().is_empty(),
            "journal hot path must be lockdep-clean: {:?}",
            j.lock_registry().violations()
        );
    }

    #[test]
    fn duplicate_blocks_last_wins() {
        let (dev, j) = fresh();
        j.commit(&[(3, img(1)), (3, img(2))]).unwrap();
        j.checkpoint_all().unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        dev.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 2);
        assert_eq!(j.stats().blocks_journaled, 1);
    }

    #[test]
    fn oversize_and_misdirected_transactions_rejected() {
        let (_, j) = fresh();
        let too_many: Vec<(u64, Vec<u8>)> = (0..6).map(|i| (i, img(1))).collect();
        assert_eq!(j.commit(&too_many), Err(Errno::ENOSPC));
        assert_eq!(j.commit(&[(JSTART + 1, img(1))]), Err(Errno::EINVAL));
        assert_eq!(j.commit(&[(1, vec![0u8; 10])]), Err(Errno::EINVAL));
        assert!(j.commit(&[]).is_ok(), "empty commit is a no-op");
    }

    #[test]
    fn log_fills_then_forces_checkpoint_and_wraps() {
        // Area is 7 blocks; each 1-payload record takes 3. Two fit; the
        // third forces a drain and rewinds to offset 0.
        let (dev, j) = fresh();
        for i in 0..5u64 {
            j.commit(&[(3 + i, img(10 + i as u8))]).unwrap();
        }
        assert!(j.stats().forced_checkpoints >= 1, "log pressure drained");
        j.checkpoint_all().unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        for i in 0..5u64 {
            dev.read_block(3 + i, &mut out).unwrap();
            assert_eq!(out[0], 10 + i as u8, "commit {i} reached home");
        }
        // After a full drain the journal is clean.
        assert_eq!(
            Journal::recover(&dev, JSTART, JBLOCKS).unwrap(),
            RecoveryOutcome::Clean
        );
    }

    #[test]
    fn recovery_replays_multiple_txns_in_sequence_order() {
        let (dev, j) = fresh();
        // Two committed, un-checkpointed txns touching the same block:
        // replay must apply seq 1 then seq 2, ending on the newer image.
        j.commit(&[(3, img(1)), (4, img(7))]).unwrap();
        j.commit(&[(3, img(2))]).unwrap();
        assert_eq!(j.pending_checkpoints(), 2);
        drop(j);
        let outcome = Journal::recover(&dev, JSTART, JBLOCKS).unwrap();
        assert_eq!(outcome, RecoveryOutcome::Replayed { blocks: 3 });
        let mut out = vec![0u8; BLOCK_SIZE];
        dev.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 2, "later txn wins after ordered replay");
        dev.read_block(4, &mut out).unwrap();
        assert_eq!(out[0], 7);
        // Idempotent.
        assert_eq!(
            Journal::recover(&dev, JSTART, JBLOCKS).unwrap(),
            RecoveryOutcome::Clean
        );
    }

    /// Regression for the checkpoint TOCTOU: a partial drain must never
    /// write an image home when a newer committed image for the same
    /// block sits in a later, still-pending transaction — neither the
    /// running system nor a crash right after the partial drain may
    /// observe the older image winning.
    #[test]
    fn partial_checkpoint_skips_blocks_with_newer_committed_images() {
        let (dev, j) = fresh();
        j.commit(&[(3, img(1))]).unwrap(); // seq 1
        j.commit(&[(3, img(2)), (4, img(9))]).unwrap(); // seq 2: newer image of 3
        assert_eq!(j.checkpoint(1).unwrap(), 1);
        let mut out = vec![0u8; BLOCK_SIZE];
        dev.read_block(3, &mut out).unwrap();
        assert_eq!(
            out[0], 0,
            "home write skipped: seq 2 holds the newer committed image"
        );
        // A crash here recovers from the advanced tail and replays seq 2.
        let outcome = Journal::recover(&dev, JSTART, JBLOCKS).unwrap();
        assert_eq!(outcome, RecoveryOutcome::Replayed { blocks: 2 });
        dev.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 2, "recovery lands on the newest committed image");
        dev.read_block(4, &mut out).unwrap();
        assert_eq!(out[0], 9);
    }

    /// Without a crash, the rest of the drain delivers the newer image.
    #[test]
    fn full_drain_after_partial_checkpoint_writes_newest_image() {
        let (dev, j) = fresh();
        j.commit(&[(3, img(1))]).unwrap();
        j.commit(&[(3, img(2)), (4, img(9))]).unwrap();
        assert_eq!(j.checkpoint(1).unwrap(), 1);
        assert_eq!(j.checkpoint_all().unwrap(), 1);
        let mut out = vec![0u8; BLOCK_SIZE];
        dev.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 2);
        assert_eq!(j.pending_checkpoints(), 0);
        assert_eq!(
            Journal::recover(&dev, JSTART, JBLOCKS).unwrap(),
            RecoveryOutcome::Clean
        );
    }

    /// The retire hook reports every retired transaction's blocks, with
    /// multiplicity, in drain order.
    #[test]
    fn retire_hook_reports_retired_blocks() {
        let (_, j) = fresh();
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        j.set_retire_hook(move |blknos| sink.lock().extend_from_slice(blknos));
        j.commit(&[(3, img(1))]).unwrap();
        j.commit(&[(3, img(2)), (4, img(9))]).unwrap();
        j.checkpoint_all().unwrap();
        assert_eq!(*seen.lock(), vec![3, 3, 4]);
    }

    #[test]
    fn group_commit_merges_concurrent_committers() {
        use std::sync::Barrier;
        use std::thread;

        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(128));
        Journal::format(&dev, 64, 32).unwrap();
        let j = Arc::new(Journal::open(Arc::clone(&dev), 64, 32).unwrap());
        let threads = 8;
        let barrier = Arc::new(Barrier::new(threads));
        let mut handles = Vec::new();
        for t in 0..threads as u64 {
            let j = Arc::clone(&j);
            let barrier = Arc::clone(&barrier);
            handles.push(thread::spawn(move || {
                barrier.wait();
                j.commit(&[(t, img(100 + t as u8))]).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = j.stats();
        assert_eq!(s.commits, 8);
        assert!(
            s.batches <= s.commits,
            "batches {} > commits {}",
            s.batches,
            s.commits
        );
        assert_eq!(s.blocks_journaled, 8, "every image journaled once");
        j.checkpoint_all().unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        for t in 0..threads as u64 {
            dev.read_block(t, &mut out).unwrap();
            assert_eq!(out[0], 100 + t as u8, "thread {t}'s commit reached home");
        }
        assert_eq!(
            Journal::recover(&dev, 64, 32).unwrap(),
            RecoveryOutcome::Clean
        );
    }

    #[test]
    fn abandoned_join_does_not_wedge_the_group() {
        let (_, j) = fresh();
        {
            let _handle = j.begin_op(); // dropped without committing
        }
        j.commit(&[(3, img(5))]).unwrap();
        assert_eq!(j.stats().commits, 1);
    }

    #[test]
    fn recovery_clean_on_fresh_journal() {
        let (dev, _) = fresh();
        assert_eq!(
            Journal::recover(&dev, JSTART, JBLOCKS).unwrap(),
            RecoveryOutcome::Clean
        );
    }

    #[test]
    fn crash_before_commit_record_discards() {
        let ram = Arc::new(RamDisk::new(64));
        let crash: Arc<dyn BlockDevice> = Arc::new(CrashDevice::new(Arc::clone(&ram)));
        Journal::format(&crash, JSTART, JBLOCKS).unwrap();
        // A descriptor with the expected sequence but no commit record is
        // a torn transaction and must be discarded.
        let bs = BLOCK_SIZE;
        let mut desc = vec![0u8; bs];
        desc[0..4].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        desc[4..12].copy_from_slice(&1u64.to_le_bytes());
        desc[12..16].copy_from_slice(&1u32.to_le_bytes());
        desc[16..24].copy_from_slice(&3u64.to_le_bytes());
        crash.write_block(JSTART + 1, &desc).unwrap();
        crash.flush().unwrap();
        // Home block untouched; recovery must discard the torn txn.
        let ram_dyn: Arc<dyn BlockDevice> = ram;
        let outcome = Journal::recover(&ram_dyn, JSTART, JBLOCKS).unwrap();
        assert_eq!(outcome, RecoveryOutcome::DiscardedTorn);
        let mut out = vec![0u8; bs];
        ram_dyn.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 0, "home never written");
    }

    #[test]
    fn crash_after_commit_before_checkpoint_replays() {
        // Commit leaves the txn in the journal with the checkpoint
        // deferred; crashing now models the pre-checkpoint window.
        let ram = Arc::new(RamDisk::new(64));
        let crash = Arc::new(CrashDevice::new(Arc::clone(&ram)));
        let crash_dyn: Arc<dyn BlockDevice> = Arc::clone(&crash) as Arc<dyn BlockDevice>;
        Journal::format(&crash_dyn, JSTART, JBLOCKS).unwrap();
        let j = Journal::open(Arc::clone(&crash_dyn), JSTART, JBLOCKS).unwrap();
        j.commit(&[(3, img(42))]).unwrap();
        crash.crash();
        crash.recover();
        let ram_dyn: Arc<dyn BlockDevice> = ram;
        let outcome = Journal::recover(&ram_dyn, JSTART, JBLOCKS).unwrap();
        assert_eq!(outcome, RecoveryOutcome::Replayed { blocks: 1 });
        let mut out = vec![0u8; BLOCK_SIZE];
        ram_dyn.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 42, "journal replayed the deferred home write");
        // And recovery is idempotent.
        let outcome2 = Journal::recover(&ram_dyn, JSTART, JBLOCKS).unwrap();
        assert_eq!(outcome2, RecoveryOutcome::Clean);
    }

    /// Regression for the log-gap bug: a failed record write consumes a
    /// sequence number and leaves garbage in the reserved log space, so a
    /// *later* successful commit would sit beyond a gap recovery never
    /// crosses — acknowledged, then lost. The fix is the ext4-style
    /// abort: after a failed record write the journal refuses everything
    /// with `EROFS`. Reverting the abort makes the second commit below
    /// succeed, and the final assertions (commit 20 acknowledged ⇒
    /// commit 20 recovered) fail.
    #[test]
    fn failed_record_write_aborts_the_journal() {
        use sk_ksim::block::{DiskFaultConfig, FaultyDisk};
        let ram = Arc::new(RamDisk::new(64));
        let faulty = Arc::new(FaultyDisk::new(
            Arc::clone(&ram),
            DiskFaultConfig::default(),
            0,
        ));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
        Journal::format(&dev, JSTART, JBLOCKS).unwrap();
        let j = Journal::open(Arc::clone(&dev), JSTART, JBLOCKS).unwrap();
        j.commit(&[(3, img(10))]).unwrap();
        // Tear into commit 2's record IO (desc, payload, commit = writes
        // 0..3 from here): the payload write fails.
        faulty.fail_nth_write(1);
        assert_eq!(j.commit(&[(4, img(20))]), Err(Errno::EIO));
        assert!(j.is_aborted());
        // Everything after the gap is refused, not silently lost.
        assert_eq!(j.commit(&[(5, img(30))]), Err(Errno::EROFS));
        assert_eq!(j.checkpoint_all(), Err(Errno::EROFS));
        // Remount-time recovery replays exactly the durable prefix.
        let ram_dyn: Arc<dyn BlockDevice> = ram;
        let outcome = Journal::recover(&ram_dyn, JSTART, JBLOCKS).unwrap();
        assert_eq!(outcome, RecoveryOutcome::Replayed { blocks: 1 });
        let mut out = vec![0u8; BLOCK_SIZE];
        ram_dyn.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 10, "acknowledged commit survived");
        ram_dyn.read_block(4, &mut out).unwrap();
        assert_eq!(out[0], 0, "failed commit never half-applied");
        ram_dyn.read_block(5, &mut out).unwrap();
        assert_eq!(out[0], 0, "refused commit never applied");
    }

    /// An `EIO` during checkpoint's home writes must not retire the
    /// transaction, advance the tail, or fire the retire hook — the
    /// checkpoint is simply retryable, and a crash in between still
    /// replays from the unchanged tail.
    #[test]
    fn eio_during_checkpoint_retires_nothing_and_retries() {
        use sk_ksim::block::{DiskFaultConfig, FaultyDisk};
        let ram = Arc::new(RamDisk::new(64));
        let faulty = Arc::new(FaultyDisk::new(
            Arc::clone(&ram),
            DiskFaultConfig::default(),
            0,
        ));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
        Journal::format(&dev, JSTART, JBLOCKS).unwrap();
        let j = Journal::open(Arc::clone(&dev), JSTART, JBLOCKS).unwrap();
        let retired: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&retired);
        j.set_retire_hook(move |blknos| sink.lock().extend_from_slice(blknos));
        j.commit(&[(3, img(7))]).unwrap();
        faulty.fail_nth_write(0); // the home write of block 3
        assert_eq!(j.checkpoint_all(), Err(Errno::EIO));
        assert_eq!(j.pending_checkpoints(), 1, "txn not retired");
        assert!(retired.lock().is_empty(), "retire hook not fired");
        assert!(!j.is_aborted(), "checkpoint EIO is retryable, not fatal");
        // A crash now still replays from the unchanged on-disk tail.
        let check = Arc::new(RamDisk::new(64));
        check.restore(&ram.snapshot()).unwrap();
        let check_dyn: Arc<dyn BlockDevice> = check;
        assert_eq!(
            Journal::recover(&check_dyn, JSTART, JBLOCKS).unwrap(),
            RecoveryOutcome::Replayed { blocks: 1 }
        );
        // And the live journal's retry completes the drain.
        assert_eq!(j.checkpoint_all().unwrap(), 1);
        assert_eq!(*retired.lock(), vec![3]);
        let mut out = vec![0u8; BLOCK_SIZE];
        ram.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 7);
    }

    /// An `EIO` mid-replay surfaces as a reportable error and leaves the
    /// tail untouched, so a retried recovery replays the same run.
    #[test]
    fn eio_during_recovery_is_reportable_and_retryable() {
        use sk_ksim::block::{DiskFaultConfig, FaultyDisk};
        let ram = Arc::new(RamDisk::new(64));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&ram) as Arc<dyn BlockDevice>;
        Journal::format(&dev, JSTART, JBLOCKS).unwrap();
        let j = Journal::open(Arc::clone(&dev), JSTART, JBLOCKS).unwrap();
        j.commit(&[(3, img(42)), (5, img(43))]).unwrap();
        drop(j);
        let faulty = Arc::new(FaultyDisk::new(
            Arc::clone(&ram),
            DiskFaultConfig::default(),
            0,
        ));
        let fdyn: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
        // Fail the second home write of the replay.
        faulty.fail_nth_write(1);
        assert_eq!(Journal::recover(&fdyn, JSTART, JBLOCKS), Err(Errno::EIO));
        // Retry heals: the tail never advanced past the failed replay.
        assert_eq!(
            Journal::recover(&fdyn, JSTART, JBLOCKS).unwrap(),
            RecoveryOutcome::Replayed { blocks: 2 }
        );
        let mut out = vec![0u8; BLOCK_SIZE];
        ram.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 42);
        ram.read_block(5, &mut out).unwrap();
        assert_eq!(out[0], 43);
        assert_eq!(
            Journal::recover(&fdyn, JSTART, JBLOCKS).unwrap(),
            RecoveryOutcome::Clean
        );
    }

    /// The commit record's meaningful bytes (magic, seq, checksum) all sit
    /// in sector 0 and the descriptor's claimed checksum sits in the LAST
    /// sector, so a sector-torn record write can never produce a
    /// descriptor/commit pair that validates: torn-write enumeration over
    /// a whole commit must always recover old-or-new, never a mix.
    #[test]
    fn torn_record_writes_never_replay_partially() {
        use sk_core::spec::crash::{crash_images, CrashPolicy};

        let ram = Arc::new(RamDisk::new(64));
        let crash = Arc::new(CrashDevice::new(Arc::clone(&ram)));
        let crash_dyn: Arc<dyn BlockDevice> = Arc::clone(&crash) as Arc<dyn BlockDevice>;
        Journal::format(&crash_dyn, JSTART, JBLOCKS).unwrap();
        crash_dyn.write_block(3, &img(1)).unwrap();
        crash_dyn.write_block(5, &img(2)).unwrap();
        crash_dyn.flush().unwrap();
        let base = ram.snapshot();

        let tap = Arc::new(Tap {
            inner: Arc::clone(&crash),
            script: Mutex::new(Vec::new()),
        });
        let tap_dyn: Arc<dyn BlockDevice> = Arc::clone(&tap) as Arc<dyn BlockDevice>;
        let j = Journal::open(Arc::clone(&tap_dyn), JSTART, JBLOCKS).unwrap();
        j.commit(&[(3, img(11)), (5, img(12))]).unwrap();
        j.checkpoint_all().unwrap();

        let script = tap.script.lock().clone();
        let mut checked = 0;
        let mut applied_base = base.clone();
        for interval in &script {
            for image in crash_images(&applied_base, interval, BLOCK_SIZE, CrashPolicy::Torn) {
                let scratch = Arc::new(RamDisk::new(64));
                scratch.restore(&image).unwrap();
                let scratch_dyn: Arc<dyn BlockDevice> = scratch;
                Journal::recover(&scratch_dyn, JSTART, JBLOCKS).unwrap();
                let mut b3 = vec![0u8; BLOCK_SIZE];
                let mut b5 = vec![0u8; BLOCK_SIZE];
                scratch_dyn.read_block(3, &mut b3).unwrap();
                scratch_dyn.read_block(5, &mut b5).unwrap();
                let old = b3[0] == 1 && b5[0] == 2;
                let new = b3[0] == 11 && b5[0] == 12;
                assert!(
                    old || new,
                    "torn image {checked}: b3={} b5={}",
                    b3[0],
                    b5[0]
                );
                checked += 1;
            }
            for w in interval {
                let off = w.blkno as usize * BLOCK_SIZE;
                applied_base[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
            }
        }
        assert!(checked > 30, "checked {checked} torn images");
    }

    #[test]
    fn corrupted_payload_checksum_discards() {
        let ram = Arc::new(RamDisk::new(64));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&ram) as Arc<dyn BlockDevice>;
        Journal::format(&dev, JSTART, JBLOCKS).unwrap();
        let j = Journal::open(Arc::clone(&dev), JSTART, JBLOCKS).unwrap();
        j.commit(&[(3, img(42))]).unwrap();
        // The txn awaits checkpoint; corrupt its journaled payload.
        let mut payload = vec![0u8; BLOCK_SIZE];
        ram.read_block(JSTART + 2, &mut payload).unwrap();
        payload[100] ^= 0xFF;
        ram.write_block(JSTART + 2, &payload).unwrap();
        let outcome = Journal::recover(&dev, JSTART, JBLOCKS).unwrap();
        assert_eq!(outcome, RecoveryOutcome::DiscardedTorn);
    }

    #[test]
    fn exhaustive_prefix_crash_check() {
        // The flagship property: for EVERY prefix of the device-write
        // sequence of a commit + checkpoint, recovery yields either the
        // old or the new contents of the home blocks — never a mix.
        use sk_core::spec::crash::{crash_images, CrashPolicy};

        let ram = Arc::new(RamDisk::new(64));
        let crash = Arc::new(CrashDevice::new(Arc::clone(&ram)));
        let crash_dyn: Arc<dyn BlockDevice> = Arc::clone(&crash) as Arc<dyn BlockDevice>;
        Journal::format(&crash_dyn, JSTART, JBLOCKS).unwrap();
        // Old contents: block 3 = 1, block 5 = 2 (flushed).
        crash_dyn.write_block(3, &img(1)).unwrap();
        crash_dyn.write_block(5, &img(2)).unwrap();
        crash_dyn.flush().unwrap();
        let base = ram.snapshot();

        // Tap the device to capture each barrier interval's pending
        // writes, then enumerate every crash prefix of every interval.
        let tap = Arc::new(Tap {
            inner: Arc::clone(&crash),
            script: Mutex::new(Vec::new()),
        });
        let tap_dyn: Arc<dyn BlockDevice> = Arc::clone(&tap) as Arc<dyn BlockDevice>;
        let j = Journal::open(Arc::clone(&tap_dyn), JSTART, JBLOCKS).unwrap();
        j.commit(&[(3, img(11)), (5, img(12))]).unwrap();
        j.checkpoint_all().unwrap();

        // Flatten the intervals into one ordered write script; crash points
        // between barriers are prefixes of each interval appended to all
        // fully-applied earlier intervals.
        let script = tap.script.lock().clone();
        let mut checked = 0;
        let mut applied_base = base.clone();
        for interval in &script {
            for image in crash_images(&applied_base, interval, BLOCK_SIZE, CrashPolicy::Prefixes) {
                // Recover this crash image on a scratch device.
                let scratch = Arc::new(RamDisk::new(64));
                scratch.restore(&image).unwrap();
                let scratch_dyn: Arc<dyn BlockDevice> = scratch;
                Journal::recover(&scratch_dyn, JSTART, JBLOCKS).unwrap();
                let mut b3 = vec![0u8; BLOCK_SIZE];
                let mut b5 = vec![0u8; BLOCK_SIZE];
                scratch_dyn.read_block(3, &mut b3).unwrap();
                scratch_dyn.read_block(5, &mut b5).unwrap();
                let old = b3[0] == 1 && b5[0] == 2;
                let new = b3[0] == 11 && b5[0] == 12;
                assert!(
                    old || new,
                    "crash image {checked}: torn state b3={} b5={}",
                    b3[0],
                    b5[0]
                );
                checked += 1;
            }
            // Apply the full interval before moving to the next barrier.
            for w in interval {
                let off = w.blkno as usize * BLOCK_SIZE;
                applied_base[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
            }
        }
        assert!(checked >= 8, "checked {checked} crash points");
    }

    #[test]
    fn staged_ops_are_not_durable_until_commit_running() {
        let (dev, j) = fresh();
        j.begin_op().stage(vec![(3, img(7))]).unwrap();
        j.begin_op().stage(vec![(4, img(8))]).unwrap();
        assert_eq!(j.staged_ops(), 2);
        assert_eq!(j.stats().stages, 2);
        assert_eq!(j.stats().batches, 0, "no record written while staged");
        assert_eq!(j.stats().barriers, 0, "no flush barrier on the op path");

        // The fsync/sync durability point: one record, one barrier, for
        // both staged operations.
        j.commit_running().unwrap();
        assert_eq!(j.staged_ops(), 0);
        assert_eq!(j.stats().batches, 1);
        assert_eq!(j.stats().blocks_journaled, 2);
        assert_eq!(j.pending_checkpoints(), 1);
        j.checkpoint_all().unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        dev.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 7);
        dev.read_block(4, &mut out).unwrap();
        assert_eq!(out[0], 8);
        // Nothing staged: the timer tick is a free no-op.
        let barriers = j.stats().barriers;
        j.commit_running().unwrap();
        assert_eq!(j.stats().barriers, barriers);
    }

    #[test]
    fn staged_and_sync_members_merge_into_one_batch() {
        let (_, j) = fresh();
        j.begin_op().stage(vec![(3, img(1))]).unwrap();
        // A sync commit arriving while ops are staged leads the batch and
        // carries the staged members with it — exactly the fsync path.
        j.commit(&[(4, img(2))]).unwrap();
        assert_eq!(j.staged_ops(), 0, "stage rode the sync commit's batch");
        assert_eq!(j.stats().batches, 1);
        assert_eq!(j.stats().blocks_journaled, 2);
    }

    #[test]
    fn log_pressure_commits_the_running_transaction() {
        // Capacity is 5 payload blocks (JBLOCKS=8): staging 5 distinct
        // blocks must trip the pressure commit without any explicit
        // commit_running call.
        let (_, j) = fresh();
        for i in 0..5u64 {
            j.begin_op().stage(vec![(3 + i, img(i as u8))]).unwrap();
        }
        assert_eq!(j.staged_ops(), 0, "pressure drained the running txn");
        assert_eq!(j.stats().pressure_commits, 1);
        assert!(j.stats().batches >= 1);
        // Validation failures surface at stage time, before publication.
        assert_eq!(
            j.begin_op().stage(vec![(1, vec![0u8; 10])]),
            Err(Errno::EINVAL)
        );
        assert_eq!(j.staged_ops(), 0);
    }

    #[test]
    fn log_pressure_threshold_math() {
        // JBLOCKS = 8: record capacity 5 payload blocks, log area 7.
        let (_, j) = fresh();
        assert_eq!(j.log_pressure(), 0.0);
        // Each staged block adds exactly 1/capacity to the reading.
        for i in 0..4u64 {
            j.begin_op().stage(vec![(3 + i, img(i as u8))]).unwrap();
            let want = (i + 1) as f32 / 5.0;
            assert!(
                (j.log_pressure() - want).abs() < 1e-6,
                "after {} stages: {} != {}",
                i + 1,
                j.log_pressure(),
                want
            );
        }
        assert_eq!(j.stats().pressure_commits, 0, "below 1.0 nothing commits");
        // The fifth distinct block takes the staged fraction to 1.0 —
        // the same expression the stage path checks, so the pressure
        // commit fires on exactly the stage that would have pushed the
        // reading to its ceiling.
        j.begin_op().stage(vec![(7, img(9))]).unwrap();
        assert_eq!(j.stats().pressure_commits, 1);
        assert_eq!(j.staged_ops(), 0);
        // Post-commit the reading is the area term: one record of
        // descriptor + 5 payload + commit = 7 blocks over the 7-block
        // area, i.e. 1.0 until the checkpoint retires it.
        assert!((j.log_pressure() - 1.0).abs() < 1e-6);
        j.checkpoint_all().unwrap();
        assert_eq!(j.log_pressure(), 0.0);
    }

    #[test]
    fn staged_ops_survive_a_crash_only_after_commit_running() {
        let base = {
            let ram = Arc::new(RamDisk::new(64));
            let dyn_dev: Arc<dyn BlockDevice> = Arc::clone(&ram) as _;
            Journal::format(&dyn_dev, JSTART, JBLOCKS).unwrap();
            ram.snapshot()
        };
        let ram = Arc::new(RamDisk::new(64));
        ram.restore(&base).unwrap();
        let crash = Arc::new(CrashDevice::new(Arc::clone(&ram)));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&crash) as _;
        let j = Journal::open(Arc::clone(&dev), JSTART, JBLOCKS).unwrap();

        j.begin_op().stage(vec![(3, img(7))]).unwrap();
        // Crash before the durability point: the staged op vanishes.
        let img_lost = {
            let mut im = base.clone();
            for w in crash.pending_writes() {
                let off = w.blkno as usize * BLOCK_SIZE;
                im[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
            }
            im
        };
        let scratch = Arc::new(RamDisk::new(64));
        scratch.restore(&img_lost).unwrap();
        let scratch_dyn: Arc<dyn BlockDevice> = scratch;
        assert_eq!(
            Journal::recover(&scratch_dyn, JSTART, JBLOCKS).unwrap(),
            RecoveryOutcome::Clean,
            "un-committed staging must leave no replayable record"
        );

        // After commit_running the same crash replays the op: the flush
        // barrier drained the volatile cache into the backing RamDisk.
        j.commit_running().unwrap();
        let durable = ram.snapshot();
        let scratch = Arc::new(RamDisk::new(64));
        scratch.restore(&durable).unwrap();
        let scratch_dyn: Arc<dyn BlockDevice> = scratch;
        assert_eq!(
            Journal::recover(&scratch_dyn, JSTART, JBLOCKS).unwrap(),
            RecoveryOutcome::Replayed { blocks: 1 }
        );
        let mut out = vec![0u8; BLOCK_SIZE];
        scratch_dyn.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 7);
    }

    #[test]
    fn checkpoint_coalesces_ascending_contiguous_home_runs() {
        let (dev, j) = fresh();
        // Blocks 3,4,5 are one ascending run; block 9 stands alone.
        j.commit(&[(3, img(1)), (4, img(2)), (5, img(3)), (9, img(4))])
            .unwrap();
        let vec_before = dev.stats().vec_ios;
        j.checkpoint_all().unwrap();
        assert_eq!(j.stats().coalesced_runs, 1, "3..=5 coalesced, 9 alone");
        // Exactly one vectored extent for the 3..=5 run; 9 and the
        // superblock tail stay plain single-block writes.
        assert_eq!(dev.stats().vec_ios - vec_before, 1);
        let mut out = vec![0u8; BLOCK_SIZE];
        for (blkno, fill) in [(3u64, 1u8), (4, 2), (5, 3), (9, 4)] {
            dev.read_block(blkno, &mut out).unwrap();
            assert_eq!(out[0], fill, "home block {blkno}");
        }
    }
}
