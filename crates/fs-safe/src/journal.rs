//! jbd2-style write-ahead journal.
//!
//! The journal occupies the tail of the device:
//!
//! ```text
//! jsb                    journal superblock: magic, next sequence number
//! jsb+1                  transaction descriptor: seq, count, home blknos,
//!                        payload checksum
//! jsb+2 .. jsb+1+count   payload blocks (full images)
//! jsb+2+count            commit record: seq, same checksum
//! ```
//!
//! Because every transaction checkpoints synchronously before the next one
//! starts, at most one transaction ever occupies the area, and it always
//! starts right after the journal superblock — a deliberately simple
//! instance of jbd2's design that keeps crash-schedule enumeration
//! exhaustive (see `sk_core::spec::crash`).
//!
//! **Commit protocol** (each step separated by a flush barrier):
//! 1. write descriptor + payload + commit record into the journal area;
//! 2. write the payload to its home locations (checkpoint);
//! 3. bump the sequence number in the journal superblock (retire).
//!
//! **Recovery**: read the journal superblock; if the transaction slot holds
//! a descriptor and commit record with the *current* sequence number and a
//! matching payload checksum, the crash happened after step 1 but possibly
//! during step 2 — replay the payload to home locations and retire.
//! Anything else (torn descriptor, missing commit, checksum mismatch,
//! stale sequence) means the transaction never committed or was already
//! retired — discard. Replay is idempotent, so crashing *during recovery*
//! is also covered.

use std::sync::Arc;

use parking_lot::Mutex;
use sk_ksim::block::BlockDevice;
use sk_ksim::errno::{Errno, KResult};

/// Journal-superblock magic.
pub const JSB_MAGIC: u32 = 0x4A_5342; // "JSB"
/// Descriptor magic.
pub const DESC_MAGIC: u32 = 0x4A_4453; // "JDS"
/// Commit-record magic.
pub const COMMIT_MAGIC: u32 = 0x4A_434D; // "JCM"

/// FNV-1a 64-bit, the journal's payload checksum.
pub fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Journal usage counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    /// Transactions committed.
    pub commits: u64,
    /// Blocks journaled (payload only).
    pub blocks_journaled: u64,
    /// Transactions replayed by recovery.
    pub replays: u64,
    /// Flush barriers issued.
    pub barriers: u64,
}

/// What recovery found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Journal was empty/retired; nothing to do.
    Clean,
    /// A committed transaction was replayed.
    Replayed {
        /// Number of payload blocks written home.
        blocks: usize,
    },
    /// An uncommitted (torn) transaction was discarded.
    DiscardedTorn,
}

/// The write-ahead journal over a device region `[start, start+blocks)`.
pub struct Journal {
    dev: Arc<dyn BlockDevice>,
    start: u64,
    blocks: u64,
    seq: Mutex<u64>,
    stats: Mutex<JournalStats>,
}

impl Journal {
    /// Maximum payload blocks per transaction for this journal geometry.
    pub fn capacity(&self) -> usize {
        // jsb + descriptor + commit leave blocks-3 payload slots.
        (self.blocks as usize).saturating_sub(3)
    }

    /// Formats the journal region (sequence starts at 1).
    pub fn format(dev: &Arc<dyn BlockDevice>, start: u64, blocks: u64) -> KResult<()> {
        if blocks < 4 {
            return Err(Errno::EINVAL);
        }
        let bs = dev.block_size();
        let mut jsb = vec![0u8; bs];
        jsb[0..4].copy_from_slice(&JSB_MAGIC.to_le_bytes());
        jsb[4..12].copy_from_slice(&1u64.to_le_bytes());
        dev.write_block(start, &jsb)?;
        dev.flush()
    }

    /// Opens a formatted journal. **Run [`Journal::recover`] first** after
    /// an unclean shutdown.
    pub fn open(dev: Arc<dyn BlockDevice>, start: u64, blocks: u64) -> KResult<Journal> {
        let bs = dev.block_size();
        let mut jsb = vec![0u8; bs];
        dev.read_block(start, &mut jsb)?;
        if u32::from_le_bytes(jsb[0..4].try_into().expect("4 bytes")) != JSB_MAGIC {
            return Err(Errno::EUCLEAN);
        }
        let seq = u64::from_le_bytes(jsb[4..12].try_into().expect("8 bytes"));
        Ok(Journal {
            dev,
            start,
            blocks,
            seq: Mutex::new(seq),
            stats: Mutex::new(JournalStats::default()),
        })
    }

    /// Current sequence number (next transaction's).
    pub fn seq(&self) -> u64 {
        *self.seq.lock()
    }

    /// Usage counters.
    pub fn stats(&self) -> JournalStats {
        *self.stats.lock()
    }

    fn write_jsb(dev: &Arc<dyn BlockDevice>, start: u64, seq: u64) -> KResult<()> {
        let mut jsb = vec![0u8; dev.block_size()];
        jsb[0..4].copy_from_slice(&JSB_MAGIC.to_le_bytes());
        jsb[4..12].copy_from_slice(&seq.to_le_bytes());
        dev.write_block(start, &jsb)
    }

    /// Commits `writes` (home blkno → full block image) atomically.
    ///
    /// Duplicate block numbers are allowed; the last image wins. Empty
    /// transactions are a no-op. Oversize transactions return `ENOSPC` —
    /// the caller must keep operations within journal capacity.
    pub fn commit(&self, writes: &[(u64, Vec<u8>)]) -> KResult<()> {
        if writes.is_empty() {
            return Ok(());
        }
        let bs = self.dev.block_size();
        // Deduplicate, last image wins, stable home order.
        let mut dedup: Vec<(u64, &Vec<u8>)> = Vec::new();
        for (blkno, data) in writes {
            if data.len() != bs {
                return Err(Errno::EINVAL);
            }
            if *blkno >= self.start {
                // Nothing may journal a write into the journal itself.
                return Err(Errno::EINVAL);
            }
            if let Some(slot) = dedup.iter_mut().find(|(b, _)| b == blkno) {
                slot.1 = data;
            } else {
                dedup.push((*blkno, data));
            }
        }
        if dedup.len() > self.capacity() {
            return Err(Errno::ENOSPC);
        }
        let seq = *self.seq.lock();

        // Checksum covers seq, home blknos, and payload bytes.
        let seq_bytes = seq.to_le_bytes();
        let blkno_bytes: Vec<u8> = dedup
            .iter()
            .flat_map(|(b, _)| b.to_le_bytes())
            .collect();
        let mut chunks: Vec<&[u8]> = vec![&seq_bytes, &blkno_bytes];
        for (_, data) in &dedup {
            chunks.push(data.as_slice());
        }
        let checksum = fnv1a(&chunks);

        // Step 1: descriptor + payload + commit record, then barrier.
        let mut desc = vec![0u8; bs];
        desc[0..4].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        desc[4..12].copy_from_slice(&seq_bytes);
        desc[12..16].copy_from_slice(&(dedup.len() as u32).to_le_bytes());
        for (i, (blkno, _)) in dedup.iter().enumerate() {
            let o = 16 + i * 8;
            desc[o..o + 8].copy_from_slice(&blkno.to_le_bytes());
        }
        desc[bs - 8..].copy_from_slice(&checksum.to_le_bytes());
        self.dev.write_block(self.start + 1, &desc)?;
        for (i, (_, data)) in dedup.iter().enumerate() {
            self.dev.write_block(self.start + 2 + i as u64, data)?;
        }
        let mut commit = vec![0u8; bs];
        commit[0..4].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
        commit[4..12].copy_from_slice(&seq_bytes);
        commit[12..20].copy_from_slice(&checksum.to_le_bytes());
        self.dev
            .write_block(self.start + 2 + dedup.len() as u64, &commit)?;
        self.dev.flush()?;

        // Step 2: checkpoint to home locations, then barrier.
        for (blkno, data) in &dedup {
            self.dev.write_block(*blkno, data)?;
        }
        self.dev.flush()?;

        // Step 3: retire by bumping the sequence.
        {
            let mut s = self.seq.lock();
            *s += 1;
            Self::write_jsb(&self.dev, self.start, *s)?;
        }
        self.dev.flush()?;

        let mut st = self.stats.lock();
        st.commits += 1;
        st.blocks_journaled += dedup.len() as u64;
        st.barriers += 3;
        Ok(())
    }

    /// Scans the journal after an unclean shutdown and replays any
    /// committed-but-unretired transaction.
    pub fn recover(dev: &Arc<dyn BlockDevice>, start: u64, blocks: u64) -> KResult<RecoveryOutcome> {
        let bs = dev.block_size();
        let mut jsb = vec![0u8; bs];
        dev.read_block(start, &mut jsb)?;
        if u32::from_le_bytes(jsb[0..4].try_into().expect("4 bytes")) != JSB_MAGIC {
            return Err(Errno::EUCLEAN);
        }
        let seq = u64::from_le_bytes(jsb[4..12].try_into().expect("8 bytes"));

        // Parse the descriptor slot.
        let mut desc = vec![0u8; bs];
        dev.read_block(start + 1, &mut desc)?;
        if u32::from_le_bytes(desc[0..4].try_into().expect("4 bytes")) != DESC_MAGIC {
            return Ok(RecoveryOutcome::Clean);
        }
        let dseq = u64::from_le_bytes(desc[4..12].try_into().expect("8 bytes"));
        if dseq != seq {
            // A retired (older) transaction's residue.
            return Ok(RecoveryOutcome::Clean);
        }
        let count = u32::from_le_bytes(desc[12..16].try_into().expect("4 bytes")) as usize;
        if count == 0 || count > (blocks as usize).saturating_sub(3) {
            return Ok(RecoveryOutcome::DiscardedTorn);
        }
        let claimed = u64::from_le_bytes(desc[bs - 8..].try_into().expect("8 bytes"));
        let mut blknos = Vec::with_capacity(count);
        for i in 0..count {
            let o = 16 + i * 8;
            blknos.push(u64::from_le_bytes(desc[o..o + 8].try_into().expect("8 bytes")));
        }
        if blknos.iter().any(|&b| b >= start) {
            return Ok(RecoveryOutcome::DiscardedTorn);
        }

        // Commit record must match.
        let mut commit = vec![0u8; bs];
        dev.read_block(start + 2 + count as u64, &mut commit)?;
        if u32::from_le_bytes(commit[0..4].try_into().expect("4 bytes")) != COMMIT_MAGIC
            || u64::from_le_bytes(commit[4..12].try_into().expect("8 bytes")) != seq
            || u64::from_le_bytes(commit[12..20].try_into().expect("8 bytes")) != claimed
        {
            return Ok(RecoveryOutcome::DiscardedTorn);
        }

        // Verify the payload checksum.
        let mut payload = Vec::with_capacity(count);
        for i in 0..count {
            let mut data = vec![0u8; bs];
            dev.read_block(start + 2 + i as u64, &mut data)?;
            payload.push(data);
        }
        let seq_bytes = seq.to_le_bytes();
        let blkno_bytes: Vec<u8> = blknos.iter().flat_map(|b| b.to_le_bytes()).collect();
        let mut chunks: Vec<&[u8]> = vec![&seq_bytes, &blkno_bytes];
        for p in &payload {
            chunks.push(p.as_slice());
        }
        if fnv1a(&chunks) != claimed {
            return Ok(RecoveryOutcome::DiscardedTorn);
        }

        // Replay and retire.
        for (blkno, data) in blknos.iter().zip(payload.iter()) {
            dev.write_block(*blkno, data)?;
        }
        dev.flush()?;
        Self::write_jsb(dev, start, seq + 1)?;
        dev.flush()?;
        Ok(RecoveryOutcome::Replayed { blocks: count })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sk_ksim::block::{CrashDevice, RamDisk, BLOCK_SIZE};

    const JSTART: u64 = 56;
    const JBLOCKS: u64 = 8;

    fn fresh() -> (Arc<dyn BlockDevice>, Journal) {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(64));
        Journal::format(&dev, JSTART, JBLOCKS).unwrap();
        let j = Journal::open(Arc::clone(&dev), JSTART, JBLOCKS).unwrap();
        (dev, j)
    }

    fn img(fill: u8) -> Vec<u8> {
        vec![fill; BLOCK_SIZE]
    }

    #[test]
    fn commit_writes_home_blocks() {
        let (dev, j) = fresh();
        j.commit(&[(3, img(7)), (5, img(9))]).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        dev.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 7);
        dev.read_block(5, &mut out).unwrap();
        assert_eq!(out[0], 9);
        assert_eq!(j.seq(), 2);
        assert_eq!(j.stats().commits, 1);
    }

    #[test]
    fn duplicate_blocks_last_wins() {
        let (dev, j) = fresh();
        j.commit(&[(3, img(1)), (3, img(2))]).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        dev.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 2);
        assert_eq!(j.stats().blocks_journaled, 1);
    }

    #[test]
    fn oversize_and_misdirected_transactions_rejected() {
        let (_, j) = fresh();
        let too_many: Vec<(u64, Vec<u8>)> = (0..6).map(|i| (i, img(1))).collect();
        assert_eq!(j.commit(&too_many), Err(Errno::ENOSPC));
        assert_eq!(j.commit(&[(JSTART + 1, img(1))]), Err(Errno::EINVAL));
        assert_eq!(j.commit(&[(1, vec![0u8; 10])]), Err(Errno::EINVAL));
        assert!(j.commit(&[]).is_ok(), "empty commit is a no-op");
    }

    #[test]
    fn recovery_clean_on_fresh_journal() {
        let (dev, _) = fresh();
        assert_eq!(
            Journal::recover(&dev, JSTART, JBLOCKS).unwrap(),
            RecoveryOutcome::Clean
        );
    }

    #[test]
    fn crash_before_commit_record_discards() {
        let ram = Arc::new(RamDisk::new(64));
        let crash: Arc<dyn BlockDevice> = Arc::new(CrashDevice::new(Arc::clone(&ram)));
        Journal::format(&crash, JSTART, JBLOCKS).unwrap();
        // Manually write a descriptor + payload but no commit, unflushed
        // descriptor torn off by the crash is the interesting case; here we
        // flush a descriptor-only prefix.
        let j = Journal::open(Arc::clone(&crash), JSTART, JBLOCKS).unwrap();
        let _ = j; // The protocol always writes commit, so simulate a torn
                   // transaction directly:
        let bs = BLOCK_SIZE;
        let mut desc = vec![0u8; bs];
        desc[0..4].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        desc[4..12].copy_from_slice(&1u64.to_le_bytes());
        desc[12..16].copy_from_slice(&1u32.to_le_bytes());
        desc[16..24].copy_from_slice(&3u64.to_le_bytes());
        crash.write_block(JSTART + 1, &desc).unwrap();
        crash.flush().unwrap();
        // Home block untouched; recovery must discard the torn txn.
        let ram_dyn: Arc<dyn BlockDevice> = ram;
        let outcome = Journal::recover(&ram_dyn, JSTART, JBLOCKS).unwrap();
        assert_eq!(outcome, RecoveryOutcome::DiscardedTorn);
        let mut out = vec![0u8; bs];
        ram_dyn.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 0, "home never written");
    }

    #[test]
    fn crash_after_commit_before_checkpoint_replays() {
        // Drive the real commit protocol against a crash device and cut it
        // after the first barrier (journal durable, home not).
        let ram = Arc::new(RamDisk::new(64));
        let crash = Arc::new(CrashDevice::new(Arc::clone(&ram)));
        let crash_dyn: Arc<dyn BlockDevice> = Arc::clone(&crash) as Arc<dyn BlockDevice>;
        Journal::format(&crash_dyn, JSTART, JBLOCKS).unwrap();
        let j = Journal::open(Arc::clone(&crash_dyn), JSTART, JBLOCKS).unwrap();
        j.commit(&[(3, img(42))]).unwrap();
        // Rewind the durable image to "after barrier 1": replay the commit
        // onto a fresh device by hand — instead, simply crash now (all
        // flushed), then corrupt home block to simulate lost checkpoint,
        // and check recovery restores it from the journal.
        crash.crash();
        crash.recover();
        let zero = img(0);
        ram.write_block(3, &zero).unwrap(); // "lost" checkpoint
        // jsb already retired (seq=2), so recovery would be Clean; rewind
        // the jsb to seq=1 to model the pre-retire crash.
        let mut jsb = vec![0u8; BLOCK_SIZE];
        jsb[0..4].copy_from_slice(&JSB_MAGIC.to_le_bytes());
        jsb[4..12].copy_from_slice(&1u64.to_le_bytes());
        ram.write_block(JSTART, &jsb).unwrap();
        let ram_dyn: Arc<dyn BlockDevice> = ram;
        let outcome = Journal::recover(&ram_dyn, JSTART, JBLOCKS).unwrap();
        assert_eq!(outcome, RecoveryOutcome::Replayed { blocks: 1 });
        let mut out = vec![0u8; BLOCK_SIZE];
        ram_dyn.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 42, "journal replayed the lost home write");
        // And recovery is idempotent.
        let outcome2 = Journal::recover(&ram_dyn, JSTART, JBLOCKS).unwrap();
        assert_eq!(outcome2, RecoveryOutcome::Clean);
    }

    #[test]
    fn corrupted_payload_checksum_discards() {
        let ram = Arc::new(RamDisk::new(64));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&ram) as Arc<dyn BlockDevice>;
        Journal::format(&dev, JSTART, JBLOCKS).unwrap();
        let j = Journal::open(Arc::clone(&dev), JSTART, JBLOCKS).unwrap();
        j.commit(&[(3, img(42))]).unwrap();
        // Rewind jsb and corrupt the journaled payload.
        let mut jsb = vec![0u8; BLOCK_SIZE];
        jsb[0..4].copy_from_slice(&JSB_MAGIC.to_le_bytes());
        jsb[4..12].copy_from_slice(&1u64.to_le_bytes());
        ram.write_block(JSTART, &jsb).unwrap();
        let mut payload = vec![0u8; BLOCK_SIZE];
        ram.read_block(JSTART + 2, &mut payload).unwrap();
        payload[100] ^= 0xFF;
        ram.write_block(JSTART + 2, &payload).unwrap();
        let outcome = Journal::recover(&dev, JSTART, JBLOCKS).unwrap();
        assert_eq!(outcome, RecoveryOutcome::DiscardedTorn);
    }

    #[test]
    fn exhaustive_prefix_crash_check() {
        // The flagship property: for EVERY prefix of the device-write
        // sequence of a commit, recovery yields either the old or the new
        // contents of the home block — never a mix, never a torn state.
        use sk_core::spec::crash::{crash_images, CrashPolicy};

        let ram = Arc::new(RamDisk::new(64));
        let crash = Arc::new(CrashDevice::new(Arc::clone(&ram)));
        let crash_dyn: Arc<dyn BlockDevice> = Arc::clone(&crash) as Arc<dyn BlockDevice>;
        Journal::format(&crash_dyn, JSTART, JBLOCKS).unwrap();
        // Old contents: block 3 = 1, block 5 = 2 (flushed).
        crash_dyn.write_block(3, &img(1)).unwrap();
        crash_dyn.write_block(5, &img(2)).unwrap();
        crash_dyn.flush().unwrap();
        let base = ram.snapshot();

        // Run a commit but capture the pending writes of each barrier
        // interval by not flushing: we reimplement the sequence manually to
        // keep every write pending. Simpler: run the real commit against a
        // second crash device that never flushes to its inner store.
        // Here we exploit CrashDevice: writes buffer until flush. The real
        // commit flushes 3 times, so enumerate crash points per interval by
        // replaying the intervals' pending writes over the base snapshot.
        let j = Journal::open(Arc::clone(&crash_dyn), JSTART, JBLOCKS).unwrap();

        // Interval capture: wrap flushes by snapshotting pending writes.
        // CrashDevice drains on flush, so capture before each drain via a
        // probe sequence: we re-run the commit with a tap.
        struct Tap {
            inner: Arc<CrashDevice<Arc<RamDisk>>>,
            script: Mutex<Vec<Vec<sk_ksim::block::PendingWrite>>>,
        }
        impl BlockDevice for Tap {
            fn num_blocks(&self) -> u64 {
                self.inner.num_blocks()
            }
            fn block_size(&self) -> usize {
                self.inner.block_size()
            }
            fn read_block(&self, b: u64, buf: &mut [u8]) -> KResult<()> {
                self.inner.read_block(b, buf)
            }
            fn write_block(&self, b: u64, buf: &[u8]) -> KResult<()> {
                self.inner.write_block(b, buf)
            }
            fn flush(&self) -> KResult<()> {
                self.script.lock().push(self.inner.pending_writes());
                self.inner.flush()
            }
            fn stats(&self) -> sk_ksim::block::DeviceStats {
                self.inner.stats()
            }
        }
        drop(j);
        let tap = Arc::new(Tap {
            inner: Arc::clone(&crash),
            script: Mutex::new(Vec::new()),
        });
        let tap_dyn: Arc<dyn BlockDevice> = Arc::clone(&tap) as Arc<dyn BlockDevice>;
        let j = Journal::open(Arc::clone(&tap_dyn), JSTART, JBLOCKS).unwrap();
        j.commit(&[(3, img(11)), (5, img(12))]).unwrap();

        // Flatten the intervals into one ordered write script; crash points
        // between barriers are prefixes of each interval appended to all
        // fully-applied earlier intervals.
        let script = tap.script.lock().clone();
        let mut checked = 0;
        let mut applied_base = base.clone();
        for interval in &script {
            for image in crash_images(&applied_base, interval, BLOCK_SIZE, CrashPolicy::Prefixes) {
                // Recover this crash image on a scratch device.
                let scratch = Arc::new(RamDisk::new(64));
                scratch.restore(&image).unwrap();
                let scratch_dyn: Arc<dyn BlockDevice> = scratch;
                Journal::recover(&scratch_dyn, JSTART, JBLOCKS).unwrap();
                let mut b3 = vec![0u8; BLOCK_SIZE];
                let mut b5 = vec![0u8; BLOCK_SIZE];
                scratch_dyn.read_block(3, &mut b3).unwrap();
                scratch_dyn.read_block(5, &mut b5).unwrap();
                let old = b3[0] == 1 && b5[0] == 2;
                let new = b3[0] == 11 && b5[0] == 12;
                assert!(
                    old || new,
                    "crash image {checked}: torn state b3={} b5={}",
                    b3[0],
                    b5[0]
                );
                checked += 1;
            }
            // Apply the full interval before moving to the next barrier.
            for w in interval {
                let off = w.blkno as usize * BLOCK_SIZE;
                applied_base[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
            }
        }
        assert!(checked >= 8, "checked {checked} crash points");
    }
}
