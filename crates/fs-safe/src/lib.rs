//! # sk-fs-safe — "rsfs", the roadmap file system
//!
//! The Safe-Rust, journaled, refinement-checked file system that the
//! incremental roadmap replaces cext4 with (the workspace's analogue of
//! Bento's Rust file systems loaded into Linux):
//!
//! - **Steps 1–3**: implements `sk_vfs::modular::FileSystem` — registered
//!   behind the Step-1 registry, no `void *` anywhere, errors as
//!   `KResult`, arguments in the three ownership-sharing models, checked
//!   arithmetic throughout (`sk_core::typesafe::ovf`).
//! - **Journal** ([`journal`]): a jbd2-style write-ahead journal. Every
//!   mutating operation's block writes are staged in a transaction; commit
//!   writes descriptor + payload + checksummed commit record into the
//!   journal area, flushes, checkpoints to home locations, flushes, then
//!   retires the transaction. Recovery replays any committed-but-not-
//!   retired transaction; torn/uncommitted tails are discarded.
//! - **Step 4** ([`rsfs`] + `sk_core::spec`): `Rsfs` implements
//!   `Refines<FsModel>`; every operation's relation is checked against the
//!   abstract model in the test suite, and the crash checker enumerates
//!   every crash point of every transaction and verifies recovery lands on
//!   an allowed model ("recovers to the last synced version", §4.4).
//!
//! - **fsck** ([`fsck`]): the static half of the specification — seven
//!   well-formedness invariants of the on-disk image, run over every
//!   recovered crash image in the test suite.
//!
//! The on-disk format ([`layout`]) extends the bitmap-FS family with a
//! journal region at the end of the device.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fsck;
pub mod journal;
pub mod layout;
pub mod rsfs;

pub use fsck::{fsck, FsckReport};
pub use journal::{Journal, JournalStats};
pub use rsfs::Rsfs;
