//! The generic inode and its lock discipline.
//!
//! §4.3, verbatim: "the kernel's generic inode data structure is passed
//! from the VFS layer to the file system on most file system calls. Many of
//! the inode's fields aren't associated with any inode-level
//! synchronization mechanism … Three fields are explicitly protected by
//! the `i_lock` field, but one of those three, the `i_size` field, is only
//! *maybe* protected, according to the relevant comment."
//!
//! [`Inode`] reproduces that structure: `i_nlink`, `i_ctime_ns`, and
//! `i_blocks` are declared protected by `i_lock` via
//! [`Protected`]; `i_size` is *also* declared
//! protected — but the legacy file system updates it through the
//! `_unchecked` accessors on code paths where VFS has not taken `i_lock`,
//! exactly the ambiguity the paper describes, and the lock registry records
//! each such access. The safe file system only ever uses the disciplined
//! accessors.

use std::sync::Arc;

use sk_ksim::lock::{KLock, LockRegistry, Protected};
use sk_legacy::VoidPtr;

/// Inode number.
pub type InodeNo = u64;

/// File type, as in `i_mode`'s format bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
}

/// Attributes returned by `getattr`/`stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attr {
    /// Inode number.
    pub ino: InodeNo,
    /// File type.
    pub ftype: FileType,
    /// Size in bytes.
    pub size: u64,
    /// Link count.
    pub nlink: u32,
    /// Last-modification time (simulated ns).
    pub mtime_ns: u64,
}

/// The generic in-memory inode shared between VFS and file systems.
pub struct Inode {
    /// Inode number (immutable; safe to read without locks).
    pub i_ino: InodeNo,
    /// File type (immutable after creation).
    pub i_ftype: FileType,
    /// The inode spinlock.
    pub i_lock: KLock<()>,
    /// File size. Declared protected by `i_lock`, but legacy code paths
    /// update it without the lock (the "maybe protected" comment).
    pub i_size: Protected<u64>,
    /// Link count; protected by `i_lock`.
    pub i_nlink: Protected<u32>,
    /// Change time; protected by `i_lock`.
    pub i_ctime_ns: Protected<u64>,
    /// Block count; protected by `i_lock`.
    pub i_blocks: Protected<u64>,
    /// File-system private data — a raw `void *` in the legacy world.
    /// The safe interface never touches this field.
    pub i_private: parking_lot::Mutex<VoidPtr>,
}

impl Inode {
    /// Creates an inode registered against `registry`.
    pub fn new(registry: Arc<LockRegistry>, ino: InodeNo, ftype: FileType) -> Arc<Inode> {
        let i_lock = KLock::new(registry, "i_lock", ());
        let i_size = Protected::new(&i_lock, "i_size", 0u64);
        let i_nlink = Protected::new(&i_lock, "i_nlink", 1u32);
        let i_ctime_ns = Protected::new(&i_lock, "i_ctime", 0u64);
        let i_blocks = Protected::new(&i_lock, "i_blocks", 0u64);
        Arc::new(Inode {
            i_ino: ino,
            i_ftype: ftype,
            i_lock,
            i_size,
            i_nlink,
            i_ctime_ns,
            i_blocks,
            i_private: parking_lot::Mutex::new(VoidPtr::NULL),
        })
    }

    /// Disciplined size read (takes `i_lock`).
    pub fn size(&self) -> u64 {
        let _g = self.i_lock.lock();
        self.i_size.read().expect("lock held")
    }

    /// Disciplined size update (takes `i_lock`).
    pub fn set_size(&self, size: u64) {
        let _g = self.i_lock.lock();
        self.i_size.write(size);
    }

    /// Builds an [`Attr`] snapshot under `i_lock`.
    pub fn attr(&self) -> Attr {
        let _g = self.i_lock.lock();
        Attr {
            ino: self.i_ino,
            ftype: self.i_ftype,
            size: self.i_size.read().expect("lock held"),
            nlink: self.i_nlink.read().expect("lock held"),
            mtime_ns: self.i_ctime_ns.read().expect("lock held"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sk_ksim::lock::Violation;

    #[test]
    fn disciplined_accessors_are_clean() {
        let reg = LockRegistry::new();
        let ino = Inode::new(Arc::clone(&reg), 1, FileType::Regular);
        ino.set_size(100);
        assert_eq!(ino.size(), 100);
        let a = ino.attr();
        assert_eq!(a.size, 100);
        assert_eq!(a.nlink, 1);
        assert_eq!(a.ftype, FileType::Regular);
        assert!(reg.violations().is_empty());
    }

    #[test]
    fn legacy_unchecked_size_update_is_recorded() {
        let reg = LockRegistry::new();
        let ino = Inode::new(Arc::clone(&reg), 2, FileType::Regular);
        // The "file systems are responsible for updating i_size" path,
        // without i_lock:
        ino.i_size.write_unchecked(4096);
        assert_eq!(ino.i_size.read_unchecked(), 4096);
        let v = reg.violations();
        assert_eq!(v.len(), 2);
        assert!(matches!(
            v[0],
            Violation::UnlockedFieldAccess {
                lock: "i_lock",
                field: "i_size"
            }
        ));
    }

    #[test]
    fn private_data_defaults_to_null() {
        let reg = LockRegistry::new();
        let ino = Inode::new(reg, 3, FileType::Directory);
        assert!(ino.i_private.lock().is_null());
    }
}
