//! Dentry cache: memoizes `lookup(dir, name) → ino` during path walks.
//!
//! Lock-striped bounded LRU keyed by `(directory inode, component name)`:
//! entries hash to one of N independently locked shards, so concurrent
//! path walks over different dentries never serialize on one mutex (the
//! same reason Linux moved the dcache to per-bucket locks). The path
//! layer invalidates entries on unlink/rmdir/rename; a stale dcache is
//! itself a classic kernel bug source, so the tests pin the invalidation
//! behaviour.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use sk_ksim::lock::{LockRegistry, TrackedMutex};

use crate::inode::InodeNo;

/// Default shard count; matches the buffer cache's striping.
const DEFAULT_SHARDS: usize = 8;

/// Cache statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DcacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the file system.
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Entries dropped by invalidation.
    pub invalidations: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<(InodeNo, String), InodeNo>,
    lru: Vec<(InodeNo, String)>,
    stats: DcacheStats,
}

/// A bounded, lock-striped dentry cache.
///
/// Shard locks live in the lockdep class `"dcache.shard"`, ranked by
/// shard index: full-table walks ([`Dcache::stats`], [`Dcache::len`],
/// [`Dcache::invalidate_dir`], [`Dcache::clear`]) visit shards in
/// ascending index order, which is the only multi-hold pattern the rank
/// discipline permits. A walk started while the caller already holds a
/// higher-indexed shard lock is flagged by the registry.
pub struct Dcache {
    shards: Vec<TrackedMutex<Inner>>,
    per_shard_cap: usize,
    registry: Arc<LockRegistry>,
}

impl Dcache {
    /// Creates a cache holding at most `capacity` entries, striped over
    /// the default shard count.
    pub fn new(capacity: usize) -> Self {
        Dcache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Creates a cache with an explicit shard count (1 reproduces the
    /// single-lock global LRU exactly; tests use it for determinism).
    /// Lockdep is disabled on the private registry this creates; use
    /// [`Dcache::with_registry`] to join a shared, enabled graph.
    pub fn with_shards(capacity: usize, nshards: usize) -> Self {
        Dcache::with_registry(capacity, nshards, LockRegistry::new_disabled())
    }

    /// Creates a cache whose shard locks register with `registry`, so a
    /// mounted system can watch VFS and storage locks in one graph.
    pub fn with_registry(capacity: usize, nshards: usize, registry: Arc<LockRegistry>) -> Self {
        let capacity = capacity.max(1);
        let nshards = nshards.clamp(1, capacity);
        Dcache {
            shards: (0..nshards)
                .map(|i| {
                    TrackedMutex::new_ranked(&registry, "dcache.shard", i as u64, Inner::default())
                })
                .collect(),
            per_shard_cap: (capacity / nshards).max(1),
            registry,
        }
    }

    /// The lock registry the shard locks report to.
    pub fn lock_registry(&self) -> &Arc<LockRegistry> {
        &self.registry
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, dir: InodeNo, name: &str) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        dir.hash(&mut h);
        name.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Looks up a cached entry, refreshing its recency.
    pub fn get(&self, dir: InodeNo, name: &str) -> Option<InodeNo> {
        let mut inner = self.shards[self.shard_of(dir, name)].lock();
        let key = (dir, name.to_string());
        if let Some(&ino) = inner.map.get(&key) {
            inner.stats.hits += 1;
            if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
                inner.lru.remove(pos);
            }
            inner.lru.push(key);
            Some(ino)
        } else {
            inner.stats.misses += 1;
            None
        }
    }

    /// Inserts an entry, evicting the shard's least-recent when full.
    pub fn insert(&self, dir: InodeNo, name: &str, ino: InodeNo) {
        let mut inner = self.shards[self.shard_of(dir, name)].lock();
        let key = (dir, name.to_string());
        if inner.map.insert(key.clone(), ino).is_none() {
            inner.lru.push(key);
            if inner.map.len() > self.per_shard_cap {
                let victim = inner.lru.remove(0);
                inner.map.remove(&victim);
                inner.stats.evictions += 1;
            }
        } else if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
            let k = inner.lru.remove(pos);
            inner.lru.push(k);
        }
    }

    /// Drops one entry (on unlink/rmdir/rename of that name).
    pub fn invalidate(&self, dir: InodeNo, name: &str) {
        let mut inner = self.shards[self.shard_of(dir, name)].lock();
        let key = (dir, name.to_string());
        if inner.map.remove(&key).is_some() {
            if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
                inner.lru.remove(pos);
            }
            inner.stats.invalidations += 1;
        }
    }

    /// Drops every entry under directory `dir` (on rmdir of `dir` or a
    /// rename that moves it). Entries of one directory spread across
    /// shards, so every stripe is visited.
    pub fn invalidate_dir(&self, dir: InodeNo) {
        for shard in &self.shards {
            let mut inner = shard.lock();
            let victims: Vec<(InodeNo, String)> = inner
                .map
                .keys()
                .filter(|(d, _)| *d == dir)
                .cloned()
                .collect();
            for key in victims {
                inner.map.remove(&key);
                if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
                    inner.lru.remove(pos);
                }
                inner.stats.invalidations += 1;
            }
        }
    }

    /// Rekeys every entry through `map` (old inode number → new inode
    /// number) after a generation swap: both the directory key and the
    /// target inode are translated, so the warm cache survives the
    /// handoff instead of being cleared cold. Entries either of whose
    /// inodes has no mapping are dropped (counted as invalidations).
    /// Returns how many entries were carried over.
    ///
    /// Rekeyed entries may hash to a different shard, so the transfer is
    /// two-phase: drain every shard (ascending index, the rank-clean
    /// walk), then reinsert with no shard lock held.
    pub fn remap(&self, map: impl Fn(InodeNo) -> Option<InodeNo>) -> u64 {
        let mut drained: Vec<((InodeNo, String), InodeNo)> = Vec::new();
        for shard in &self.shards {
            let mut inner = shard.lock();
            let entries: Vec<_> = inner.map.drain().collect();
            inner.lru.clear();
            drained.extend(entries);
        }
        let mut kept = 0u64;
        let mut dropped = 0u64;
        for ((dir, name), ino) in drained {
            match (map(dir), map(ino)) {
                (Some(ndir), Some(nino)) => {
                    self.insert(ndir, &name, nino);
                    kept += 1;
                }
                _ => dropped += 1,
            }
        }
        if dropped > 0 {
            self.shards[0].lock().stats.invalidations += dropped;
        }
        kept
    }

    /// Drops everything.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut inner = shard.lock();
            let n = inner.map.len() as u64;
            inner.map.clear();
            inner.lru.clear();
            inner.stats.invalidations += n;
        }
    }

    /// Snapshot of the statistics, aggregated over all shards.
    ///
    /// Holds every shard lock at once — acquired in ascending index
    /// order, the one multi-hold order the `"dcache.shard"` rank
    /// discipline allows — so the totals are a consistent cut rather
    /// than a sum of per-shard reads taken at different instants.
    /// Must not be called while the caller holds a shard lock.
    pub fn stats(&self) -> DcacheStats {
        let guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        let mut total = DcacheStats::default();
        for g in &guards {
            total.hits += g.stats.hits;
            total.misses += g.stats.misses;
            total.evictions += g.stats.evictions;
            total.invalidations += g.stats.invalidations;
        }
        total
    }

    /// Number of cached entries (consistent snapshot; same ascending
    /// multi-hold walk as [`Dcache::stats`]).
    pub fn len(&self) -> usize {
        let guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        guards.iter().map(|g| g.map.len()).sum()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sk_ksim::lock::Violation;

    #[test]
    fn hit_after_insert() {
        let d = Dcache::new(8);
        assert_eq!(d.get(1, "a"), None);
        d.insert(1, "a", 42);
        assert_eq!(d.get(1, "a"), Some(42));
        let s = d.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn capacity_evicts_least_recent() {
        // One shard: the per-shard LRU is the global LRU.
        let d = Dcache::with_shards(2, 1);
        d.insert(1, "a", 10);
        d.insert(1, "b", 11);
        d.get(1, "a"); // refresh a
        d.insert(1, "c", 12); // evicts b
        assert_eq!(d.get(1, "a"), Some(10));
        assert_eq!(d.get(1, "b"), None);
        assert_eq!(d.get(1, "c"), Some(12));
        assert_eq!(d.stats().evictions, 1);
    }

    #[test]
    fn sharded_capacity_stays_bounded() {
        let d = Dcache::new(16);
        for i in 0..200u64 {
            d.insert(1, &format!("n{i}"), i);
        }
        assert!(d.len() <= 16, "len {} exceeds capacity", d.len());
        assert!(d.stats().evictions >= 184);
    }

    #[test]
    fn shard_count_clamps_to_capacity() {
        assert_eq!(Dcache::new(2).shard_count(), 2);
        assert_eq!(Dcache::with_shards(64, 4).shard_count(), 4);
        assert_eq!(Dcache::with_shards(8, 0).shard_count(), 1);
    }

    #[test]
    fn invalidation_removes_entry() {
        let d = Dcache::new(8);
        d.insert(1, "a", 10);
        d.invalidate(1, "a");
        assert_eq!(d.get(1, "a"), None);
        assert_eq!(d.stats().invalidations, 1);
        // Invalidating a missing entry is a no-op.
        d.invalidate(1, "zzz");
        assert_eq!(d.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_dir_scopes_to_directory() {
        let d = Dcache::new(8);
        d.insert(1, "a", 10);
        d.insert(1, "b", 11);
        d.insert(2, "a", 20);
        d.invalidate_dir(1);
        assert_eq!(d.get(1, "a"), None);
        assert_eq!(d.get(1, "b"), None);
        assert_eq!(d.get(2, "a"), Some(20));
    }

    #[test]
    fn same_name_in_different_dirs_distinct() {
        let d = Dcache::new(8);
        d.insert(1, "x", 100);
        d.insert(2, "x", 200);
        assert_eq!(d.get(1, "x"), Some(100));
        assert_eq!(d.get(2, "x"), Some(200));
    }

    #[test]
    fn reinsert_updates_value() {
        let d = Dcache::new(8);
        d.insert(1, "a", 10);
        d.insert(1, "a", 99);
        assert_eq!(d.get(1, "a"), Some(99));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn remap_rekeys_entries_and_drops_unmapped() {
        let d = Dcache::new(16);
        d.insert(1, "a", 10);
        d.insert(1, "b", 11);
        d.insert(2, "c", 20);
        let kept = d.remap(|ino| match ino {
            1 => Some(100),
            10 => Some(110),
            11 => Some(111),
            _ => None, // dir 2 and ino 20 did not survive the swap
        });
        assert_eq!(kept, 2);
        assert_eq!(d.get(100, "a"), Some(110));
        assert_eq!(d.get(100, "b"), Some(111));
        assert_eq!(d.get(1, "a"), None, "old-generation key must be gone");
        assert_eq!(d.get(2, "c"), None, "unmapped entry must be dropped");
    }

    #[test]
    fn remap_is_lockdep_clean() {
        let d = Dcache::with_registry(64, 4, LockRegistry::new());
        for i in 0..32u64 {
            d.insert(i % 3, &format!("n{i}"), i + 100);
        }
        d.remap(|ino| Some(ino + 1000));
        assert!(
            d.lock_registry().violations().is_empty(),
            "remap must be ordering-clean: {:?}",
            d.lock_registry().violations()
        );
    }

    #[test]
    fn clear_empties() {
        let d = Dcache::new(8);
        d.insert(1, "a", 10);
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn full_table_walks_are_lockdep_clean() {
        // Regression for the shard-sweep ordering fix: stats(), len(),
        // invalidate_dir() and clear() multi-hold or sweep the shard
        // locks in ascending index order. Reverting to an unordered
        // (or descending) walk trips the same-class rank check.
        let d = Dcache::with_registry(64, 4, LockRegistry::new());
        for i in 0..32u64 {
            d.insert(i % 3, &format!("n{i}"), i);
        }
        let _ = d.stats();
        let _ = d.len();
        d.invalidate_dir(1);
        d.clear();
        assert!(
            d.lock_registry().violations().is_empty(),
            "table walks must be ordering-clean: {:?}",
            d.lock_registry().violations()
        );
    }

    #[test]
    fn detector_flags_out_of_order_shard_walk() {
        // The bug class the walks above are fixed against: holding a
        // high-indexed shard while taking a lower one.
        let d = Dcache::with_registry(64, 4, LockRegistry::new());
        {
            let _hi = d.shards[2].lock();
            let _lo = d.shards[0].lock();
        }
        assert!(
            d.lock_registry().violations().iter().any(|v| matches!(
                v,
                Violation::SameClassNesting {
                    class: "dcache.shard"
                }
            )),
            "reversed shard walk must be flagged: {:?}",
            d.lock_registry().violations()
        );
    }

    #[test]
    fn default_constructor_registry_is_disabled() {
        // Bench paths construct via new()/with_shards(); their private
        // registry must not spend graph time or collect reports.
        let d = Dcache::new(8);
        assert!(!d.lock_registry().is_enabled());
        {
            let _hi = d.shards[1].lock();
            let _lo = d.shards[0].lock();
        }
        assert!(d.lock_registry().violations().is_empty());
    }

    #[test]
    fn concurrent_walks_hit_distinct_shards() {
        use std::sync::Arc;
        let d = Arc::new(Dcache::new(1024));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let name = format!("t{t}-n{i}");
                    d.insert(t, &name, i);
                    assert_eq!(d.get(t, &name), Some(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = d.stats();
        assert_eq!(s.hits, 1600);
        assert!(d.len() <= 1024);
    }
}
