//! Dentry cache: memoizes `lookup(dir, name) → ino` during path walks.
//!
//! Lock-striped bounded LRU keyed by `(directory inode, component name)`:
//! entries hash to one of N independently locked shards, so concurrent
//! path walks over different dentries never serialize on one mutex (the
//! same reason Linux moved the dcache to per-bucket locks). The path
//! layer invalidates entries on unlink/rmdir/rename; a stale dcache is
//! itself a classic kernel bug source, so the tests pin the invalidation
//! behaviour.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use parking_lot::Mutex;

use crate::inode::InodeNo;

/// Default shard count; matches the buffer cache's striping.
const DEFAULT_SHARDS: usize = 8;

/// Cache statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DcacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the file system.
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Entries dropped by invalidation.
    pub invalidations: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<(InodeNo, String), InodeNo>,
    lru: Vec<(InodeNo, String)>,
    stats: DcacheStats,
}

/// A bounded, lock-striped dentry cache.
pub struct Dcache {
    shards: Vec<Mutex<Inner>>,
    per_shard_cap: usize,
}

impl Dcache {
    /// Creates a cache holding at most `capacity` entries, striped over
    /// the default shard count.
    pub fn new(capacity: usize) -> Self {
        Dcache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Creates a cache with an explicit shard count (1 reproduces the
    /// single-lock global LRU exactly; tests use it for determinism).
    pub fn with_shards(capacity: usize, nshards: usize) -> Self {
        let capacity = capacity.max(1);
        let nshards = nshards.clamp(1, capacity);
        Dcache {
            shards: (0..nshards).map(|_| Mutex::new(Inner::default())).collect(),
            per_shard_cap: (capacity / nshards).max(1),
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, dir: InodeNo, name: &str) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        dir.hash(&mut h);
        name.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Looks up a cached entry, refreshing its recency.
    pub fn get(&self, dir: InodeNo, name: &str) -> Option<InodeNo> {
        let mut inner = self.shards[self.shard_of(dir, name)].lock();
        let key = (dir, name.to_string());
        if let Some(&ino) = inner.map.get(&key) {
            inner.stats.hits += 1;
            if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
                inner.lru.remove(pos);
            }
            inner.lru.push(key);
            Some(ino)
        } else {
            inner.stats.misses += 1;
            None
        }
    }

    /// Inserts an entry, evicting the shard's least-recent when full.
    pub fn insert(&self, dir: InodeNo, name: &str, ino: InodeNo) {
        let mut inner = self.shards[self.shard_of(dir, name)].lock();
        let key = (dir, name.to_string());
        if inner.map.insert(key.clone(), ino).is_none() {
            inner.lru.push(key);
            if inner.map.len() > self.per_shard_cap {
                let victim = inner.lru.remove(0);
                inner.map.remove(&victim);
                inner.stats.evictions += 1;
            }
        } else if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
            let k = inner.lru.remove(pos);
            inner.lru.push(k);
        }
    }

    /// Drops one entry (on unlink/rmdir/rename of that name).
    pub fn invalidate(&self, dir: InodeNo, name: &str) {
        let mut inner = self.shards[self.shard_of(dir, name)].lock();
        let key = (dir, name.to_string());
        if inner.map.remove(&key).is_some() {
            if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
                inner.lru.remove(pos);
            }
            inner.stats.invalidations += 1;
        }
    }

    /// Drops every entry under directory `dir` (on rmdir of `dir` or a
    /// rename that moves it). Entries of one directory spread across
    /// shards, so every stripe is visited.
    pub fn invalidate_dir(&self, dir: InodeNo) {
        for shard in &self.shards {
            let mut inner = shard.lock();
            let victims: Vec<(InodeNo, String)> = inner
                .map
                .keys()
                .filter(|(d, _)| *d == dir)
                .cloned()
                .collect();
            for key in victims {
                inner.map.remove(&key);
                if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
                    inner.lru.remove(pos);
                }
                inner.stats.invalidations += 1;
            }
        }
    }

    /// Drops everything.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut inner = shard.lock();
            let n = inner.map.len() as u64;
            inner.map.clear();
            inner.lru.clear();
            inner.stats.invalidations += n;
        }
    }

    /// Snapshot of the statistics, aggregated over all shards.
    pub fn stats(&self) -> DcacheStats {
        let mut total = DcacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats;
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.invalidations += s.invalidations;
        }
        total
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let d = Dcache::new(8);
        assert_eq!(d.get(1, "a"), None);
        d.insert(1, "a", 42);
        assert_eq!(d.get(1, "a"), Some(42));
        let s = d.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn capacity_evicts_least_recent() {
        // One shard: the per-shard LRU is the global LRU.
        let d = Dcache::with_shards(2, 1);
        d.insert(1, "a", 10);
        d.insert(1, "b", 11);
        d.get(1, "a"); // refresh a
        d.insert(1, "c", 12); // evicts b
        assert_eq!(d.get(1, "a"), Some(10));
        assert_eq!(d.get(1, "b"), None);
        assert_eq!(d.get(1, "c"), Some(12));
        assert_eq!(d.stats().evictions, 1);
    }

    #[test]
    fn sharded_capacity_stays_bounded() {
        let d = Dcache::new(16);
        for i in 0..200u64 {
            d.insert(1, &format!("n{i}"), i);
        }
        assert!(d.len() <= 16, "len {} exceeds capacity", d.len());
        assert!(d.stats().evictions >= 184);
    }

    #[test]
    fn shard_count_clamps_to_capacity() {
        assert_eq!(Dcache::new(2).shard_count(), 2);
        assert_eq!(Dcache::with_shards(64, 4).shard_count(), 4);
        assert_eq!(Dcache::with_shards(8, 0).shard_count(), 1);
    }

    #[test]
    fn invalidation_removes_entry() {
        let d = Dcache::new(8);
        d.insert(1, "a", 10);
        d.invalidate(1, "a");
        assert_eq!(d.get(1, "a"), None);
        assert_eq!(d.stats().invalidations, 1);
        // Invalidating a missing entry is a no-op.
        d.invalidate(1, "zzz");
        assert_eq!(d.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_dir_scopes_to_directory() {
        let d = Dcache::new(8);
        d.insert(1, "a", 10);
        d.insert(1, "b", 11);
        d.insert(2, "a", 20);
        d.invalidate_dir(1);
        assert_eq!(d.get(1, "a"), None);
        assert_eq!(d.get(1, "b"), None);
        assert_eq!(d.get(2, "a"), Some(20));
    }

    #[test]
    fn same_name_in_different_dirs_distinct() {
        let d = Dcache::new(8);
        d.insert(1, "x", 100);
        d.insert(2, "x", 200);
        assert_eq!(d.get(1, "x"), Some(100));
        assert_eq!(d.get(2, "x"), Some(200));
    }

    #[test]
    fn reinsert_updates_value() {
        let d = Dcache::new(8);
        d.insert(1, "a", 10);
        d.insert(1, "a", 99);
        assert_eq!(d.get(1, "a"), Some(99));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let d = Dcache::new(8);
        d.insert(1, "a", 10);
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn concurrent_walks_hit_distinct_shards() {
        use std::sync::Arc;
        let d = Arc::new(Dcache::new(1024));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let name = format!("t{t}-n{i}");
                    d.insert(t, &name, i);
                    assert_eq!(d.get(t, &name), Some(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = d.stats();
        assert_eq!(s.hits, 1600);
        assert!(d.len() <= 1024);
    }
}
