//! Dentry cache: memoizes `lookup(dir, name) → ino` during path walks.
//!
//! Bounded LRU keyed by `(directory inode, component name)`. The path layer
//! invalidates entries on unlink/rmdir/rename; a stale dcache is itself a
//! classic kernel bug source, so the tests pin the invalidation behaviour.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::inode::InodeNo;

/// Cache statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DcacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the file system.
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Entries dropped by invalidation.
    pub invalidations: u64,
}

struct Inner {
    map: HashMap<(InodeNo, String), InodeNo>,
    lru: Vec<(InodeNo, String)>,
    stats: DcacheStats,
}

/// A bounded dentry cache.
pub struct Dcache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl Dcache {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Dcache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: Vec::new(),
                stats: DcacheStats::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Looks up a cached entry, refreshing its recency.
    pub fn get(&self, dir: InodeNo, name: &str) -> Option<InodeNo> {
        let mut inner = self.inner.lock();
        let key = (dir, name.to_string());
        if let Some(&ino) = inner.map.get(&key) {
            inner.stats.hits += 1;
            if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
                inner.lru.remove(pos);
            }
            inner.lru.push(key);
            Some(ino)
        } else {
            inner.stats.misses += 1;
            None
        }
    }

    /// Inserts an entry, evicting the least-recent when full.
    pub fn insert(&self, dir: InodeNo, name: &str, ino: InodeNo) {
        let mut inner = self.inner.lock();
        let key = (dir, name.to_string());
        if inner.map.insert(key.clone(), ino).is_none() {
            inner.lru.push(key);
            if inner.map.len() > self.capacity {
                let victim = inner.lru.remove(0);
                inner.map.remove(&victim);
                inner.stats.evictions += 1;
            }
        } else if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
            let k = inner.lru.remove(pos);
            inner.lru.push(k);
        }
    }

    /// Drops one entry (on unlink/rmdir/rename of that name).
    pub fn invalidate(&self, dir: InodeNo, name: &str) {
        let mut inner = self.inner.lock();
        let key = (dir, name.to_string());
        if inner.map.remove(&key).is_some() {
            if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
                inner.lru.remove(pos);
            }
            inner.stats.invalidations += 1;
        }
    }

    /// Drops every entry under directory `dir` (on rmdir of `dir` or a
    /// rename that moves it).
    pub fn invalidate_dir(&self, dir: InodeNo) {
        let mut inner = self.inner.lock();
        let victims: Vec<(InodeNo, String)> = inner
            .map
            .keys()
            .filter(|(d, _)| *d == dir)
            .cloned()
            .collect();
        for key in victims {
            inner.map.remove(&key);
            if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
                inner.lru.remove(pos);
            }
            inner.stats.invalidations += 1;
        }
    }

    /// Drops everything.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let n = inner.map.len() as u64;
        inner.map.clear();
        inner.lru.clear();
        inner.stats.invalidations += n;
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> DcacheStats {
        self.inner.lock().stats
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let d = Dcache::new(8);
        assert_eq!(d.get(1, "a"), None);
        d.insert(1, "a", 42);
        assert_eq!(d.get(1, "a"), Some(42));
        let s = d.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn capacity_evicts_least_recent() {
        let d = Dcache::new(2);
        d.insert(1, "a", 10);
        d.insert(1, "b", 11);
        d.get(1, "a"); // refresh a
        d.insert(1, "c", 12); // evicts b
        assert_eq!(d.get(1, "a"), Some(10));
        assert_eq!(d.get(1, "b"), None);
        assert_eq!(d.get(1, "c"), Some(12));
        assert_eq!(d.stats().evictions, 1);
    }

    #[test]
    fn invalidation_removes_entry() {
        let d = Dcache::new(8);
        d.insert(1, "a", 10);
        d.invalidate(1, "a");
        assert_eq!(d.get(1, "a"), None);
        assert_eq!(d.stats().invalidations, 1);
        // Invalidating a missing entry is a no-op.
        d.invalidate(1, "zzz");
        assert_eq!(d.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_dir_scopes_to_directory() {
        let d = Dcache::new(8);
        d.insert(1, "a", 10);
        d.insert(1, "b", 11);
        d.insert(2, "a", 20);
        d.invalidate_dir(1);
        assert_eq!(d.get(1, "a"), None);
        assert_eq!(d.get(1, "b"), None);
        assert_eq!(d.get(2, "a"), Some(20));
    }

    #[test]
    fn same_name_in_different_dirs_distinct() {
        let d = Dcache::new(8);
        d.insert(1, "x", 100);
        d.insert(2, "x", 200);
        assert_eq!(d.get(1, "x"), Some(100));
        assert_eq!(d.get(2, "x"), Some(200));
    }

    #[test]
    fn reinsert_updates_value() {
        let d = Dcache::new(8);
        d.insert(1, "a", 10);
        d.insert(1, "a", 99);
        assert_eq!(d.get(1, "a"), Some(99));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let d = Dcache::new(8);
        d.insert(1, "a", 10);
        d.clear();
        assert!(d.is_empty());
    }
}
