//! Live module replacement: quiescence, state transfer, resume.
//!
//! The registry swap ([`sk_core::modularity::Registry::replace`]) makes a
//! new implementation visible to existing handles, but on its own it is
//! not a *live* replacement: operations in flight keep running against
//! the retired generation, the dentry cache and the fd table still hold
//! the old generation's inode numbers, and nothing guarantees the new
//! generation is durable at the instant it becomes authoritative. The
//! [`Migrator`] turns the swap into a protocol:
//!
//! 1. **Quiesce** — close the [`SwapGate`] (new admissions block, ops in
//!    flight drain because each holds the gate shared for its duration),
//!    drain every registered ring's queued SQEs against the old
//!    generation, and drive the old generation's journal through one
//!    final commit + checkpoint ([`FileSystem::quiesce_for_handoff`]),
//!    which also releases every `Delay` pin — at the end of this step the
//!    old generation's cache holds **no dirty state**.
//! 2. **Transfer** — walk the tree once ([`copy_tree`]), building the
//!    old→new inode map. Clean blocks are *not* copied at the block
//!    layer: the new generation re-faults them from its own device on
//!    demand; dirty state crossed over in step 1's final commit, so the
//!    tree walk observes only durable content. The new generation is then
//!    itself quiesced, so the fsync watermark established on the old
//!    generation is honored by the new one *before* it can become
//!    authoritative — a crash image sampled mid-handoff judges against
//!    the pre-swap durable prefix on either device.
//! 3. **Resume** — replace the registry slot, remap the warm dcache and
//!    the open-fd table through the inode map (ownership of the cached
//!    entries moves; they are rekeyed, not rebuilt from cold), reopen the
//!    gate. Blocked operations complete against the new generation.
//!
//! Any error before the registry replacement aborts cleanly: the old
//! generation stays mounted and authoritative, caches untouched, the
//! gate reopens, and the caller may retry.
//!
//! The blackout window — the wall time the gate stays closed — is the
//! cost of the protocol and is reported per swap in [`SwapReport`]
//! (measured in `bench_report`'s `hot_swap` section, see DESIGN.md §17).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use sk_core::modularity::Registry;
use sk_ksim::errno::KResult;

use crate::inode::{FileType, InodeNo};
use crate::modular::FileSystem;
use crate::path::{Vfs, FS_INTERFACE};
use crate::ring::Ring;

/// Old-generation inode number → new-generation inode number, built by
/// [`copy_tree`] during state transfer and used to rekey the dcache and
/// the open-fd table. Always contains the root→root mapping.
pub type InoMap = HashMap<InodeNo, InodeNo>;

/// The admission gate every VFS operation passes through.
///
/// Operations hold the gate *shared* for their duration; the
/// [`Migrator`] holds it *exclusive* across quiesce/transfer/switch.
/// `parking_lot`'s fair `RwLock` blocks new readers once a writer
/// waits, so the gate closes promptly: the blackout starts as soon as
/// in-flight operations drain, not when the workload happens to pause.
pub struct SwapGate {
    lock: RwLock<()>,
    /// Operations that found the gate closed (or closing) and had to
    /// block — the denominator of the blackout accounting.
    blocked: AtomicU64,
    /// Completed swaps through this gate.
    swaps: AtomicU64,
}

impl Default for SwapGate {
    fn default() -> Self {
        SwapGate::new()
    }
}

impl SwapGate {
    /// Creates an open gate.
    pub fn new() -> SwapGate {
        SwapGate {
            lock: RwLock::new(()),
            blocked: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
        }
    }

    /// Admits one operation (shared). Blocks while a swap holds the gate
    /// exclusive. The guard must be held for the full operation and
    /// must not be re-entered from the same thread (the fair lock would
    /// deadlock a recursive reader behind a waiting swap — which is why
    /// [`Vfs`] gates only its public entry points).
    pub fn enter(&self) -> RwLockReadGuard<'_, ()> {
        if let Some(g) = self.lock.try_read() {
            return g;
        }
        self.blocked.fetch_add(1, Ordering::Relaxed);
        self.lock.read()
    }

    /// Closes the gate for a swap (exclusive); waits for in-flight
    /// operations to drain.
    fn close(&self) -> RwLockWriteGuard<'_, ()> {
        self.lock.write()
    }

    /// Operations that blocked on a closed gate since creation.
    pub fn blocked_ops(&self) -> u64 {
        self.blocked.load(Ordering::Relaxed)
    }

    /// Completed swaps through this gate.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

/// What one [`Migrator::swap`] did, for benches and assertions.
#[derive(Debug, Clone, Default)]
pub struct SwapReport {
    /// Wall nanoseconds the gate was held exclusive — the blackout
    /// window during which admissions stalled.
    pub blackout_ns: u64,
    /// Ring SQEs the migrator drained against the old generation.
    pub drained_sqes: u64,
    /// Operations that blocked on the gate during this swap.
    pub blocked_ops: u64,
    /// Regular files copied by the tree walk.
    pub copied_files: u64,
    /// Directories created by the tree walk.
    pub copied_dirs: u64,
    /// File content bytes moved by the tree walk.
    pub copied_bytes: u64,
    /// Warm dentries rekeyed into the new generation's inode space.
    pub remapped_dentries: u64,
    /// Open descriptors rekeyed; they keep position and flags.
    pub remapped_fds: u64,
    /// Open descriptors that could not be carried (their inode has no
    /// name in the transferred tree — e.g. unlinked-but-open files) and
    /// were invalidated to return `EBADF` honestly.
    pub dropped_fds: u64,
}

/// Handoff phases surfaced to an observer, in order. Scenario harnesses
/// hook these to fire faults or sample crash images *mid-handoff* at
/// deterministic points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigratePhase {
    /// Admissions blocked, rings drained, old generation's journal
    /// committed and checkpointed; its cache holds no dirty state.
    Quiesced,
    /// Tree copied and the new generation made durable; the registry
    /// slot still points at the old generation.
    Transferred,
    /// Registry replaced, caches rekeyed, gate reopened.
    Resumed,
}

type Observer<'a> = Box<dyn FnMut(MigratePhase) + 'a>;

/// Orchestrates one live generation swap over a [`Vfs`].
pub struct Migrator<'a> {
    vfs: &'a Vfs,
    registry: &'a Registry,
    rings: Vec<Arc<Ring>>,
    observer: Option<Observer<'a>>,
}

impl<'a> Migrator<'a> {
    /// A migrator for `vfs`, whose file system slot lives in `registry`.
    pub fn new(vfs: &'a Vfs, registry: &'a Registry) -> Migrator<'a> {
        Migrator {
            vfs,
            registry,
            rings: Vec::new(),
            observer: None,
        }
    }

    /// Registers a ring whose queued SQEs must drain against the old
    /// generation before state transfer (they were admitted before the
    /// swap; their effects must cross with the tree).
    pub fn with_ring(mut self, ring: &Arc<Ring>) -> Self {
        self.rings.push(Arc::clone(ring));
        self
    }

    /// Installs a phase observer (scenario harnesses use this to inject
    /// faults or sample crash images mid-handoff).
    pub fn with_observer(mut self, f: impl FnMut(MigratePhase) + 'a) -> Self {
        self.observer = Some(Box::new(f));
        self
    }

    fn observe(&mut self, phase: MigratePhase) {
        if let Some(f) = &mut self.observer {
            f(phase);
        }
    }

    /// Performs the swap to `next` (registered as `impl_name`),
    /// returning the blackout accounting.
    ///
    /// On error the old generation remains mounted and authoritative:
    /// nothing was replaced, no cache was touched, and the gate is open
    /// again — the caller may retry or keep running.
    pub fn swap(
        mut self,
        impl_name: &'static str,
        next: Arc<dyn FileSystem>,
    ) -> KResult<SwapReport> {
        let mut report = SwapReport::default();
        let gate = self.vfs.gate();
        let old = self.vfs.fs_handle().get();
        let blocked_before = gate.blocked_ops();

        // 1. Quiesce. Closing the gate waits out in-flight operations
        // (each holds it shared); from here until reopen, admission is
        // blocked and the blackout clock runs.
        let guard = gate.close();
        let blackout_start = Instant::now();

        // Queued ring SQEs were admitted before the swap: complete them
        // against the old generation so their effects transfer with the
        // tree. The gated reactor is parked outside its shared hold, so
        // this drain races nothing.
        for ring in &self.rings {
            loop {
                let n = ring.drain_once(&*old);
                if n == 0 {
                    break;
                }
                report.drained_sqes += n as u64;
            }
        }

        // One final commit + checkpoint: every staged op becomes
        // durable, every Delay pin releases, the cache holds no dirty
        // block. An error here aborts the swap with the old generation
        // untouched and still authoritative.
        old.quiesce_for_handoff()?;
        self.observe(MigratePhase::Quiesced);

        // 2. Transfer. The tree walk sees only durable content now; the
        // ino map is the key for rekeying the warm caches below.
        let mut map = InoMap::new();
        map.insert(old.root_ino(), next.root_ino());
        copy_tree_into(
            &*old,
            &*next,
            old.root_ino(),
            next.root_ino(),
            &mut map,
            &mut report,
        )?;

        // The new generation must honor the fsync watermark carried from
        // the old one *before* it can become authoritative: a crash
        // sampled right after the switch must recover the pre-swap
        // durable prefix from the new device.
        next.quiesce_for_handoff()?;
        self.observe(MigratePhase::Transferred);

        // 3. Switch + resume. From the replace on, errors can no longer
        // abort (the new generation is live), but none of the steps
        // below are fallible.
        self.registry
            .replace::<dyn FileSystem>(FS_INTERFACE, impl_name, next)?;
        report.remapped_dentries = self.vfs.dcache().remap(|ino| map.get(&ino).copied());
        let (kept, dropped) = self.vfs.remap_open_files(|ino| map.get(&ino).copied());
        report.remapped_fds = kept;
        report.dropped_fds = dropped;

        gate.swaps.fetch_add(1, Ordering::Relaxed);
        report.blackout_ns = blackout_start.elapsed().as_nanos() as u64;
        report.blocked_ops = gate.blocked_ops() - blocked_before;
        drop(guard);
        self.observe(MigratePhase::Resumed);
        Ok(report)
    }
}

/// Copies the tree rooted at `sdir` (in `src`) into `ddir` (in `dst`),
/// returning the old→new inode map (root mapping included).
///
/// This is the state-transfer walk the migration tests used to carry as
/// a private helper; promoted here so the [`Migrator`], the soaks, and
/// the benches share one implementation. Errors propagate — a fault
/// mid-copy aborts the caller's swap cleanly.
pub fn copy_tree(
    src: &dyn FileSystem,
    dst: &dyn FileSystem,
    sdir: InodeNo,
    ddir: InodeNo,
) -> KResult<InoMap> {
    let mut map = InoMap::new();
    map.insert(sdir, ddir);
    let mut report = SwapReport::default();
    copy_tree_into(src, dst, sdir, ddir, &mut map, &mut report)?;
    Ok(map)
}

fn copy_tree_into(
    src: &dyn FileSystem,
    dst: &dyn FileSystem,
    sdir: InodeNo,
    ddir: InodeNo,
    map: &mut InoMap,
    report: &mut SwapReport,
) -> KResult<()> {
    for entry in src.readdir(sdir)? {
        let attr = src.getattr(entry.ino)?;
        match attr.ftype {
            FileType::Directory => {
                let nd = dst.mkdir(ddir, &entry.name)?;
                map.insert(entry.ino, nd);
                report.copied_dirs += 1;
                copy_tree_into(src, dst, entry.ino, nd, map, report)?;
            }
            FileType::Regular => {
                let nf = dst.create(ddir, &entry.name)?;
                let mut data = vec![0u8; attr.size as usize];
                let n = src.read(entry.ino, 0, &mut data)?;
                data.truncate(n);
                dst.write(nf, 0, &data)?;
                map.insert(entry.ino, nf);
                report.copied_files += 1;
                report.copied_bytes += n as u64;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memfs::MemFs;

    fn seed(fs: &dyn FileSystem) {
        let root = fs.root_ino();
        let d = fs.mkdir(root, "d").unwrap();
        let f = fs.create(root, "f").unwrap();
        fs.write(f, 0, b"top").unwrap();
        let g = fs.create(d, "g").unwrap();
        fs.write(g, 0, b"nested").unwrap();
    }

    #[test]
    fn copy_tree_returns_a_complete_ino_map() {
        let a = MemFs::new();
        let b = MemFs::new();
        seed(&a);
        let map = copy_tree(&a, &b, a.root_ino(), b.root_ino()).unwrap();
        // root + d + f + g
        assert_eq!(map.len(), 4);
        for (old, new) in &map {
            let oa = a.getattr(*old).unwrap();
            let na = b.getattr(*new).unwrap();
            assert_eq!(oa.ftype, na.ftype);
            assert_eq!(oa.size, na.size);
        }
        assert_eq!(
            crate::modular::fs_abstraction(&a),
            crate::modular::fs_abstraction(&b)
        );
    }

    #[test]
    fn copy_tree_propagates_errors() {
        let a = MemFs::new();
        let b = MemFs::new();
        seed(&a);
        // Pre-create a colliding file so the copy fails mid-walk.
        b.create(b.root_ino(), "f").unwrap();
        assert!(copy_tree(&a, &b, a.root_ino(), b.root_ino()).is_err());
    }

    #[test]
    fn gate_counts_blocked_entries() {
        let gate = Arc::new(SwapGate::new());
        {
            let _open = gate.enter();
            assert_eq!(gate.blocked_ops(), 0, "open gate admits without blocking");
        }
        let w = gate.close();
        let g2 = Arc::clone(&gate);
        let t = std::thread::spawn(move || {
            let _g = g2.enter();
        });
        // Wait until the entering thread has registered as blocked.
        while gate.blocked_ops() == 0 {
            std::thread::yield_now();
        }
        drop(w);
        t.join().unwrap();
        assert_eq!(gate.blocked_ops(), 1);
    }
}
