//! Shim layers between the legacy and modular file system interfaces.
//!
//! "A shim layer is then needed to bridge the communication gap between the
//! verified modules and unverified components" (§4.4). Two directions:
//!
//! - [`LegacyFsAdapter`]: presents a legacy ops table *as* a modular
//!   [`FileSystem`], so a Step-0 implementation can sit behind the Step-1
//!   registry while awaiting replacement. This is the state of the world at
//!   the start of `examples/incremental_migration.rs`. Every call crosses a
//!   [`Boundary`] (counted), decodes `ERR_PTR`/signed returns into
//!   `KResult`, and — faithfully to the paper's `write_begin`/`write_end`
//!   example — threads the legacy `void *` fsdata between the two halves of
//!   a write.
//! - [`export_legacy`]: wraps a modular [`FileSystem`] in a legacy ops
//!   table, for unconverted callers that still speak `ERR_PTR`. Incremental
//!   replacement needs both directions, since callers and callees convert
//!   at different times.

use std::sync::Arc;

use sk_core::shim::Boundary;
use sk_ksim::errno::{Errno, KResult};
use sk_legacy::{ErrPtr, LegacyCtx, VoidPtr};

use crate::inode::{Attr, InodeNo};
use crate::legacy_ops::{ret_check, ret_err, ret_ok, LegacyFsOps};
use crate::modular::{DirEntry, FileSystem, StatFs};

/// Adapts a legacy ops table to the modular interface.
pub struct LegacyFsAdapter {
    ops: Arc<LegacyFsOps>,
    ctx: LegacyCtx,
    boundary: Boundary,
}

impl LegacyFsAdapter {
    /// Wraps `ops`, calling it in `ctx` and accounting crossings to a
    /// boundary named after the file system.
    pub fn new(ops: Arc<LegacyFsOps>, ctx: LegacyCtx) -> Self {
        LegacyFsAdapter {
            boundary: Boundary::new("vfs<->legacy-fs"),
            ops,
            ctx,
        }
    }

    /// The boundary instrumentation.
    pub fn boundary(&self) -> &Boundary {
        &self.boundary
    }

    /// The legacy kernel context (for the fault study's ledger).
    pub fn ctx(&self) -> &LegacyCtx {
        &self.ctx
    }

    /// Decodes an `ERR_PTR` that should point at a `T`, freeing the carrier
    /// object (the legacy side allocates, the shim frees — that contract is
    /// itself part of the boundary's axioms).
    fn take<T: 'static>(&self, e: ErrPtr, site: &'static str) -> KResult<T> {
        let p = e.check()?;
        self.ctx.vp_take::<T>(p, site).ok_or(Errno::EFAULT)
    }
}

impl FileSystem for LegacyFsAdapter {
    fn fs_name(&self) -> &'static str {
        self.ops.fs_name
    }

    fn root_ino(&self) -> InodeNo {
        self.ops.root_ino
    }

    fn lookup(&self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        let op = self.ops.lookup.as_ref().ok_or(Errno::ENOSYS)?;
        let e = self.boundary.cross(|| op(&self.ctx, dir, name));
        self.take::<InodeNo>(e, "shim::lookup")
    }

    fn getattr(&self, ino: InodeNo) -> KResult<Attr> {
        let op = self.ops.getattr.as_ref().ok_or(Errno::ENOSYS)?;
        let e = self.boundary.cross(|| op(&self.ctx, ino));
        self.take::<Attr>(e, "shim::getattr")
    }

    fn create(&self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        let op = self.ops.create.as_ref().ok_or(Errno::ENOSYS)?;
        let e = self.boundary.cross(|| op(&self.ctx, dir, name));
        self.take::<InodeNo>(e, "shim::create")
    }

    fn mkdir(&self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        let op = self.ops.mkdir.as_ref().ok_or(Errno::ENOSYS)?;
        let e = self.boundary.cross(|| op(&self.ctx, dir, name));
        self.take::<InodeNo>(e, "shim::mkdir")
    }

    fn unlink(&self, dir: InodeNo, name: &str) -> KResult<()> {
        let op = self.ops.unlink.as_ref().ok_or(Errno::ENOSYS)?;
        ret_check(self.boundary.cross(|| op(&self.ctx, dir, name))).map(|_| ())
    }

    fn rmdir(&self, dir: InodeNo, name: &str) -> KResult<()> {
        let op = self.ops.rmdir.as_ref().ok_or(Errno::ENOSYS)?;
        ret_check(self.boundary.cross(|| op(&self.ctx, dir, name))).map(|_| ())
    }

    fn read(&self, ino: InodeNo, off: u64, buf: &mut [u8]) -> KResult<usize> {
        let op = self.ops.read.as_ref().ok_or(Errno::ENOSYS)?;
        ret_check(self.boundary.cross(|| op(&self.ctx, ino, off, buf))).map(|n| n as usize)
    }

    fn write(&self, ino: InodeNo, off: u64, data: &[u8]) -> KResult<usize> {
        // The paper's example, across the boundary: write_begin returns a
        // `void *` fsdata that the kernel must carry to write_end.
        let begin = self.ops.write_begin.as_ref().ok_or(Errno::ENOSYS)?;
        let end = self.ops.write_end.as_ref().ok_or(Errno::ENOSYS)?;
        let fsdata = self
            .boundary
            .cross(|| begin(&self.ctx, ino, off, data.len()))
            .check()?;
        let r = self
            .boundary
            .cross(|| end(&self.ctx, ino, off, data, fsdata));
        ret_check(r).map(|n| n as usize)
    }

    fn readdir(&self, dir: InodeNo) -> KResult<Vec<DirEntry>> {
        let op = self.ops.readdir.as_ref().ok_or(Errno::ENOSYS)?;
        let e = self.boundary.cross(|| op(&self.ctx, dir));
        let raw: Vec<(String, InodeNo)> = self.take(e, "shim::readdir")?;
        Ok(raw
            .into_iter()
            .map(|(name, ino)| DirEntry { name, ino })
            .collect())
    }

    fn rename(
        &self,
        olddir: InodeNo,
        oldname: &str,
        newdir: InodeNo,
        newname: &str,
    ) -> KResult<()> {
        let op = self.ops.rename.as_ref().ok_or(Errno::ENOSYS)?;
        ret_check(
            self.boundary
                .cross(|| op(&self.ctx, olddir, oldname, newdir, newname)),
        )
        .map(|_| ())
    }

    fn truncate(&self, ino: InodeNo, size: u64) -> KResult<()> {
        let op = self.ops.truncate.as_ref().ok_or(Errno::ENOSYS)?;
        ret_check(self.boundary.cross(|| op(&self.ctx, ino, size))).map(|_| ())
    }

    fn sync(&self) -> KResult<()> {
        let op = self.ops.sync.as_ref().ok_or(Errno::ENOSYS)?;
        ret_check(self.boundary.cross(|| op(&self.ctx))).map(|_| ())
    }

    fn fsync(&self, ino: InodeNo) -> KResult<()> {
        // Linux-style slot fallback: a table without a per-file fsync
        // entry gets the whole-device sync (a superset of the required
        // durability), and only a table with *neither* refuses.
        if let Some(op) = self.ops.fsync.as_ref() {
            return ret_check(self.boundary.cross(|| op(&self.ctx, ino))).map(|_| ());
        }
        let op = self.ops.sync.as_ref().ok_or(Errno::ENOSYS)?;
        ret_check(self.boundary.cross(|| op(&self.ctx))).map(|_| ())
    }

    fn statfs(&self) -> KResult<StatFs> {
        let op = self.ops.statfs.as_ref().ok_or(Errno::ENOSYS)?;
        let e = self.boundary.cross(|| op(&self.ctx));
        self.take::<StatFs>(e, "shim::statfs")
    }

    fn quiesce_for_handoff(&self) -> KResult<()> {
        // The legacy interface has no handoff notion; the strongest
        // quiescence a C-side table offers is its whole-device sync,
        // which leaves no dirty state behind on the implementations we
        // adapt. A table without even `sync` cannot promise that, so
        // the migrator's abort path gets ENOSYS.
        let op = self.ops.sync.as_ref().ok_or(Errno::ENOSYS)?;
        ret_check(self.boundary.cross(|| op(&self.ctx))).map(|_| ())
    }
}

/// Exports a modular file system through the legacy ops interface, for
/// callers that have not converted yet.
pub fn export_legacy(fs: Arc<dyn FileSystem>, _ctx: &LegacyCtx) -> LegacyFsOps {
    let mut ops = LegacyFsOps::empty(fs.fs_name(), fs.root_ino());

    let f = Arc::clone(&fs);
    ops.lookup = Some(Box::new(move |ctx, dir, name| match f.lookup(dir, name) {
        Ok(ino) => ErrPtr::ok(ctx.vp_new(ino)),
        Err(e) => ErrPtr::err(e),
    }));

    let f = Arc::clone(&fs);
    ops.create = Some(Box::new(move |ctx, dir, name| match f.create(dir, name) {
        Ok(ino) => ErrPtr::ok(ctx.vp_new(ino)),
        Err(e) => ErrPtr::err(e),
    }));

    let f = Arc::clone(&fs);
    ops.mkdir = Some(Box::new(move |ctx, dir, name| match f.mkdir(dir, name) {
        Ok(ino) => ErrPtr::ok(ctx.vp_new(ino)),
        Err(e) => ErrPtr::err(e),
    }));

    let f = Arc::clone(&fs);
    ops.unlink = Some(Box::new(move |_, dir, name| match f.unlink(dir, name) {
        Ok(()) => 0,
        Err(e) => ret_err(e),
    }));

    let f = Arc::clone(&fs);
    ops.rmdir = Some(Box::new(move |_, dir, name| match f.rmdir(dir, name) {
        Ok(()) => 0,
        Err(e) => ret_err(e),
    }));

    let f = Arc::clone(&fs);
    ops.read = Some(Box::new(move |_, ino, off, buf| {
        match f.read(ino, off, buf) {
            Ok(n) => ret_ok(n as u64),
            Err(e) => ret_err(e),
        }
    }));

    // The safe side has no fsdata to smuggle; the shim gives legacy callers
    // a NULL `void *`, which `write_end` below ignores.
    ops.write_begin = Some(Box::new(move |_, _, _, _| ErrPtr::ok(VoidPtr::NULL)));

    let f = Arc::clone(&fs);
    ops.write_end = Some(Box::new(move |_, ino, off, data, _fsdata| {
        match f.write(ino, off, data) {
            Ok(n) => ret_ok(n as u64),
            Err(e) => ret_err(e),
        }
    }));

    let f = Arc::clone(&fs);
    ops.readdir = Some(Box::new(move |ctx, dir| match f.readdir(dir) {
        Ok(entries) => {
            let raw: Vec<(String, InodeNo)> =
                entries.into_iter().map(|e| (e.name, e.ino)).collect();
            ErrPtr::ok(ctx.vp_new(raw))
        }
        Err(e) => ErrPtr::err(e),
    }));

    let f = Arc::clone(&fs);
    ops.rename = Some(Box::new(move |_, od, on, nd, nn| {
        match f.rename(od, on, nd, nn) {
            Ok(()) => 0,
            Err(e) => ret_err(e),
        }
    }));

    let f = Arc::clone(&fs);
    ops.truncate = Some(Box::new(move |_, ino, size| match f.truncate(ino, size) {
        Ok(()) => 0,
        Err(e) => ret_err(e),
    }));

    let f = Arc::clone(&fs);
    ops.sync = Some(Box::new(move |_| match f.sync() {
        Ok(()) => 0,
        Err(e) => ret_err(e),
    }));

    let f = Arc::clone(&fs);
    ops.fsync = Some(Box::new(move |_, ino| match f.fsync(ino) {
        Ok(()) => 0,
        Err(e) => ret_err(e),
    }));

    let f = Arc::clone(&fs);
    ops.getattr = Some(Box::new(move |ctx, ino| match f.getattr(ino) {
        Ok(attr) => ErrPtr::ok(ctx.vp_new(attr)),
        Err(e) => ErrPtr::err(e),
    }));

    let f = Arc::clone(&fs);
    ops.statfs = Some(Box::new(move |ctx| match f.statfs() {
        Ok(s) => ErrPtr::ok(ctx.vp_new(s)),
        Err(e) => ErrPtr::err(e),
    }));

    ops
}
