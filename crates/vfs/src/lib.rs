//! # sk-vfs — the virtual file system layer
//!
//! The VFS is the paper's recurring example of both the good and the bad in
//! Linux interface design: "VFS provides an abstract file system interface"
//! (§4.1's example of modularity that already exists), but it also passes
//! `void *` custom data between `write_begin`/`write_end` (§4.2), returns
//! pointer-or-error words from `lookup` (§4.2), and hands file systems a
//! generic `inode` whose locking rules live in comments (§4.3).
//!
//! This crate implements the layer twice over:
//!
//! - [`legacy_ops`]: the Step-0 interface — C-style ops struct with
//!   `ERR_PTR` returns, signed count-or-errno returns, and the
//!   `write_begin`/`write_end` `void *` plumbing.
//! - [`modular`]: the roadmap interface — a [`modular::FileSystem`] trait
//!   whose signatures encode the paper's three ownership-sharing models
//!   and whose errors are `KResult`.
//! - [`inode`]: the shared generic inode, with `i_lock` and the "maybe
//!   protected" `i_size` field reproduced faithfully via
//!   `sk_ksim::lock::Protected`.
//! - [`path`]: mount table, path resolution, fd table — the kernel-side
//!   machinery above the file system interface, generic over which backend
//!   is mounted (so one workload runs unchanged across every roadmap step).
//! - [`dcache`]: a dentry cache with invalidation on unlink/rename.
//! - [`spec`]: the abstract file-system model from §4.4 — "a map from path
//!   strings to file content bytes" — with the paper's prefix-substitution
//!   rename relation, used by the refinement and crash checkers.
//! - [`shim`]: the adapter exposing a legacy ops table through the modular
//!   interface (and vice versa), the "shim layer at every incremental
//!   boundary".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dcache;
pub mod inode;
pub mod legacy_ops;
pub mod memfs;
pub mod migrate;
pub mod modular;
pub mod path;
pub mod ring;
pub mod shim;
pub mod spec;

pub use inode::{Attr, FileType, InodeNo};
pub use memfs::MemFs;
pub use migrate::{copy_tree, InoMap, MigratePhase, Migrator, SwapGate, SwapReport};
pub use modular::{BatchOp, BatchReply, DirEntry, FileSystem, StatFs};
pub use path::{OpenFlags, Vfs};
pub use ring::{Cqe, Ring, RingReactor, RingStats, RingThrottle};
pub use spec::FsModel;
