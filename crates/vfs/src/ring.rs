//! Typed submission/completion rings over the modular file system
//! interface — io_uring's shape, with the paper's ownership discipline.
//!
//! The per-call VFS boundary costs one crossing per operation; at
//! hundreds of thousands of ops per second the boundary itself becomes
//! the bottleneck. The ring amortizes it: clients enqueue typed SQEs
//! ([`crate::modular::BatchOp`]) whose payload buffers *move into* the
//! ring, a reactor thread drains whole batches into one
//! [`FileSystem::submit_batch`] call, and CQEs ([`Cqe`]) return each
//! result together with the buffer, ownership restored to the submitter.
//! No `void *` user_data, no borrowed buffers that the kernel might
//! outlive — the type system enforces what io_uring documents.
//!
//! Backpressure is structural, never advisory:
//!
//! - a full submission queue **blocks the submitter** in
//!   [`Ring::submit`] until the reactor drains entries — clients cannot
//!   out-run the file system into unbounded queues;
//! - the reactor consults a [`RingThrottle`] (journal log pressure)
//!   **between batches** and relieves it (commit + checkpoint) before
//!   admitting more work, so a slow disk propagates to blocked
//!   submitters instead of ballooning the running transaction.
//!
//! The ring's own lock is a [`TrackedMutex`] in the mounted system's
//! lockdep registry, so the reactor path is ordered against the file
//! system's classes like every other hot path. The lock is never held
//! across a file system call: drain, release, process, re-acquire to
//! post completions.
//!
//! One ring supports **N reactors** draining it concurrently
//! (work-stealing): each batch claim happens under the state lock, so
//! a batch is owned by exactly one reactor, and the claim grain
//! ([`Ring::set_claim_grain`], set automatically by the pool spawners)
//! splits a full queue across the pool instead of letting one reactor
//! take everything. Completions use *batched* CQE wakeups — one
//! broadcast per posted batch rather than one notify per ticket — and
//! idle reactors follow an adaptive spin-then-park policy so a busy
//! ring never pays a park/unpark per batch.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};
use sk_core::modularity::InterfaceHandle;
use sk_ksim::lock::{LockRegistry, TrackedMutex};

use crate::migrate::SwapGate;
use crate::modular::{BatchOp, BatchReply, FileSystem};

/// Completion-queue entry: the submission's ticket plus its typed reply
/// (result and, for ops that carried one, the buffer — returned on
/// success *and* failure).
#[derive(Debug)]
pub struct Cqe {
    /// The ticket [`Ring::submit`] returned for this op.
    pub ticket: u64,
    /// The op's outcome, buffer ownership included.
    pub reply: BatchReply,
}

/// Ring traffic counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct RingStats {
    /// SQEs accepted.
    pub submitted: u64,
    /// CQEs posted.
    pub completed: u64,
    /// Batches handed to [`FileSystem::submit_batch`].
    pub batches: u64,
    /// Times a submitter blocked on a full submission queue — the
    /// structural-backpressure counter.
    pub sq_full_blocks: u64,
    /// Times the reactor stalled a batch to relieve log pressure.
    pub throttle_stalls: u64,
}

struct RingState {
    sq: VecDeque<(u64, BatchOp)>,
    cq: HashMap<u64, BatchReply>,
    next_ticket: u64,
    shutdown: bool,
}

/// A fixed-depth submission/completion ring bound to one reactor.
///
/// `depth` bounds the submission queue: [`Ring::submit`] blocks while
/// the queue is full, and the reactor drains at most `depth` SQEs per
/// batch, so `depth` is also the batching grain the sweep in
/// `bench_report` varies.
pub struct Ring {
    depth: usize,
    /// Per-claim drain cap. `depth` for a lone reactor; the pool
    /// spawners set it to `depth / reactors` so one batch claim cannot
    /// starve the rest of the pool — the work-stealing grain.
    claim: AtomicUsize,
    state: TrackedMutex<RingState>,
    /// Signalled when the submission queue gains room.
    sq_space: Condvar,
    /// Signalled when the submission queue gains entries (or shutdown).
    sq_ready: Condvar,
    /// Batched CQE wakeup: one broadcast per posted batch. Waiters
    /// re-check their own ticket under the state lock; at any real
    /// depth most parked clients have a completion in the batch that
    /// woke them, so the broadcast replaces a notify-per-ticket storm
    /// with a single call.
    cq_ready: Condvar,
    /// Lock-free mirror of `sq.len()` for the spin phase of the idle
    /// policy — reactors peek at it without touching the state lock.
    sq_len: AtomicUsize,
    /// Adaptive spin budget shared by all reactors on this ring:
    /// doubled when a spin finds work (arrivals outpace park cost),
    /// halved when a spin expires and the reactor parks.
    spin_budget: AtomicU32,
    /// Claimed by the one reactor relieving throttle pressure; the
    /// others admit their batch instead of stacking redundant
    /// commit+checkpoint cycles behind the same journal group lock.
    relieving: AtomicBool,
    /// Leaf counters; never held across another acquisition.
    stats: Mutex<RingStats>,
}

/// Spin-budget bounds for the adaptive idle policy (iterations of
/// [`std::hint::spin_loop`] between queue peeks).
const SPIN_MIN: u32 = 64;
const SPIN_MAX: u32 = 4096;

impl Ring {
    /// Creates a ring of the given depth, its lock reporting to
    /// `registry` so lockdep covers the submit/reactor path.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(registry: &Arc<LockRegistry>, depth: usize) -> Ring {
        assert!(depth > 0, "ring depth must be at least 1");
        Ring {
            depth,
            claim: AtomicUsize::new(depth),
            state: TrackedMutex::new(
                registry,
                "vfs.ring",
                RingState {
                    sq: VecDeque::with_capacity(depth),
                    cq: HashMap::new(),
                    next_ticket: 1,
                    shutdown: false,
                },
            ),
            sq_space: Condvar::new(),
            sq_ready: Condvar::new(),
            cq_ready: Condvar::new(),
            sq_len: AtomicUsize::new(0),
            spin_budget: AtomicU32::new(SPIN_MIN),
            relieving: AtomicBool::new(false),
            stats: Mutex::new(RingStats::default()),
        }
    }

    /// The submission-queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Caps how many SQEs one batch claim may take, clamped to
    /// `[1, depth]`. The pool spawners call this with
    /// `depth / reactors`; callers running a single reactor can leave
    /// the default (`depth`).
    pub fn set_claim_grain(&self, grain: usize) {
        self.claim
            .store(grain.clamp(1, self.depth), Ordering::Relaxed);
    }

    /// Traffic counters.
    pub fn stats(&self) -> RingStats {
        *self.stats.lock()
    }

    /// Enqueues one typed operation, transferring ownership of any
    /// payload buffer into the ring. Blocks while the submission queue
    /// is full — ring-full *is* the backpressure contract. Returns the
    /// ticket to pass to [`Ring::wait`].
    ///
    /// After [`Ring::shutdown`] the op is handed straight back
    /// (`Err(op)`), buffer included — a refused submission never leaks.
    pub fn submit(&self, op: BatchOp) -> Result<u64, BatchOp> {
        let mut st = self.state.lock();
        if st.sq.len() >= self.depth && !st.shutdown {
            self.stats.lock().sq_full_blocks += 1;
            while st.sq.len() >= self.depth && !st.shutdown {
                st.wait(&self.sq_space);
            }
        }
        if st.shutdown {
            return Err(op);
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.sq.push_back((ticket, op));
        self.sq_len.store(st.sq.len(), Ordering::Relaxed);
        self.stats.lock().submitted += 1;
        self.sq_ready.notify_one();
        Ok(ticket)
    }

    /// Blocks until `ticket`'s completion arrives, then returns it.
    ///
    /// Every ticket [`Ring::submit`] accepted is eventually completed —
    /// the reactor drains the residual queue on shutdown — and each
    /// ticket's CQE can be claimed exactly once.
    pub fn wait(&self, ticket: u64) -> Cqe {
        let mut st = self.state.lock();
        loop {
            if let Some(reply) = st.cq.remove(&ticket) {
                return Cqe { ticket, reply };
            }
            st.wait(&self.cq_ready);
        }
    }

    /// Non-blocking [`Ring::wait`].
    pub fn try_reap(&self, ticket: u64) -> Option<Cqe> {
        self.state
            .lock()
            .cq
            .remove(&ticket)
            .map(|reply| Cqe { ticket, reply })
    }

    /// Marks the ring closed: subsequent submissions are refused and the
    /// reactor exits once the residual queue is drained.
    pub fn shutdown(&self) {
        let mut st = self.state.lock();
        st.shutdown = true;
        self.sq_ready.notify_all();
        self.sq_space.notify_all();
    }

    /// The spin phase of the idle policy: burns the current budget
    /// peeking at the lock-free queue-length mirror before the caller
    /// falls back to parking on `sq_ready`. The budget adapts — work
    /// found while spinning doubles it (arrivals are fast enough that
    /// parking costs more than it saves), an expired spin halves it so
    /// a quiet ring converges to parking almost immediately.
    fn spin_for_work(&self) {
        let budget = self.spin_budget.load(Ordering::Relaxed);
        for _ in 0..budget {
            if self.sq_len.load(Ordering::Relaxed) > 0 {
                self.spin_budget
                    .store((budget * 2).min(SPIN_MAX), Ordering::Relaxed);
                return;
            }
            std::hint::spin_loop();
        }
        self.spin_budget
            .store((budget / 2).max(SPIN_MIN), Ordering::Relaxed);
    }

    /// Claims up to one grain of SQEs, blocking until at least one is
    /// available. Space is released to submitters *before* the batch is
    /// processed, so clients refill the queue while the reactor works.
    /// The claim happens under the state lock, so with N reactors each
    /// SQE is drained by exactly one of them. Returns an empty batch
    /// only when the ring is shut down and fully drained.
    fn drain_batch(&self) -> Vec<(u64, BatchOp)> {
        self.spin_for_work();
        let mut st = self.state.lock();
        while st.sq.is_empty() && !st.shutdown {
            st.wait(&self.sq_ready);
        }
        let take = st.sq.len().min(self.claim.load(Ordering::Relaxed));
        let batch: Vec<(u64, BatchOp)> = st.sq.drain(..take).collect();
        self.sq_len.store(st.sq.len(), Ordering::Relaxed);
        drop(st);
        self.notify_space(batch.len());
        batch
    }

    /// Wakes one parked submitter per freed slot — a broadcast would
    /// wake every parked client for a single slot at depth 1.
    fn notify_space(&self, slots: usize) {
        for _ in 0..slots {
            self.sq_space.notify_one();
        }
    }

    /// Posts one reply per drained SQE, then wakes waiters with a
    /// single broadcast — the batched CQE wakeup. One notify per
    /// *batch*, not per ticket: at any real depth most parked clients
    /// have a completion in the batch, so the per-ticket bookkeeping
    /// bought nothing and cost a waiter map under the hot lock.
    fn post(&self, tickets: Vec<u64>, replies: Vec<BatchReply>) {
        debug_assert_eq!(tickets.len(), replies.len());
        let n = replies.len() as u64;
        {
            let mut st = self.state.lock();
            for (ticket, reply) in tickets.into_iter().zip(replies) {
                st.cq.insert(ticket, reply);
            }
        }
        self.cq_ready.notify_all();
        let mut stats = self.stats.lock();
        stats.completed += n;
        stats.batches += 1;
    }

    /// One reactor step: drain a batch (blocking until work or
    /// shutdown), relieve the throttle if it reads at or over threshold,
    /// process the batch through `fs`, post completions. Returns `false`
    /// once the ring is shut down and drained — the reactor loop's exit.
    pub fn reactor_tick(&self, fs: &dyn FileSystem, throttle: Option<&RingThrottle>) -> bool {
        let batch = self.drain_batch();
        if batch.is_empty() {
            return false;
        }
        self.relieve(throttle);
        let (tickets, ops): (Vec<u64>, Vec<BatchOp>) = batch.into_iter().unzip();
        let replies = fs.submit_batch(ops);
        self.post(tickets, replies);
        true
    }

    /// Relieves the throttle until the pressure reading drops below
    /// threshold — bounded, so a wedged (EROFS) journal cannot spin the
    /// reactor; the batch is then admitted and fails op by op.
    ///
    /// With N reactors the pressure reading is shared, so only one of
    /// them relieves at a time (the `relieving` flag): the others admit
    /// their batch instead of stacking redundant commit+checkpoint
    /// cycles behind the same journal group lock. Pressure is re-read
    /// before every batch, so an admission that raced past the reliever
    /// stalls on its next tick if relief did not land.
    fn relieve(&self, throttle: Option<&RingThrottle>) {
        let Some(t) = throttle else { return };
        if (t.pressure)() < t.threshold {
            return;
        }
        if self
            .relieving
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let mut rounds = 0;
        while (t.pressure)() >= t.threshold && rounds < 8 {
            self.stats.lock().throttle_stalls += 1;
            (t.relieve)();
            rounds += 1;
        }
        self.relieving.store(false, Ordering::Release);
    }

    /// Blocks until the submission queue is non-empty or the ring is
    /// shut down (spinning first, per the idle policy). Returns `false`
    /// only when shut down *and* drained. Nothing is removed: gated
    /// reactors park here with the swap gate released, so a migrator
    /// never finds SQEs trapped in a reactor's hands mid-handoff — with
    /// N reactors, *all* of them idle here between batches, which is
    /// why the SwapGate handshake needs no per-reactor bookkeeping.
    fn wait_ready(&self) -> bool {
        self.spin_for_work();
        let mut st = self.state.lock();
        while st.sq.is_empty() && !st.shutdown {
            st.wait(&self.sq_ready);
        }
        !(st.sq.is_empty() && st.shutdown)
    }

    /// Claims up to one grain of SQEs without blocking.
    fn drain_nonblocking(&self) -> Vec<(u64, BatchOp)> {
        let mut st = self.state.lock();
        let take = st.sq.len().min(self.claim.load(Ordering::Relaxed));
        let batch: Vec<(u64, BatchOp)> = st.sq.drain(..take).collect();
        self.sq_len.store(st.sq.len(), Ordering::Relaxed);
        drop(st);
        self.notify_space(batch.len());
        batch
    }

    /// One generation-aware reactor step — the swap-hazard fix. The
    /// plain [`Ring::reactor_tick`] captures one `Arc<dyn FileSystem>`
    /// for the reactor's lifetime, so SQEs processed after a registry
    /// swap still execute against the retired generation and their
    /// effects are lost from the new one. This tick instead:
    ///
    /// 1. waits for work with the gate **released** (a parked reactor
    ///    must not hold SQEs hostage across a handoff — the migrator
    ///    drains the queue itself while the gate is closed);
    /// 2. enters the gate shared, like any other admission;
    /// 3. drains without blocking and dispatches through the interface
    ///    handle, so the batch runs against whichever generation is
    ///    current *at processing time*.
    ///
    /// An empty drain after the wait is the benign race where a migrator
    /// took the queued SQEs first; the reactor just parks again.
    pub fn reactor_tick_gated(
        &self,
        fs: &InterfaceHandle<dyn FileSystem>,
        gate: &SwapGate,
        throttle: Option<&RingThrottle>,
    ) -> bool {
        if !self.wait_ready() {
            return false;
        }
        let _admission = gate.enter();
        let batch = self.drain_nonblocking();
        if batch.is_empty() {
            return true;
        }
        self.relieve(throttle);
        let (tickets, ops): (Vec<u64>, Vec<BatchOp>) = batch.into_iter().unzip();
        let replies = fs.get().submit_batch(ops);
        self.post(tickets, replies);
        true
    }

    /// Deterministic single-step drain for tests: processes whatever is
    /// queued right now (no blocking) and returns how many ops
    /// completed.
    pub fn drain_once(&self, fs: &dyn FileSystem) -> usize {
        let batch: Vec<(u64, BatchOp)> = {
            let mut st = self.state.lock();
            let take = st.sq.len().min(self.depth);
            let batch = st.sq.drain(..take).collect();
            self.sq_len.store(st.sq.len(), Ordering::Relaxed);
            batch
        };
        self.notify_space(batch.len());
        if batch.is_empty() {
            return 0;
        }
        let (tickets, ops): (Vec<u64>, Vec<BatchOp>) = batch.into_iter().unzip();
        let n = ops.len();
        let replies = fs.submit_batch(ops);
        self.post(tickets, replies);
        n
    }
}

/// The reactor's admission throttle: a pressure reading (journal log
/// pressure via `Journal::log_pressure`) plus the action that relieves
/// it (commit the running transaction, checkpoint). Checked between
/// batches, so relief time is charged to the ring — submitters stay
/// blocked on a full queue — rather than to an unbounded running
/// transaction.
pub struct RingThrottle {
    /// Current pressure in `[0, 1]`-ish; compared against `threshold`.
    pub pressure: Box<dyn Fn() -> f32 + Send + Sync>,
    /// Action that lowers the reading.
    pub relieve: Box<dyn Fn() + Send + Sync>,
    /// Admission stalls while `pressure() >= threshold`.
    pub threshold: f32,
}

/// The reactor thread: drains SQE batches from a [`Ring`] into a
/// [`FileSystem`] until shutdown. Dropping joins the thread (after
/// shutting the ring down), so accepted submissions always complete.
pub struct RingReactor {
    ring: Arc<Ring>,
    handle: Option<JoinHandle<()>>,
}

impl RingReactor {
    /// Starts a reactor over `ring` and `fs`, optionally throttled.
    pub fn spawn(ring: Arc<Ring>, fs: Arc<dyn FileSystem>, throttle: Option<RingThrottle>) -> Self {
        let r = Arc::clone(&ring);
        let handle = std::thread::Builder::new()
            .name("ring-reactor".into())
            .spawn(move || while r.reactor_tick(fs.as_ref(), throttle.as_ref()) {})
            .expect("spawn ring reactor");
        RingReactor {
            ring,
            handle: Some(handle),
        }
    }

    /// Starts a generation-aware reactor: batches are dispatched
    /// through `handle` under a shared hold of `gate`, so every SQE
    /// completes against the generation that is current when it is
    /// processed — see [`Ring::reactor_tick_gated`]. This is the
    /// reactor to use on a [`Vfs`](crate::path::Vfs) whose backend may
    /// be hot-swapped by a [`Migrator`](crate::migrate::Migrator).
    pub fn spawn_gated(
        ring: Arc<Ring>,
        handle: InterfaceHandle<dyn FileSystem>,
        gate: Arc<SwapGate>,
        throttle: Option<RingThrottle>,
    ) -> Self {
        let r = Arc::clone(&ring);
        let h = std::thread::Builder::new()
            .name("ring-reactor".into())
            .spawn(move || while r.reactor_tick_gated(&handle, &gate, throttle.as_ref()) {})
            .expect("spawn ring reactor");
        RingReactor {
            ring,
            handle: Some(h),
        }
    }

    /// Starts `reactors` work-stealing reactors over one `ring` — each
    /// claims batches of at most `depth / reactors` SQEs (the claim
    /// grain), so a full queue splits across the pool. Dropping (or
    /// joining) any reactor in the returned pool shuts the ring down;
    /// the rest exit once the residual queue is drained, and their own
    /// drops join them.
    ///
    /// # Panics
    ///
    /// Panics if `reactors == 0`.
    pub fn spawn_pool(
        ring: Arc<Ring>,
        fs: Arc<dyn FileSystem>,
        throttle: Option<Arc<RingThrottle>>,
        reactors: usize,
    ) -> Vec<RingReactor> {
        assert!(reactors > 0, "reactor pool must have at least one reactor");
        ring.set_claim_grain(ring.depth() / reactors);
        (0..reactors)
            .map(|i| {
                let r = Arc::clone(&ring);
                let fs = Arc::clone(&fs);
                let throttle = throttle.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("ring-reactor-{i}"))
                    .spawn(move || while r.reactor_tick(fs.as_ref(), throttle.as_deref()) {})
                    .expect("spawn ring reactor");
                RingReactor {
                    ring: Arc::clone(&ring),
                    handle: Some(handle),
                }
            })
            .collect()
    }

    /// Starts `reactors` generation-aware reactors over one `ring` —
    /// the pool variant of [`RingReactor::spawn_gated`]. Every reactor
    /// parks in `wait_ready` *outside* its shared gate hold, so a
    /// migrator closing the [`SwapGate`] sees the whole pool idle and
    /// drains queued SQEs itself; N reactors need no handshake beyond
    /// the one reactor case.
    ///
    /// # Panics
    ///
    /// Panics if `reactors == 0`.
    pub fn spawn_gated_pool(
        ring: Arc<Ring>,
        handle: InterfaceHandle<dyn FileSystem>,
        gate: Arc<SwapGate>,
        throttle: Option<Arc<RingThrottle>>,
        reactors: usize,
    ) -> Vec<RingReactor> {
        assert!(reactors > 0, "reactor pool must have at least one reactor");
        ring.set_claim_grain(ring.depth() / reactors);
        (0..reactors)
            .map(|i| {
                let r = Arc::clone(&ring);
                let handle = handle.clone();
                let gate = Arc::clone(&gate);
                let throttle = throttle.clone();
                let h = std::thread::Builder::new()
                    .name(format!("ring-reactor-{i}"))
                    .spawn(
                        move || {
                            while r.reactor_tick_gated(&handle, &gate, throttle.as_deref()) {}
                        },
                    )
                    .expect("spawn ring reactor");
                RingReactor {
                    ring: Arc::clone(&ring),
                    handle: Some(h),
                }
            })
            .collect()
    }

    /// Shuts the ring down and joins the reactor once the residual
    /// queue is drained.
    pub fn join(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.ring.shutdown();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RingReactor {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memfs::MemFs;
    use crate::modular::BatchOp;

    #[test]
    fn submit_process_reap_roundtrip() {
        let registry = LockRegistry::new();
        let ring = Arc::new(Ring::new(&registry, 32));
        let fs = MemFs::new();
        let root = fs.root_ino();

        let t_create = ring
            .submit(BatchOp::Create {
                dir: root,
                name: "f".into(),
            })
            .unwrap();
        assert_eq!(ring.drain_once(&fs), 1);
        let ino = match ring.wait(t_create).reply {
            BatchReply::Create(Ok(ino)) => ino,
            other => panic!("create reply: {other:?}"),
        };

        let t_write = ring
            .submit(BatchOp::Write {
                ino,
                off: 0,
                data: b"ring".to_vec(),
            })
            .unwrap();
        let t_read = ring
            .submit(BatchOp::Read {
                ino,
                off: 0,
                buf: vec![0u8; 4],
            })
            .unwrap();
        assert_eq!(ring.drain_once(&fs), 2);
        match ring.wait(t_write).reply {
            BatchReply::Write { result, buf } => {
                assert_eq!(result, Ok(4));
                assert_eq!(buf, b"ring");
            }
            other => panic!("write reply: {other:?}"),
        }
        match ring.wait(t_read).reply {
            BatchReply::Read { result, buf } => {
                assert_eq!(result, Ok(4));
                assert_eq!(buf, b"ring");
            }
            other => panic!("read reply: {other:?}"),
        }
        assert_eq!(ring.stats().submitted, 3);
        assert_eq!(ring.stats().completed, 3);
        assert_eq!(registry.violations().len(), 0);
    }

    #[test]
    fn failed_ops_return_their_buffers() {
        let registry = LockRegistry::new();
        let ring = Arc::new(Ring::new(&registry, 4));
        let fs = MemFs::new();
        // Write to a nonexistent inode: the op fails, the buffer comes back.
        let t = ring
            .submit(BatchOp::Write {
                ino: 9999,
                off: 0,
                data: vec![7u8; 16],
            })
            .unwrap();
        ring.drain_once(&fs);
        match ring.wait(t).reply {
            BatchReply::Write { result, buf } => {
                assert!(result.is_err());
                assert_eq!(buf, vec![7u8; 16]);
            }
            other => panic!("reply: {other:?}"),
        }
    }

    #[test]
    fn shutdown_refuses_new_submissions_with_buffer_returned() {
        let registry = LockRegistry::new();
        let ring = Arc::new(Ring::new(&registry, 4));
        ring.shutdown();
        let refused = ring.submit(BatchOp::Write {
            ino: 1,
            off: 0,
            data: vec![1, 2, 3],
        });
        match refused {
            Err(BatchOp::Write { data, .. }) => assert_eq!(data, vec![1, 2, 3]),
            other => panic!("expected refusal with buffer, got {other:?}"),
        }
    }

    #[test]
    fn reactor_pool_splits_work_and_completes_everything() {
        let registry = LockRegistry::new();
        let ring = Arc::new(Ring::new(&registry, 64));
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let root = fs.root_ino();
        let pool = RingReactor::spawn_pool(Arc::clone(&ring), Arc::clone(&fs), None, 4);
        // Claim grain splits the queue: 64 / 4 reactors.
        assert_eq!(ring.claim.load(Ordering::Relaxed), 16);
        let mut tickets = Vec::new();
        for i in 0..256 {
            tickets.push(
                ring.submit(BatchOp::Create {
                    dir: root,
                    name: format!("p{i}"),
                })
                .unwrap(),
            );
        }
        for t in tickets {
            assert!(matches!(ring.wait(t).reply, BatchReply::Create(Ok(_))));
        }
        for r in pool {
            r.join();
        }
        assert_eq!(fs.readdir(root).unwrap().len(), 256);
        assert_eq!(ring.stats().completed, 256);
        assert_eq!(registry.violations().len(), 0);
    }

    #[test]
    fn reactor_thread_drains_to_completion() {
        let registry = LockRegistry::new();
        let ring = Arc::new(Ring::new(&registry, 8));
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let root = fs.root_ino();
        let reactor = RingReactor::spawn(Arc::clone(&ring), Arc::clone(&fs), None);
        let mut tickets = Vec::new();
        for i in 0..64 {
            tickets.push(
                ring.submit(BatchOp::Create {
                    dir: root,
                    name: format!("f{i}"),
                })
                .unwrap(),
            );
        }
        for t in tickets {
            assert!(matches!(ring.wait(t).reply, BatchReply::Create(Ok(_))));
        }
        reactor.join();
        assert_eq!(fs.readdir(root).unwrap().len(), 64);
    }
}
