//! The abstract file-system model (§4.4's modeling language, instantiated).
//!
//! "For example, a file system can be modeled as a map from path strings to
//! file content bytes." [`FsModel`] is exactly that map (plus the set of
//! directories), and every operation is a *pure function* from model to
//! model — immutable objects, no side effects, as the paper prescribes for
//! modeling languages. The implementation's operations are then verified as
//! relations between before- and after-models by
//! `sk_core::spec::RefinementChecker`.
//!
//! The rename specification is the paper's own example: "the
//! directory-rename operation may be modeled as a relation between old and
//! new maps in which every path key with a given prefix is substituted with
//! a new prefix" — see [`FsModel::rename`].

use std::collections::{BTreeMap, BTreeSet};

use sk_ksim::errno::{Errno, KResult};

/// Normalizes an absolute path: collapses `//`, resolves `.` and `..`,
/// strips trailing slashes. Returns `EINVAL` for relative paths and for
/// `..` escaping the root.
pub fn normalize(path: &str) -> KResult<String> {
    if !path.starts_with('/') {
        return Err(Errno::EINVAL);
    }
    let mut parts: Vec<&str> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                if parts.pop().is_none() {
                    return Err(Errno::EINVAL);
                }
            }
            c => parts.push(c),
        }
    }
    if parts.is_empty() {
        Ok("/".to_string())
    } else {
        Ok(format!("/{}", parts.join("/")))
    }
}

/// The parent directory of a normalized path (`/` has no parent).
pub fn parent_of(path: &str) -> Option<String> {
    if path == "/" {
        return None;
    }
    match path.rfind('/') {
        Some(0) => Some("/".to_string()),
        Some(i) => Some(path[..i].to_string()),
        None => None,
    }
}

/// The final component of a normalized path.
pub fn basename_of(path: &str) -> Option<&str> {
    if path == "/" {
        return None;
    }
    path.rfind('/').map(|i| &path[i + 1..])
}

/// The abstract file system: a map from path strings to content bytes,
/// plus the directory set. The root `/` is always a directory.
///
/// # Examples
///
/// Every operation is a pure function; the paper's prefix-substitution
/// rename falls out of the map view:
///
/// ```
/// use sk_vfs::spec::FsModel;
///
/// let m = FsModel::new()
///     .mkdir("/etc").unwrap()
///     .create("/etc/motd").unwrap()
///     .write("/etc/motd", 0, b"hi").unwrap();
/// let renamed = m.rename("/etc", "/sysconfig").unwrap();
/// assert_eq!(renamed.read("/sysconfig/motd", 0, 2).unwrap(), b"hi");
/// assert!(!renamed.exists("/etc/motd"));
/// // `m` is untouched: models are immutable values.
/// assert!(m.exists("/etc/motd"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsModel {
    /// Regular files: normalized absolute path → content.
    pub files: BTreeMap<String, Vec<u8>>,
    /// Directories, including `/`.
    pub dirs: BTreeSet<String>,
}

impl Default for FsModel {
    fn default() -> Self {
        Self::new()
    }
}

impl FsModel {
    /// The empty file system (just `/`).
    pub fn new() -> Self {
        let mut dirs = BTreeSet::new();
        dirs.insert("/".to_string());
        FsModel {
            files: BTreeMap::new(),
            dirs,
        }
    }

    /// True if `path` names an existing file or directory.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path) || self.dirs.contains(path)
    }

    /// True if `path` names a directory.
    pub fn is_dir(&self, path: &str) -> bool {
        self.dirs.contains(path)
    }

    fn require_parent(&self, path: &str) -> KResult<()> {
        let parent = parent_of(path).ok_or(Errno::EINVAL)?;
        if !self.dirs.contains(&parent) {
            return Err(if self.files.contains_key(&parent) {
                Errno::ENOTDIR
            } else {
                Errno::ENOENT
            });
        }
        Ok(())
    }

    /// Creates an empty file.
    pub fn create(&self, path: &str) -> KResult<FsModel> {
        self.require_parent(path)?;
        if self.exists(path) {
            return Err(Errno::EEXIST);
        }
        let mut next = self.clone();
        next.files.insert(path.to_string(), Vec::new());
        Ok(next)
    }

    /// Creates a directory.
    pub fn mkdir(&self, path: &str) -> KResult<FsModel> {
        self.require_parent(path)?;
        if self.exists(path) {
            return Err(Errno::EEXIST);
        }
        let mut next = self.clone();
        next.dirs.insert(path.to_string());
        Ok(next)
    }

    /// Removes a file.
    pub fn unlink(&self, path: &str) -> KResult<FsModel> {
        if self.dirs.contains(path) {
            return Err(Errno::EISDIR);
        }
        if !self.files.contains_key(path) {
            return Err(Errno::ENOENT);
        }
        let mut next = self.clone();
        next.files.remove(path);
        Ok(next)
    }

    /// True if directory `path` has any child.
    pub fn has_children(&self, path: &str) -> bool {
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        self.files.keys().any(|k| k.starts_with(&prefix))
            || self
                .dirs
                .iter()
                .any(|d| d != path && d.starts_with(&prefix))
    }

    /// Removes an empty directory.
    pub fn rmdir(&self, path: &str) -> KResult<FsModel> {
        if path == "/" {
            return Err(Errno::EBUSY);
        }
        if self.files.contains_key(path) {
            return Err(Errno::ENOTDIR);
        }
        if !self.dirs.contains(path) {
            return Err(Errno::ENOENT);
        }
        if self.has_children(path) {
            return Err(Errno::ENOTEMPTY);
        }
        let mut next = self.clone();
        next.dirs.remove(path);
        Ok(next)
    }

    /// Writes `data` at `off`, zero-filling any gap.
    pub fn write(&self, path: &str, off: u64, data: &[u8]) -> KResult<FsModel> {
        let content = self.files.get(path).ok_or(if self.dirs.contains(path) {
            Errno::EISDIR
        } else {
            Errno::ENOENT
        })?;
        let off = usize::try_from(off).map_err(|_| Errno::EFBIG)?;
        let mut content = content.clone();
        if content.len() < off + data.len() {
            content.resize(off + data.len(), 0);
        }
        content[off..off + data.len()].copy_from_slice(data);
        let mut next = self.clone();
        next.files.insert(path.to_string(), content);
        Ok(next)
    }

    /// Pure read query: bytes in `[off, off+len)`, truncated at EOF.
    pub fn read(&self, path: &str, off: u64, len: usize) -> KResult<Vec<u8>> {
        let content = self.files.get(path).ok_or(if self.dirs.contains(path) {
            Errno::EISDIR
        } else {
            Errno::ENOENT
        })?;
        let off = usize::try_from(off).map_err(|_| Errno::EFBIG)?;
        if off >= content.len() {
            return Ok(Vec::new());
        }
        let end = (off + len).min(content.len());
        Ok(content[off..end].to_vec())
    }

    /// Sets file size, truncating or zero-extending.
    pub fn truncate(&self, path: &str, size: u64) -> KResult<FsModel> {
        let content = self.files.get(path).ok_or(if self.dirs.contains(path) {
            Errno::EISDIR
        } else {
            Errno::ENOENT
        })?;
        let size = usize::try_from(size).map_err(|_| Errno::EFBIG)?;
        let mut content = content.clone();
        content.resize(size, 0);
        let mut next = self.clone();
        next.files.insert(path.to_string(), content);
        Ok(next)
    }

    /// Renames `old` to `new` — the paper's prefix-substitution relation.
    ///
    /// For a file, the key moves (silently replacing a regular file at the
    /// destination, as POSIX allows). For a directory, "every path key with
    /// a given prefix is substituted with a new prefix".
    pub fn rename(&self, old: &str, new: &str) -> KResult<FsModel> {
        if old == "/" || new == "/" {
            return Err(Errno::EBUSY);
        }
        if !self.exists(old) {
            return Err(Errno::ENOENT);
        }
        self.require_parent(new)?;
        if new == old {
            return Ok(self.clone());
        }
        // Renaming a directory into its own subtree is forbidden.
        let old_prefix = format!("{old}/");
        if new.starts_with(&old_prefix) {
            return Err(Errno::EINVAL);
        }
        let mut next = self.clone();
        if self.files.contains_key(old) {
            if next.dirs.contains(new) {
                return Err(Errno::EISDIR);
            }
            let content = next.files.remove(old).expect("checked above");
            next.files.insert(new.to_string(), content);
        } else {
            // Directory rename: destination must not exist (non-empty dir
            // replacement is refused; empty dir replacement is allowed).
            if next.files.contains_key(new) {
                return Err(Errno::ENOTDIR);
            }
            if next.dirs.contains(new) {
                if next.has_children(new) {
                    return Err(Errno::ENOTEMPTY);
                }
                next.dirs.remove(new);
            }
            // Prefix substitution over both maps.
            let moved_dirs: Vec<String> = next
                .dirs
                .iter()
                .filter(|d| *d == old || d.starts_with(&old_prefix))
                .cloned()
                .collect();
            for d in moved_dirs {
                next.dirs.remove(&d);
                let suffix = &d[old.len()..];
                next.dirs.insert(format!("{new}{suffix}"));
            }
            let moved_files: Vec<String> = next
                .files
                .keys()
                .filter(|f| f.starts_with(&old_prefix))
                .cloned()
                .collect();
            for f in moved_files {
                let content = next.files.remove(&f).expect("key just listed");
                let suffix = &f[old.len()..];
                next.files.insert(format!("{new}{suffix}"), content);
            }
        }
        Ok(next)
    }

    /// Names of the direct children of directory `path`.
    pub fn list(&self, path: &str) -> KResult<Vec<String>> {
        if !self.dirs.contains(path) {
            return Err(if self.files.contains_key(path) {
                Errno::ENOTDIR
            } else {
                Errno::ENOENT
            });
        }
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let mut names: Vec<String> = Vec::new();
        for k in self.files.keys().chain(self.dirs.iter()) {
            if let Some(rest) = k.strip_prefix(&prefix) {
                if !rest.is_empty() && !rest.contains('/') {
                    names.push(rest.to_string());
                }
            }
        }
        names.sort();
        names.dedup();
        Ok(names)
    }

    /// The well-formedness invariant: every entry's parent is a directory,
    /// `/` is a directory, and no path is both a file and a directory.
    pub fn check_invariant(&self) -> Result<(), String> {
        if !self.dirs.contains("/") {
            return Err("root directory missing".into());
        }
        for path in self.files.keys() {
            if self.dirs.contains(path) {
                return Err(format!("{path} is both file and directory"));
            }
            let parent = parent_of(path).ok_or_else(|| format!("{path} has no parent"))?;
            if !self.dirs.contains(&parent) {
                return Err(format!("file {path} has no parent directory"));
            }
        }
        for path in &self.dirs {
            if path == "/" {
                continue;
            }
            let parent = parent_of(path).ok_or_else(|| format!("{path} has no parent"))?;
            if !self.dirs.contains(&parent) {
                return Err(format!("dir {path} has no parent directory"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> FsModel {
        FsModel::new()
            .mkdir("/a")
            .unwrap()
            .mkdir("/a/b")
            .unwrap()
            .create("/a/f")
            .unwrap()
            .write("/a/f", 0, b"hello")
            .unwrap()
            .create("/a/b/g")
            .unwrap()
    }

    #[test]
    fn normalize_paths() {
        assert_eq!(normalize("/").unwrap(), "/");
        assert_eq!(normalize("//a//b/").unwrap(), "/a/b");
        assert_eq!(normalize("/a/./b").unwrap(), "/a/b");
        assert_eq!(normalize("/a/../b").unwrap(), "/b");
        assert_eq!(normalize("a/b"), Err(Errno::EINVAL));
        assert_eq!(normalize("/.."), Err(Errno::EINVAL));
    }

    #[test]
    fn parent_and_basename() {
        assert_eq!(parent_of("/a/b").as_deref(), Some("/a"));
        assert_eq!(parent_of("/a").as_deref(), Some("/"));
        assert_eq!(parent_of("/"), None);
        assert_eq!(basename_of("/a/b"), Some("b"));
        assert_eq!(basename_of("/"), None);
    }

    #[test]
    fn create_write_read() {
        let m = setup();
        assert_eq!(m.read("/a/f", 0, 10).unwrap(), b"hello");
        assert_eq!(m.read("/a/f", 1, 3).unwrap(), b"ell");
        assert_eq!(m.read("/a/f", 10, 3).unwrap(), b"");
        m.check_invariant().unwrap();
    }

    #[test]
    fn write_extends_with_zero_fill() {
        let m = setup().write("/a/f", 8, b"XY").unwrap();
        let content = m.read("/a/f", 0, 64).unwrap();
        assert_eq!(content, b"hello\0\0\0XY");
    }

    #[test]
    fn create_errors() {
        let m = setup();
        assert_eq!(m.create("/a/f").unwrap_err(), Errno::EEXIST);
        assert_eq!(m.create("/nope/x").unwrap_err(), Errno::ENOENT);
        assert_eq!(m.create("/a/f/x").unwrap_err(), Errno::ENOTDIR);
    }

    #[test]
    fn unlink_and_rmdir() {
        let m = setup();
        let m = m.unlink("/a/f").unwrap();
        assert!(!m.exists("/a/f"));
        assert_eq!(m.unlink("/a/f").unwrap_err(), Errno::ENOENT);
        assert_eq!(m.unlink("/a").unwrap_err(), Errno::EISDIR);
        assert_eq!(m.rmdir("/a").unwrap_err(), Errno::ENOTEMPTY);
        let m = m.unlink("/a/b/g").unwrap().rmdir("/a/b").unwrap();
        let m = m.rmdir("/a").unwrap();
        assert_eq!(m, FsModel::new());
    }

    #[test]
    fn rmdir_root_refused() {
        assert_eq!(FsModel::new().rmdir("/").unwrap_err(), Errno::EBUSY);
    }

    #[test]
    fn file_rename_moves_content() {
        let m = setup().rename("/a/f", "/a/b/h").unwrap();
        assert!(!m.exists("/a/f"));
        assert_eq!(m.read("/a/b/h", 0, 10).unwrap(), b"hello");
        m.check_invariant().unwrap();
    }

    #[test]
    fn file_rename_replaces_destination() {
        let m = setup().create("/a/t").unwrap();
        let m = m.rename("/a/f", "/a/t").unwrap();
        assert_eq!(m.read("/a/t", 0, 10).unwrap(), b"hello");
    }

    #[test]
    fn directory_rename_substitutes_prefixes() {
        // The paper's example relation, directly.
        let m = setup().rename("/a", "/z").unwrap();
        assert!(m.is_dir("/z"));
        assert!(m.is_dir("/z/b"));
        assert_eq!(m.read("/z/f", 0, 10).unwrap(), b"hello");
        assert_eq!(m.read("/z/b/g", 0, 10).unwrap(), b"");
        assert!(!m.exists("/a"));
        assert!(!m.exists("/a/b"));
        m.check_invariant().unwrap();
    }

    #[test]
    fn rename_into_own_subtree_refused() {
        let m = setup();
        assert_eq!(m.rename("/a", "/a/b/c").unwrap_err(), Errno::EINVAL);
    }

    #[test]
    fn rename_noop_when_same() {
        let m = setup();
        assert_eq!(m.rename("/a/f", "/a/f").unwrap(), m);
    }

    #[test]
    fn truncate_shrinks_and_extends() {
        let m = setup().truncate("/a/f", 2).unwrap();
        assert_eq!(m.read("/a/f", 0, 10).unwrap(), b"he");
        let m = m.truncate("/a/f", 4).unwrap();
        assert_eq!(m.read("/a/f", 0, 10).unwrap(), b"he\0\0");
    }

    #[test]
    fn list_direct_children_only() {
        let m = setup();
        assert_eq!(m.list("/").unwrap(), vec!["a"]);
        assert_eq!(m.list("/a").unwrap(), vec!["b", "f"]);
        assert_eq!(m.list("/a/b").unwrap(), vec!["g"]);
        assert_eq!(m.list("/a/f").unwrap_err(), Errno::ENOTDIR);
        assert_eq!(m.list("/zzz").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn invariant_detects_orphans() {
        let mut m = setup();
        m.files.insert("/ghost/file".to_string(), Vec::new());
        assert!(m.check_invariant().is_err());
    }

    #[test]
    fn model_ops_are_pure() {
        let m = setup();
        let snapshot = m.clone();
        let _ = m.write("/a/f", 0, b"XXXX").unwrap();
        let _ = m.unlink("/a/f").unwrap();
        let _ = m.rename("/a", "/q").unwrap();
        assert_eq!(m, snapshot, "operations never mutate the receiver");
    }
}
