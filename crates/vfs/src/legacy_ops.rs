//! The legacy (Step 0) file system interface: the C idioms, faithfully.
//!
//! Three unsafe patterns from the paper live in these signatures:
//!
//! - **`ERR_PTR` returns** (§4.2): [`LegacyFsOps::lookup`], `create`,
//!   `mkdir`, `getattr`, `readdir`, and `write_begin` return an
//!   [`ErrPtr`] — one word that is either a `VoidPtr` to a heap object or
//!   a negative errno, and the caller had better remember `IS_ERR()`.
//! - **Signed count-or-errno returns**: `read`, `write_end`, `unlink`,
//!   `rmdir`, `rename`, `truncate`, `sync` return `i64` — non-negative on
//!   success, `-errno` on failure, with nothing stopping a caller from
//!   using a negative count as a length.
//! - **`void *` custom data** (§4.2): `write_begin` hands back an opaque
//!   `VoidPtr` "fsdata" that VFS must thread to `write_end`, which casts
//!   it back to whatever the file system privately assumes.
//!
//! Ops are optional (`Option<…>`), as in Linux where unimplemented slots
//! are NULL function pointers.

use sk_ksim::errno::Errno;
use sk_legacy::{ErrPtr, LegacyCtx, VoidPtr};

use crate::inode::InodeNo;

/// Boxed legacy op type aliases (all take the kernel context first).
type LookupFn = Box<dyn Fn(&LegacyCtx, InodeNo, &str) -> ErrPtr + Send + Sync>;
type CreateFn = Box<dyn Fn(&LegacyCtx, InodeNo, &str) -> ErrPtr + Send + Sync>;
type RetFn = Box<dyn Fn(&LegacyCtx, InodeNo, &str) -> i64 + Send + Sync>;
type ReadFn = Box<dyn Fn(&LegacyCtx, InodeNo, u64, &mut [u8]) -> i64 + Send + Sync>;
type WriteBeginFn = Box<dyn Fn(&LegacyCtx, InodeNo, u64, usize) -> ErrPtr + Send + Sync>;
type WriteEndFn = Box<dyn Fn(&LegacyCtx, InodeNo, u64, &[u8], VoidPtr) -> i64 + Send + Sync>;
type ReaddirFn = Box<dyn Fn(&LegacyCtx, InodeNo) -> ErrPtr + Send + Sync>;
type RenameFn = Box<dyn Fn(&LegacyCtx, InodeNo, &str, InodeNo, &str) -> i64 + Send + Sync>;
type TruncateFn = Box<dyn Fn(&LegacyCtx, InodeNo, u64) -> i64 + Send + Sync>;
type SyncFn = Box<dyn Fn(&LegacyCtx) -> i64 + Send + Sync>;
type FsyncFn = Box<dyn Fn(&LegacyCtx, InodeNo) -> i64 + Send + Sync>;
type GetattrFn = Box<dyn Fn(&LegacyCtx, InodeNo) -> ErrPtr + Send + Sync>;
type StatfsFn = Box<dyn Fn(&LegacyCtx) -> ErrPtr + Send + Sync>;

/// The legacy file system operations struct (`struct file_operations` +
/// `inode_operations` + `address_space_operations`, merged).
pub struct LegacyFsOps {
    /// Implementation name.
    pub fs_name: &'static str,
    /// Root inode number.
    pub root_ino: InodeNo,
    /// Lookup: returns `ERR_PTR` to a `VoidPtr`-wrapped [`InodeNo`].
    pub lookup: Option<LookupFn>,
    /// Create a regular file; `ERR_PTR` to the new `InodeNo`.
    pub create: Option<CreateFn>,
    /// Create a directory; `ERR_PTR` to the new `InodeNo`.
    pub mkdir: Option<CreateFn>,
    /// Unlink a file; 0 or `-errno`.
    pub unlink: Option<RetFn>,
    /// Remove an empty directory; 0 or `-errno`.
    pub rmdir: Option<RetFn>,
    /// Read; byte count or `-errno`.
    pub read: Option<ReadFn>,
    /// Begin a write; `ERR_PTR` to the opaque fsdata `VoidPtr`.
    pub write_begin: Option<WriteBeginFn>,
    /// End a write (consuming fsdata); byte count or `-errno`.
    pub write_end: Option<WriteEndFn>,
    /// List a directory; `ERR_PTR` to a `Vec<(String, InodeNo)>`.
    pub readdir: Option<ReaddirFn>,
    /// Rename; 0 or `-errno`.
    pub rename: Option<RenameFn>,
    /// Truncate; 0 or `-errno`.
    pub truncate: Option<TruncateFn>,
    /// Sync everything; 0 or `-errno`.
    pub sync: Option<SyncFn>,
    /// Per-file durability point (`fsync(2)`); 0 or `-errno`. NULL in
    /// most legacy tables — VFS then falls back to the whole-device
    /// `sync` slot, as Linux falls back to a noop/`EINVAL` path.
    pub fsync: Option<FsyncFn>,
    /// Attributes; `ERR_PTR` to a `VoidPtr`-wrapped [`crate::inode::Attr`].
    pub getattr: Option<GetattrFn>,
    /// Usage summary; `ERR_PTR` to a `VoidPtr`-wrapped [`crate::modular::StatFs`].
    pub statfs: Option<StatfsFn>,
}

impl LegacyFsOps {
    /// An all-NULL ops table (every op unimplemented).
    pub fn empty(fs_name: &'static str, root_ino: InodeNo) -> Self {
        LegacyFsOps {
            fs_name,
            root_ino,
            lookup: None,
            create: None,
            mkdir: None,
            unlink: None,
            rmdir: None,
            read: None,
            write_begin: None,
            write_end: None,
            readdir: None,
            rename: None,
            truncate: None,
            sync: None,
            fsync: None,
            getattr: None,
            statfs: None,
        }
    }
}

/// Encodes a success count the C way.
pub fn ret_ok(n: u64) -> i64 {
    n as i64
}

/// Encodes an error the C way (`-errno`).
pub fn ret_err(e: Errno) -> i64 {
    -i64::from(e.as_i32())
}

/// Decodes a C-style signed return into a `Result`.
pub fn ret_check(r: i64) -> Result<u64, Errno> {
    if r < 0 {
        Err(Errno::from_i32((-r) as i32))
    } else {
        Ok(r as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_return_roundtrip() {
        assert_eq!(ret_check(ret_ok(4096)), Ok(4096));
        assert_eq!(ret_check(ret_err(Errno::ENOSPC)), Err(Errno::ENOSPC));
        assert_eq!(ret_check(0), Ok(0));
    }

    #[test]
    fn empty_ops_have_no_slots() {
        let ops = LegacyFsOps::empty("null", 1);
        assert!(ops.lookup.is_none());
        assert!(ops.sync.is_none());
        assert!(ops.fsync.is_none());
        assert_eq!(ops.fs_name, "null");
        assert_eq!(ops.root_ino, 1);
    }
}
