//! Path resolution, file descriptors, and the syscall-shaped API.
//!
//! [`Vfs`] is "the rest of the kernel" relative to a file system module: it
//! owns path walking (through the [`Dcache`]), the file descriptor table,
//! and the mount point. Crucially for the roadmap, it holds the file system
//! only as an `InterfaceHandle<dyn FileSystem>` (Step 1): the workloads in
//! the examples and benches run unchanged while the implementation behind
//! the handle is hot-swapped from the legacy adapter to the safe file
//! system.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sk_core::modularity::{InterfaceHandle, Registry};
use sk_core::spec::Refines;
use sk_ksim::errno::{Errno, KResult};
use sk_ksim::lock::LockRegistry;

use crate::dcache::Dcache;
use crate::inode::{Attr, FileType, InodeNo};
use crate::migrate::SwapGate;
use crate::modular::{validate_name, DirEntry, FileSystem, StatFs};
use crate::spec::{normalize, FsModel};

/// A file descriptor.
pub type Fd = u64;

/// The interface name the VFS subscribes to in the registry.
pub const FS_INTERFACE: &str = "vfs.filesystem";

/// Open-mode flags for the fd API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Refuse writes through this descriptor.
    pub read_only: bool,
    /// Every write lands at end-of-file, regardless of the cursor.
    pub append: bool,
}

impl OpenFlags {
    /// Read-write, positional (the default).
    pub const RDWR: OpenFlags = OpenFlags {
        read_only: false,
        append: false,
    };
    /// Read-only.
    pub const RDONLY: OpenFlags = OpenFlags {
        read_only: true,
        append: false,
    };
    /// Append mode.
    pub const APPEND: OpenFlags = OpenFlags {
        read_only: false,
        append: true,
    };
}

struct OpenFile {
    ino: InodeNo,
    pos: u64,
    flags: OpenFlags,
}

/// The VFS layer: path walking + fd table over a modular file system.
pub struct Vfs {
    fs: InterfaceHandle<dyn FileSystem>,
    dcache: Dcache,
    fds: Mutex<HashMap<Fd, OpenFile>>,
    next_fd: AtomicU64,
    /// Admission gate for live replacement: every public operation holds
    /// it shared; [`crate::migrate::Migrator`] holds it exclusive across
    /// quiesce/transfer/switch. Shared with gated ring reactors.
    gate: Arc<SwapGate>,
}

impl Vfs {
    /// Mounts whatever file system is registered under
    /// [`FS_INTERFACE`] in `registry`.
    pub fn mount(registry: &Registry) -> KResult<Vfs> {
        Vfs::mount_with_lockdep(registry, LockRegistry::new_disabled())
    }

    /// Mounts with the dcache shard locks reporting to `locks`, so a
    /// lockdep-enabled run sees VFS locks in the same acquires-after
    /// graph as the file system and storage locks below it.
    pub fn mount_with_lockdep(registry: &Registry, locks: Arc<LockRegistry>) -> KResult<Vfs> {
        let fs = registry.subscribe::<dyn FileSystem>(FS_INTERFACE)?;
        Ok(Vfs {
            fs,
            dcache: Dcache::with_registry(1024, 8, locks),
            fds: Mutex::new(HashMap::new()),
            next_fd: AtomicU64::new(3), // 0-2 reserved, as tradition demands
            gate: Arc::new(SwapGate::new()),
        })
    }

    /// The interface handle (e.g. to inspect which implementation serves).
    pub fn fs_handle(&self) -> &InterfaceHandle<dyn FileSystem> {
        &self.fs
    }

    /// The dentry cache (exposed for stats in benches).
    pub fn dcache(&self) -> &Dcache {
        &self.dcache
    }

    /// The swap admission gate (shared with gated ring reactors; held
    /// exclusive by [`crate::migrate::Migrator`] during a handoff).
    pub fn gate(&self) -> Arc<SwapGate> {
        Arc::clone(&self.gate)
    }

    /// Rekeys the open-fd table through `map` after a generation swap
    /// (old inode number → new inode number); descriptors keep their
    /// position and flags. Returns `(kept, dropped)`: descriptors whose
    /// inode has no mapping (e.g. unlinked-but-open files, which the
    /// tree walk cannot see) are removed so later use fails with `EBADF`
    /// instead of silently addressing a stranger's inode.
    pub(crate) fn remap_open_files(&self, map: impl Fn(InodeNo) -> Option<InodeNo>) -> (u64, u64) {
        let mut fds = self.fds.lock();
        let mut dropped = 0u64;
        let mut kept = 0u64;
        fds.retain(|_, f| match map(f.ino) {
            Some(new) => {
                f.ino = new;
                kept += 1;
                true
            }
            None => {
                dropped += 1;
                false
            }
        });
        (kept, dropped)
    }

    /// Resolves a path to an inode, walking component by component.
    pub fn resolve(&self, path: &str) -> KResult<InodeNo> {
        let _g = self.gate.enter();
        self.resolve_locked(path)
    }

    /// Path walk without the gate: internal callers already hold the
    /// gate shared, and the fair lock would deadlock a recursive reader
    /// behind a waiting swap.
    fn resolve_locked(&self, path: &str) -> KResult<InodeNo> {
        let path = normalize(path)?;
        let fs = self.fs.get();
        let mut cur = fs.root_ino();
        if path == "/" {
            return Ok(cur);
        }
        for comp in path[1..].split('/') {
            if let Some(ino) = self.dcache.get(cur, comp) {
                cur = ino;
                continue;
            }
            let ino = fs.lookup(cur, comp)?;
            self.dcache.insert(cur, comp, ino);
            cur = ino;
        }
        Ok(cur)
    }

    /// Resolves a path's parent directory and final component.
    fn resolve_parent(&self, path: &str) -> KResult<(InodeNo, String)> {
        let path = normalize(path)?;
        let name = crate::spec::basename_of(&path)
            .ok_or(Errno::EINVAL)?
            .to_string();
        validate_name(&name)?;
        let parent = crate::spec::parent_of(&path).ok_or(Errno::EINVAL)?;
        let dir = self.resolve_locked(&parent)?;
        Ok((dir, name))
    }

    /// Creates a regular file.
    pub fn create(&self, path: &str) -> KResult<InodeNo> {
        let _g = self.gate.enter();
        let (dir, name) = self.resolve_parent(path)?;
        let ino = self.fs.get().create(dir, &name)?;
        self.dcache.insert(dir, &name, ino);
        Ok(ino)
    }

    /// Creates a directory.
    pub fn mkdir(&self, path: &str) -> KResult<InodeNo> {
        let _g = self.gate.enter();
        let (dir, name) = self.resolve_parent(path)?;
        let ino = self.fs.get().mkdir(dir, &name)?;
        self.dcache.insert(dir, &name, ino);
        Ok(ino)
    }

    /// Removes a regular file.
    pub fn unlink(&self, path: &str) -> KResult<()> {
        let _g = self.gate.enter();
        let (dir, name) = self.resolve_parent(path)?;
        self.fs.get().unlink(dir, &name)?;
        self.dcache.invalidate(dir, &name);
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&self, path: &str) -> KResult<()> {
        let _g = self.gate.enter();
        let (dir, name) = self.resolve_parent(path)?;
        // Invalidate children entries of the dying directory first.
        if let Ok(victim) = self.resolve_locked(path) {
            self.dcache.invalidate_dir(victim);
        }
        self.fs.get().rmdir(dir, &name)?;
        self.dcache.invalidate(dir, &name);
        Ok(())
    }

    /// Renames `old` to `new`.
    ///
    /// The VFS (not the file system) owns the ancestor check: renaming a
    /// directory into its own subtree is refused with `EINVAL`, as in
    /// Linux's `lock_rename` path — the file system only ever sees
    /// per-directory entry moves and cannot detect the cycle itself.
    pub fn rename(&self, old: &str, new: &str) -> KResult<()> {
        let _g = self.gate.enter();
        let old_n = normalize(old)?;
        let new_n = normalize(new)?;
        if new_n != old_n && new_n.starts_with(&format!("{old_n}/")) {
            let ino = self.resolve_locked(&old_n)?;
            let attr = self.fs.get().getattr(ino)?;
            if attr.ftype == FileType::Directory {
                return Err(Errno::EINVAL);
            }
        }
        let (odir, oname) = self.resolve_parent(old)?;
        let (ndir, nname) = self.resolve_parent(new)?;
        self.fs.get().rename(odir, &oname, ndir, &nname)?;
        self.dcache.invalidate(odir, &oname);
        self.dcache.invalidate(ndir, &nname);
        Ok(())
    }

    /// Attributes of the object at `path`.
    pub fn stat(&self, path: &str) -> KResult<Attr> {
        let _g = self.gate.enter();
        let ino = self.resolve_locked(path)?;
        self.fs.get().getattr(ino)
    }

    /// Directory listing.
    pub fn readdir(&self, path: &str) -> KResult<Vec<DirEntry>> {
        let _g = self.gate.enter();
        let ino = self.resolve_locked(path)?;
        self.fs.get().readdir(ino)
    }

    /// Truncates a file.
    pub fn truncate(&self, path: &str, size: u64) -> KResult<()> {
        let _g = self.gate.enter();
        let ino = self.resolve_locked(path)?;
        self.fs.get().truncate(ino, size)
    }

    /// Whole-file convenience read.
    pub fn read_file(&self, path: &str) -> KResult<Vec<u8>> {
        let _g = self.gate.enter();
        let ino = self.resolve_locked(path)?;
        let fs = self.fs.get();
        let attr = fs.getattr(ino)?;
        if attr.ftype == FileType::Directory {
            return Err(Errno::EISDIR);
        }
        let mut buf = vec![0u8; attr.size as usize];
        let n = fs.read(ino, 0, &mut buf)?;
        buf.truncate(n);
        Ok(buf)
    }

    /// Positional write by path.
    pub fn write_file(&self, path: &str, off: u64, data: &[u8]) -> KResult<usize> {
        let _g = self.gate.enter();
        let ino = self.resolve_locked(path)?;
        self.fs.get().write(ino, off, data)
    }

    /// Makes everything durable.
    pub fn sync(&self) -> KResult<()> {
        let _g = self.gate.enter();
        self.fs.get().sync()
    }

    /// File system usage summary.
    pub fn statfs(&self) -> KResult<StatFs> {
        let _g = self.gate.enter();
        self.fs.get().statfs()
    }

    // --- fd-based API -----------------------------------------------------

    /// Opens an existing regular file read-write at offset 0.
    pub fn open(&self, path: &str) -> KResult<Fd> {
        self.open_with(path, OpenFlags::RDWR)
    }

    /// Opens an existing regular file with explicit [`OpenFlags`].
    pub fn open_with(&self, path: &str, flags: OpenFlags) -> KResult<Fd> {
        let _g = self.gate.enter();
        let ino = self.resolve_locked(path)?;
        let attr = self.fs.get().getattr(ino)?;
        if attr.ftype == FileType::Directory {
            return Err(Errno::EISDIR);
        }
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.fds.lock().insert(fd, OpenFile { ino, pos: 0, flags });
        Ok(fd)
    }

    /// Sequential read advancing the descriptor offset.
    pub fn read(&self, fd: Fd, buf: &mut [u8]) -> KResult<usize> {
        let _g = self.gate.enter();
        let (ino, pos) = {
            let fds = self.fds.lock();
            let f = fds.get(&fd).ok_or(Errno::EBADF)?;
            (f.ino, f.pos)
        };
        let n = self.fs.get().read(ino, pos, buf)?;
        if let Some(f) = self.fds.lock().get_mut(&fd) {
            f.pos += n as u64;
        }
        Ok(n)
    }

    /// Sequential write advancing the descriptor offset. Honors
    /// [`OpenFlags`]: read-only descriptors refuse with `EBADF`; append
    /// descriptors write at end-of-file.
    pub fn write(&self, fd: Fd, data: &[u8]) -> KResult<usize> {
        let _g = self.gate.enter();
        let (ino, pos, flags) = {
            let fds = self.fds.lock();
            let f = fds.get(&fd).ok_or(Errno::EBADF)?;
            (f.ino, f.pos, f.flags)
        };
        if flags.read_only {
            return Err(Errno::EBADF);
        }
        let fs = self.fs.get();
        let pos = if flags.append {
            fs.getattr(ino)?.size
        } else {
            pos
        };
        let n = fs.write(ino, pos, data)?;
        if let Some(f) = self.fds.lock().get_mut(&fd) {
            f.pos = pos + n as u64;
        }
        Ok(n)
    }

    /// Makes `fd`'s completed operations durable (POSIX `fsync(2)`):
    /// delegates to the mounted file system's per-file durability point.
    pub fn fsync(&self, fd: Fd) -> KResult<()> {
        let _g = self.gate.enter();
        let ino = {
            let fds = self.fds.lock();
            fds.get(&fd).ok_or(Errno::EBADF)?.ino
        };
        self.fs.get().fsync(ino)
    }

    /// Path-level fsync, for callers without a descriptor.
    pub fn fsync_path(&self, path: &str) -> KResult<()> {
        let _g = self.gate.enter();
        let ino = self.resolve_locked(path)?;
        self.fs.get().fsync(ino)
    }

    /// Absolute seek; returns the new offset.
    pub fn seek(&self, fd: Fd, pos: u64) -> KResult<u64> {
        let _g = self.gate.enter();
        let mut fds = self.fds.lock();
        let f = fds.get_mut(&fd).ok_or(Errno::EBADF)?;
        f.pos = pos;
        Ok(pos)
    }

    /// Closes a descriptor.
    pub fn close(&self, fd: Fd) -> KResult<()> {
        let _g = self.gate.enter();
        self.fds.lock().remove(&fd).map(|_| ()).ok_or(Errno::EBADF)
    }
}

impl Refines<FsModel> for Vfs {
    /// Interprets the mounted tree as the abstract model by walking it.
    /// Holds the gate shared, so the walk never observes a half-done
    /// generation handoff.
    fn abstraction(&self) -> FsModel {
        let _g = self.gate.enter();
        crate::modular::fs_abstraction(&*self.fs.get())
    }
}
