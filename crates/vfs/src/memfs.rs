//! A trivial in-memory reference file system.
//!
//! [`MemFs`] is the simplest possible correct implementation of the
//! modular [`FileSystem`] interface: a table of inodes holding either
//! bytes or a name→ino map. It exists for three jobs:
//!
//! - unit-testing the VFS layer without dragging in a real file system;
//! - serving as the *executable reference* the disk file systems are
//!   compared against (its `Refines<FsModel>` is nearly definitional);
//! - providing benches a no-IO upper bound.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use sk_ksim::errno::{Errno, KResult};

use crate::inode::{Attr, FileType, InodeNo};
use crate::modular::{validate_name, DirEntry, FileSystem, StatFs};

enum Node {
    File(Vec<u8>),
    Dir(BTreeMap<String, InodeNo>),
}

/// The in-memory reference file system.
pub struct MemFs {
    nodes: Mutex<BTreeMap<InodeNo, Node>>,
    next_ino: AtomicU64,
    tick: AtomicU64,
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl MemFs {
    /// An empty file system (root is inode 1).
    pub fn new() -> MemFs {
        let mut nodes = BTreeMap::new();
        nodes.insert(1, Node::Dir(BTreeMap::new()));
        MemFs {
            nodes: Mutex::new(nodes),
            next_ino: AtomicU64::new(2),
            tick: AtomicU64::new(1),
        }
    }

    fn insert_child(&self, dir: InodeNo, name: &str, node: Node) -> KResult<InodeNo> {
        validate_name(name)?;
        let mut nodes = self.nodes.lock();
        // Allocate first to avoid aliasing the map borrow.
        let ino = self.next_ino.fetch_add(1, Ordering::Relaxed);
        match nodes.get_mut(&dir) {
            Some(Node::Dir(entries)) => {
                if entries.contains_key(name) {
                    return Err(Errno::EEXIST);
                }
                entries.insert(name.to_string(), ino);
            }
            Some(Node::File(_)) => return Err(Errno::ENOTDIR),
            None => return Err(Errno::ENOENT),
        }
        nodes.insert(ino, node);
        Ok(ino)
    }
}

impl FileSystem for MemFs {
    fn fs_name(&self) -> &'static str {
        "memfs"
    }

    fn root_ino(&self) -> InodeNo {
        1
    }

    fn lookup(&self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        validate_name(name)?;
        let nodes = self.nodes.lock();
        match nodes.get(&dir) {
            Some(Node::Dir(entries)) => entries.get(name).copied().ok_or(Errno::ENOENT),
            Some(Node::File(_)) => Err(Errno::ENOTDIR),
            None => Err(Errno::ENOENT),
        }
    }

    fn getattr(&self, ino: InodeNo) -> KResult<Attr> {
        let nodes = self.nodes.lock();
        match nodes.get(&ino) {
            Some(Node::File(data)) => Ok(Attr {
                ino,
                ftype: FileType::Regular,
                size: data.len() as u64,
                nlink: 1,
                mtime_ns: 0,
            }),
            Some(Node::Dir(_)) => Ok(Attr {
                ino,
                ftype: FileType::Directory,
                size: 0,
                nlink: 1,
                mtime_ns: 0,
            }),
            None => Err(Errno::ENOENT),
        }
    }

    fn create(&self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        self.tick.fetch_add(1, Ordering::Relaxed);
        self.insert_child(dir, name, Node::File(Vec::new()))
    }

    fn mkdir(&self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        self.insert_child(dir, name, Node::Dir(BTreeMap::new()))
    }

    fn unlink(&self, dir: InodeNo, name: &str) -> KResult<()> {
        validate_name(name)?;
        let mut nodes = self.nodes.lock();
        let victim = match nodes.get(&dir) {
            Some(Node::Dir(entries)) => *entries.get(name).ok_or(Errno::ENOENT)?,
            _ => return Err(Errno::ENOTDIR),
        };
        match nodes.get(&victim) {
            Some(Node::Dir(_)) => return Err(Errno::EISDIR),
            Some(Node::File(_)) => {}
            None => return Err(Errno::ENOENT),
        }
        if let Some(Node::Dir(entries)) = nodes.get_mut(&dir) {
            entries.remove(name);
        }
        nodes.remove(&victim);
        Ok(())
    }

    fn rmdir(&self, dir: InodeNo, name: &str) -> KResult<()> {
        validate_name(name)?;
        let mut nodes = self.nodes.lock();
        let victim = match nodes.get(&dir) {
            Some(Node::Dir(entries)) => *entries.get(name).ok_or(Errno::ENOENT)?,
            _ => return Err(Errno::ENOTDIR),
        };
        match nodes.get(&victim) {
            Some(Node::Dir(entries)) if !entries.is_empty() => return Err(Errno::ENOTEMPTY),
            Some(Node::Dir(_)) => {}
            Some(Node::File(_)) => return Err(Errno::ENOTDIR),
            None => return Err(Errno::ENOENT),
        }
        if let Some(Node::Dir(entries)) = nodes.get_mut(&dir) {
            entries.remove(name);
        }
        nodes.remove(&victim);
        Ok(())
    }

    fn read(&self, ino: InodeNo, off: u64, buf: &mut [u8]) -> KResult<usize> {
        let nodes = self.nodes.lock();
        match nodes.get(&ino) {
            Some(Node::File(data)) => {
                let off = usize::try_from(off).map_err(|_| Errno::EFBIG)?;
                if off >= data.len() {
                    return Ok(0);
                }
                let n = buf.len().min(data.len() - off);
                buf[..n].copy_from_slice(&data[off..off + n]);
                Ok(n)
            }
            Some(Node::Dir(_)) => Err(Errno::EISDIR),
            None => Err(Errno::ENOENT),
        }
    }

    fn write(&self, ino: InodeNo, off: u64, data: &[u8]) -> KResult<usize> {
        let mut nodes = self.nodes.lock();
        match nodes.get_mut(&ino) {
            Some(Node::File(content)) => {
                let off = usize::try_from(off).map_err(|_| Errno::EFBIG)?;
                let end = off.checked_add(data.len()).ok_or(Errno::EOVERFLOW)?;
                if content.len() < end {
                    content.resize(end, 0);
                }
                content[off..end].copy_from_slice(data);
                Ok(data.len())
            }
            Some(Node::Dir(_)) => Err(Errno::EISDIR),
            None => Err(Errno::ENOENT),
        }
    }

    fn readdir(&self, dir: InodeNo) -> KResult<Vec<DirEntry>> {
        let nodes = self.nodes.lock();
        match nodes.get(&dir) {
            Some(Node::Dir(entries)) => Ok(entries
                .iter()
                .map(|(name, &ino)| DirEntry {
                    name: name.clone(),
                    ino,
                })
                .collect()),
            Some(Node::File(_)) => Err(Errno::ENOTDIR),
            None => Err(Errno::ENOENT),
        }
    }

    fn rename(
        &self,
        olddir: InodeNo,
        oldname: &str,
        newdir: InodeNo,
        newname: &str,
    ) -> KResult<()> {
        validate_name(oldname)?;
        validate_name(newname)?;
        let mut nodes = self.nodes.lock();
        let src = match nodes.get(&olddir) {
            Some(Node::Dir(entries)) => *entries.get(oldname).ok_or(Errno::ENOENT)?,
            _ => return Err(Errno::ENOTDIR),
        };
        if olddir == newdir && oldname == newname {
            return Ok(());
        }
        let src_is_dir = matches!(nodes.get(&src), Some(Node::Dir(_)));
        // Target handling per the model semantics.
        let target = match nodes.get(&newdir) {
            Some(Node::Dir(entries)) => entries.get(newname).copied(),
            _ => return Err(Errno::ENOTDIR),
        };
        if let Some(t) = target {
            match (src_is_dir, nodes.get(&t)) {
                (false, Some(Node::Dir(_))) => return Err(Errno::EISDIR),
                (true, Some(Node::File(_))) => return Err(Errno::ENOTDIR),
                (true, Some(Node::Dir(entries))) if !entries.is_empty() => {
                    return Err(Errno::ENOTEMPTY)
                }
                _ => {}
            }
            nodes.remove(&t);
        }
        if let Some(Node::Dir(entries)) = nodes.get_mut(&olddir) {
            entries.remove(oldname);
        }
        if let Some(Node::Dir(entries)) = nodes.get_mut(&newdir) {
            entries.insert(newname.to_string(), src);
        }
        Ok(())
    }

    fn truncate(&self, ino: InodeNo, size: u64) -> KResult<()> {
        let mut nodes = self.nodes.lock();
        match nodes.get_mut(&ino) {
            Some(Node::File(content)) => {
                let size = usize::try_from(size).map_err(|_| Errno::EFBIG)?;
                content.resize(size, 0);
                Ok(())
            }
            Some(Node::Dir(_)) => Err(Errno::EISDIR),
            None => Err(Errno::ENOENT),
        }
    }

    fn sync(&self) -> KResult<()> {
        Ok(())
    }

    fn fsync(&self, ino: InodeNo) -> KResult<()> {
        // RAM-backed: durability is trivial, but the inode check is not —
        // fsync of a dangling inode must fail exactly as on a real fs.
        if self.nodes.lock().contains_key(&ino) {
            Ok(())
        } else {
            Err(Errno::ENOENT)
        }
    }

    fn statfs(&self) -> KResult<StatFs> {
        let nodes = self.nodes.lock();
        Ok(StatFs {
            blocks_total: u64::MAX / 2,
            blocks_free: u64::MAX / 2,
            inodes_total: u64::MAX / 2,
            inodes_free: u64::MAX / 2 - nodes.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::fs_abstraction;
    use crate::path::{Vfs, FS_INTERFACE};
    use crate::spec::FsModel;
    use sk_core::modularity::Registry;
    use std::sync::Arc;

    fn mount() -> Vfs {
        let registry = Registry::new();
        registry
            .register::<dyn FileSystem>(FS_INTERFACE, "memfs", Arc::new(MemFs::new()) as _)
            .unwrap();
        Vfs::mount(&registry).unwrap()
    }

    #[test]
    fn memfs_basic_tree() {
        let fs = MemFs::new();
        let d = fs.mkdir(1, "d").unwrap();
        let f = fs.create(d, "f").unwrap();
        fs.write(f, 2, b"xy").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(fs.read(f, 0, &mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"\0\0xy");
        assert_eq!(fs.lookup(d, "f").unwrap(), f);
        assert_eq!(fs.readdir(1).unwrap().len(), 1);
    }

    #[test]
    fn memfs_abstraction_matches_model() {
        let fs = MemFs::new();
        let d = fs.mkdir(1, "dir").unwrap();
        let f = fs.create(d, "f").unwrap();
        fs.write(f, 0, b"abc").unwrap();
        let model = FsModel::new()
            .mkdir("/dir")
            .unwrap()
            .create("/dir/f")
            .unwrap()
            .write("/dir/f", 0, b"abc")
            .unwrap();
        assert_eq!(fs_abstraction(&fs), model);
    }

    #[test]
    fn vfs_over_memfs_full_pass() {
        // The VFS layer's own logic exercised against the reference impl:
        // resolution, dcache, fds, rename ancestor check.
        let vfs = mount();
        vfs.mkdir("/a").unwrap();
        vfs.mkdir("/a/b").unwrap();
        vfs.create("/a/b/c").unwrap();
        vfs.write_file("/a/b/c", 0, b"deep").unwrap();
        assert_eq!(vfs.read_file("/a/./b/../b/c").unwrap(), b"deep");
        assert_eq!(vfs.rename("/a", "/a/b/evil"), Err(Errno::EINVAL));
        let fd = vfs.open("/a/b/c").unwrap();
        let mut buf = [0u8; 2];
        assert_eq!(vfs.read(fd, &mut buf).unwrap(), 2);
        assert_eq!(vfs.read(fd, &mut buf).unwrap(), 2);
        assert_eq!(vfs.read(fd, &mut buf).unwrap(), 0);
        vfs.close(fd).unwrap();
        vfs.rename("/a/b/c", "/top").unwrap();
        assert_eq!(vfs.read_file("/top").unwrap(), b"deep");
        vfs.rmdir("/a/b").unwrap();
        vfs.rmdir("/a").unwrap();
        assert_eq!(vfs.readdir("/").unwrap().len(), 1);
    }

    #[test]
    fn memfs_error_paths() {
        let fs = MemFs::new();
        assert_eq!(fs.lookup(1, "x"), Err(Errno::ENOENT));
        assert_eq!(fs.getattr(99), Err(Errno::ENOENT));
        let f = fs.create(1, "f").unwrap();
        assert_eq!(fs.create(1, "f"), Err(Errno::EEXIST));
        assert_eq!(fs.lookup(f, "sub"), Err(Errno::ENOTDIR));
        assert_eq!(fs.rmdir(1, "f"), Err(Errno::ENOTDIR));
        assert_eq!(fs.readdir(f), Err(Errno::ENOTDIR));
        let d = fs.mkdir(1, "d").unwrap();
        fs.create(d, "kid").unwrap();
        assert_eq!(fs.rmdir(1, "d"), Err(Errno::ENOTEMPTY));
        assert_eq!(fs.unlink(1, "d"), Err(Errno::EISDIR));
    }
}
