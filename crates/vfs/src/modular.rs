//! The modular, typed file system interface (roadmap Steps 1–3).
//!
//! This trait is what the paper's roadmap produces for the VFS boundary:
//!
//! - **Step 1** (modularity): callers hold an
//!   `InterfaceHandle<dyn FileSystem>` from the `sk-core` registry; any
//!   implementation with this interface drops in.
//! - **Step 2** (type safety): no `void *` anywhere. The
//!   `write_begin`/`write_end` custom data is a typed, move-only
//!   [`Token`] (see [`FileSystem::write_begin`]);
//!   errors are `KResult`, never punned pointers.
//! - **Step 3** (ownership safety): signatures encode the three sharing
//!   models. `&[u8]` arguments are model 3 (shared read-only loan for the
//!   duration of the call), `&mut [u8]` arguments are model 2 (exclusive
//!   loan: callee may mutate, cannot free or keep), and
//!   [`FileSystem::write_owned`] takes an
//!   [`Owned<Vec<u8>>`](sk_core::ownership::Owned) payload by value —
//!   model 1, the callee frees.

use sk_core::ownership::Owned;
use sk_core::typesafe::Token;
use sk_ksim::errno::{Errno, KResult};

use crate::inode::{Attr, InodeNo};

/// One directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (no slashes).
    pub name: String,
    /// Target inode.
    pub ino: InodeNo,
}

/// File system usage summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatFs {
    /// Total data blocks.
    pub blocks_total: u64,
    /// Free data blocks.
    pub blocks_free: u64,
    /// Total inodes.
    pub inodes_total: u64,
    /// Free inodes.
    pub inodes_free: u64,
}

/// One typed operation of a batch submission (the payload of a ring SQE;
/// see [`FileSystem::submit_batch`] and [`crate::ring`]).
///
/// Buffer ownership moves *in* with the op — [`BatchOp::Write`] carries
/// its data and [`BatchOp::Read`] carries the destination buffer — and
/// moves *out* again with the matching [`BatchReply`], success or
/// failure. No loans cross the batching boundary, so a reactor thread
/// can process the batch long after the submitting stack frame is gone:
/// the paper's model-1 ownership transfer, round-tripped.
#[derive(Debug)]
pub enum BatchOp {
    /// Create the regular file `name` in `dir`.
    Create {
        /// Parent directory.
        dir: InodeNo,
        /// New entry name.
        name: String,
    },
    /// Write `data` at `off` in `ino`; the buffer moves in.
    Write {
        /// Target file.
        ino: InodeNo,
        /// Byte offset.
        off: u64,
        /// Payload, owned by the op until the reply returns it.
        data: Vec<u8>,
    },
    /// Read `buf.len()` bytes at `off` from `ino` into `buf` (moved in,
    /// returned filled in the reply).
    Read {
        /// Source file.
        ino: InodeNo,
        /// Byte offset.
        off: u64,
        /// Destination buffer, owned by the op until the reply returns it.
        buf: Vec<u8>,
    },
    /// Durability point for `ino` (and, per [`FileSystem::fsync`]
    /// semantics, possibly more).
    Fsync {
        /// File to make durable.
        ino: InodeNo,
    },
    /// Remove the regular file `name` from `dir`.
    Unlink {
        /// Parent directory.
        dir: InodeNo,
        /// Entry name.
        name: String,
    },
}

/// Per-op outcome of a batch submission (the payload of a ring CQE).
///
/// Ops that carried a buffer get it back here — on success *and* on
/// failure, so a failed batch never leaks a submitter's buffer.
#[derive(Debug)]
pub enum BatchReply {
    /// Result of [`BatchOp::Create`].
    Create(KResult<InodeNo>),
    /// Result of [`BatchOp::Write`]: byte count plus the returned buffer.
    Write {
        /// Bytes written, or the error.
        result: KResult<usize>,
        /// The submitted payload, ownership returned.
        buf: Vec<u8>,
    },
    /// Result of [`BatchOp::Read`]: byte count plus the filled buffer.
    Read {
        /// Bytes read (0 at EOF), or the error.
        result: KResult<usize>,
        /// The submitted destination buffer, ownership returned.
        buf: Vec<u8>,
    },
    /// Result of [`BatchOp::Fsync`].
    Fsync(KResult<()>),
    /// Result of [`BatchOp::Unlink`].
    Unlink(KResult<()>),
}

impl BatchReply {
    /// The op's result with the payload erased (for assertions and
    /// bookkeeping that only care about success).
    pub fn result(&self) -> KResult<()> {
        match self {
            BatchReply::Create(r) => r.as_ref().map(|_| ()).map_err(|e| *e),
            BatchReply::Write { result, .. } | BatchReply::Read { result, .. } => {
                result.as_ref().map(|_| ()).map_err(|e| *e)
            }
            BatchReply::Fsync(r) | BatchReply::Unlink(r) => *r,
        }
    }

    /// Takes the returned buffer out of the reply, if this op carried one.
    pub fn take_buf(&mut self) -> Option<Vec<u8>> {
        match self {
            BatchReply::Write { buf, .. } | BatchReply::Read { buf, .. } => {
                Some(core::mem::take(buf))
            }
            _ => None,
        }
    }
}

/// Typed context threaded from [`FileSystem::write_begin`] to
/// [`FileSystem::write_end`] — the replacement for the `void *fsdata`
/// parameter of the Linux address-space operations.
///
/// The payload is opaque to VFS (that is the point: VFS carries it, the
/// file system interprets it), but it is *typed* end to end: the file
/// system states its context type by choosing what to put in the token,
/// and the move-only token guarantees one `write_end` per `write_begin`.
pub type WriteCtx = Token<Box<dyn std::any::Any + Send>>;

/// The modular file system interface.
pub trait FileSystem: Send + Sync {
    /// Implementation name (for diagnostics and the migration example).
    fn fs_name(&self) -> &'static str;

    /// The root directory's inode number.
    fn root_ino(&self) -> InodeNo;

    /// Resolves `name` in directory `dir`.
    fn lookup(&self, dir: InodeNo, name: &str) -> KResult<InodeNo>;

    /// Reads attributes of `ino`.
    fn getattr(&self, ino: InodeNo) -> KResult<Attr>;

    /// Creates a regular file `name` in `dir`.
    fn create(&self, dir: InodeNo, name: &str) -> KResult<InodeNo>;

    /// Creates a directory `name` in `dir`.
    fn mkdir(&self, dir: InodeNo, name: &str) -> KResult<InodeNo>;

    /// Removes the regular file `name` from `dir`.
    fn unlink(&self, dir: InodeNo, name: &str) -> KResult<()>;

    /// Removes the empty directory `name` from `dir`.
    fn rmdir(&self, dir: InodeNo, name: &str) -> KResult<()>;

    /// Reads up to `buf.len()` bytes at `off` into `buf` (model 2 loan),
    /// returning the byte count (0 at EOF).
    fn read(&self, ino: InodeNo, off: u64, buf: &mut [u8]) -> KResult<usize>;

    /// Writes `data` (model 3 loan) at `off`, returning the byte count.
    fn write(&self, ino: InodeNo, off: u64, data: &[u8]) -> KResult<usize>;

    /// Model-1 write: the payload is passed by ownership and freed by the
    /// file system. Default implementation delegates to [`FileSystem::write`].
    fn write_owned(&self, ino: InodeNo, off: u64, data: Owned<Vec<u8>>) -> KResult<usize> {
        let v = data.into_inner();
        self.write(ino, off, &v)
        // `v` drops here, inside the callee: model 1's "callee must free".
    }

    /// Begins a write session on `ino`, returning the typed context that
    /// must be passed to [`FileSystem::write_end`].
    ///
    /// The default pairing implements write via [`FileSystem::write`]; file
    /// systems with allocation-time state (e.g. the journal) override both
    /// ends.
    fn write_begin(&self, ino: InodeNo, off: u64, len: usize) -> KResult<WriteCtx> {
        let _ = (ino, off, len);
        Ok(Token::new(Box::new(()) as Box<dyn std::any::Any + Send>))
    }

    /// Completes a write session started by [`FileSystem::write_begin`].
    fn write_end(&self, ino: InodeNo, off: u64, data: &[u8], ctx: WriteCtx) -> KResult<usize> {
        let _ = ctx.consume();
        self.write(ino, off, data)
    }

    /// Lists the entries of directory `dir` (excluding `.`/`..`).
    fn readdir(&self, dir: InodeNo) -> KResult<Vec<DirEntry>>;

    /// Moves `oldname` in `olddir` to `newname` in `newdir`, replacing any
    /// existing regular file at the destination.
    fn rename(&self, olddir: InodeNo, oldname: &str, newdir: InodeNo, newname: &str)
        -> KResult<()>;

    /// Sets the size of `ino` (zero-filling on extension).
    fn truncate(&self, ino: InodeNo, size: u64) -> KResult<()>;

    /// Makes all completed operations durable.
    fn sync(&self) -> KResult<()>;

    /// Makes `ino`'s completed operations durable — the per-file
    /// durability point (POSIX `fsync(2)`). Implementations may provide
    /// stronger guarantees than the single file; the default delegates
    /// to [`FileSystem::sync`], which trivially covers it. Returns
    /// `ENOENT` for a nonexistent inode.
    fn fsync(&self, ino: InodeNo) -> KResult<()> {
        let _ = ino;
        self.sync()
    }

    /// Usage summary.
    fn statfs(&self) -> KResult<StatFs>;

    /// Prepares this generation to give up (or assume) authority in a
    /// live replacement — see [`crate::migrate::Migrator`]. On return,
    /// every completed operation must be durable on the generation's
    /// own device and the instance must hold **no** dirty state that
    /// only it can write back: an outgoing generation's caches may be
    /// discarded, and an incoming generation must survive a crash
    /// immediately after this call with everything it was handed.
    /// Implementations that defer work past `sync` (delayed-durability
    /// pins, background checkpoints) must drain it here or fail with
    /// `EBUSY` so the migrator aborts cleanly. The default delegates to
    /// [`FileSystem::sync`], which is exactly this contract for
    /// implementations with no deferred work.
    fn quiesce_for_handoff(&self) -> KResult<()> {
        self.sync()
    }

    /// Processes a batch of typed operations, returning one reply per op
    /// in submission order (the reply vector always has `ops.len()`
    /// entries — individual failures are carried in the reply, never
    /// dropped).
    ///
    /// The default loops over the per-call interface, so every
    /// implementation — including a legacy ops table behind
    /// [`crate::shim::LegacyFsAdapter`] — is ring-capable for free.
    /// Journaling file systems override this to stage the whole batch in
    /// one pass (one op-lock hold, one journal join per batch) — the
    /// batching win the ring exists to expose.
    ///
    /// Ordering contract for overriders: replies must correspond to ops
    /// in order, an op acknowledged `Ok` must be at least as durable as
    /// the per-call interface would have left it, and a
    /// [`BatchOp::Fsync`] must act as a durability point for every
    /// earlier op in the batch.
    fn submit_batch(&self, ops: Vec<BatchOp>) -> Vec<BatchReply> {
        ops.into_iter()
            .map(|op| match op {
                BatchOp::Create { dir, name } => BatchReply::Create(self.create(dir, &name)),
                BatchOp::Write { ino, off, data } => {
                    let result = self.write(ino, off, &data);
                    BatchReply::Write { result, buf: data }
                }
                BatchOp::Read { ino, off, mut buf } => {
                    let result = self.read(ino, off, &mut buf);
                    BatchReply::Read { result, buf }
                }
                BatchOp::Fsync { ino } => BatchReply::Fsync(self.fsync(ino)),
                BatchOp::Unlink { dir, name } => BatchReply::Unlink(self.unlink(dir, &name)),
            })
            .collect()
    }
}

/// Interprets a mounted file system as an instance of the abstract model
/// by walking its tree — the abstraction function shared by `Vfs` and the
/// file system implementations' `Refines<FsModel>` impls.
pub fn fs_abstraction(fs: &dyn FileSystem) -> crate::spec::FsModel {
    use crate::inode::FileType;
    let mut model = crate::spec::FsModel::new();
    let mut stack = vec![("/".to_string(), fs.root_ino())];
    while let Some((path, ino)) = stack.pop() {
        let entries = match fs.readdir(ino) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for e in entries {
            let child_path = if path == "/" {
                format!("/{}", e.name)
            } else {
                format!("{}/{}", path, e.name)
            };
            match fs.getattr(e.ino) {
                Ok(attr) if attr.ftype == FileType::Directory => {
                    model.dirs.insert(child_path.clone());
                    stack.push((child_path, e.ino));
                }
                Ok(attr) => {
                    let mut buf = vec![0u8; attr.size as usize];
                    let n = fs.read(e.ino, 0, &mut buf).unwrap_or(0);
                    buf.truncate(n);
                    model.files.insert(child_path, buf);
                }
                Err(_) => {}
            }
        }
    }
    model
}

/// Validates a single path component: non-empty, no `/`, no NUL, and not
/// `.`/`..` (the path walker handles dots; file systems never see them).
pub fn validate_name(name: &str) -> KResult<()> {
    if name.is_empty() || name == "." || name == ".." {
        return Err(Errno::EINVAL);
    }
    if name.len() > 255 {
        return Err(Errno::ENAMETOOLONG);
    }
    if name.contains('/') || name.contains('\0') {
        return Err(Errno::EINVAL);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation() {
        assert!(validate_name("file.txt").is_ok());
        assert!(validate_name("a").is_ok());
        assert_eq!(validate_name(""), Err(Errno::EINVAL));
        assert_eq!(validate_name("."), Err(Errno::EINVAL));
        assert_eq!(validate_name(".."), Err(Errno::EINVAL));
        assert_eq!(validate_name("a/b"), Err(Errno::EINVAL));
        assert_eq!(validate_name("a\0b"), Err(Errno::EINVAL));
        let long = "x".repeat(256);
        assert_eq!(validate_name(&long), Err(Errno::ENAMETOOLONG));
        let ok = "x".repeat(255);
        assert!(validate_name(&ok).is_ok());
    }
}
