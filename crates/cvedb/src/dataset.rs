//! The calibrated CVE dataset.
//!
//! Every row is synthetic; every aggregate is calibrated:
//!
//! - Per-year counts for 1999–2009 follow public NVD totals for the Linux
//!   kernel (shape only — Figure 2a's x-axis). Counts for 2010–2020 are
//!   scaled so they sum to exactly **1475**, the §2 corpus size, while
//!   preserving the public shape (the 2017 spike, the 2015 dip).
//! - The CWE mix is chosen so the §2 categorization lands at the paper's
//!   42% / 35% / 23% split (see `categorize` for the CWE→step mapping).
//! - ext4 rows carry report latencies whose CDF satisfies "50% found after
//!   7 years or more" (Figure 2b).
//! - Per-file-system LoC and bug-patch series decay toward the "0.5% bugs
//!   per LoC per year" tail the paper reports for year ten (Figure 2c).

/// One CVE record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CveRecord {
    /// Synthetic identifier, e.g. `CVE-2017-0042`.
    pub id: String,
    /// Year the CVE was published.
    pub year: u32,
    /// Kernel subsystem attribution.
    pub subsystem: &'static str,
    /// CWE identifier, e.g. `"CWE-416"`.
    pub cwe: &'static str,
}

serde::impl_serialize_struct!(CveRecord {
    id,
    year,
    subsystem,
    cwe
});

/// Per-year CVE counts, 1999–2009 (public NVD shape, pre-corpus years).
pub const COUNTS_1999_2009: [(u32, u32); 11] = [
    (1999, 19),
    (2000, 5),
    (2001, 22),
    (2002, 14),
    (2003, 19),
    (2004, 51),
    (2005, 133),
    (2006, 90),
    (2007, 62),
    (2008, 71),
    (2009, 102),
];

/// Per-year CVE counts, 2010–2020: public shape rescaled to sum to 1475
/// (the §2 corpus).
pub const COUNTS_2010_2020: [(u32, u32); 11] = [
    (2010, 92),
    (2011, 62),
    (2012, 86),
    (2013, 141),
    (2014, 97),
    (2015, 57),
    (2016, 162),
    (2017, 339),
    (2018, 132),
    (2019, 214),
    (2020, 93),
];

/// Size of the §2 corpus.
pub const CORPUS_SIZE: u32 = 1475;

/// The CWE mix of the 2010–2020 corpus, in tenths of a percent
/// (sums to 1000). Chosen so the categorization yields 42/35/23.
pub const CWE_MIX: [(&str, u32); 15] = [
    // Type + ownership preventable (420 ‰):
    ("CWE-416", 120), // use after free
    ("CWE-476", 80),  // NULL dereference
    ("CWE-787", 90),  // out-of-bounds write
    ("CWE-125", 60),  // out-of-bounds read
    ("CWE-362", 50),  // race condition
    ("CWE-415", 20),  // double free
    // Functional-correctness preventable (350 ‰):
    ("CWE-20", 120), // improper input validation
    ("CWE-840", 90), // business-logic error
    ("CWE-682", 50), // incorrect calculation
    ("CWE-459", 40), // incomplete cleanup
    ("CWE-269", 50), // improper privilege management
    // Other (230 ‰):
    ("CWE-200", 90), // information exposure
    ("CWE-190", 60), // integer overflow
    ("CWE-264", 50), // access-control design
    ("CWE-330", 30), // weak randomness
];

/// Subsystem attribution weights in tenths of a percent (sums to 1000).
///
/// Calibrated to the related-work findings the paper cites: Chou et al.
/// found device drivers the most error-prone component, and Palix et al.
/// found file systems and the HAL carrying a high fault rate in later
/// kernels. No figure in the paper depends on these; they feed the
/// related-work comparison in `figures::subsystem_shares`.
pub const SUBSYSTEMS: [(&str, u32); 8] = [
    ("drivers", 350),
    ("net", 200),
    ("fs/ext4", 60),
    ("fs/btrfs", 60),
    ("fs/overlayfs", 30),
    ("mm", 80),
    ("kernel", 120),
    ("arch", 100),
];

/// Deterministically deals a subsystem for the `pos`-th record using
/// largest-remainder apportionment over [`SUBSYSTEMS`].
pub fn subsystem_for(pos: u32, emitted: &mut [u32; 8]) -> &'static str {
    let target = |k: usize| -> u32 {
        let permille: u32 = SUBSYSTEMS[..=k].iter().map(|(_, p)| p).sum();
        ((u64::from(pos) + 1) * u64::from(permille) / 1000) as u32
    };
    let mut cum = 0u32;
    for k in 0..SUBSYSTEMS.len() {
        cum += emitted[k];
        if cum < target(k) {
            emitted[k] += 1;
            return SUBSYSTEMS[k].0;
        }
    }
    emitted[7] += 1;
    SUBSYSTEMS[7].0
}

/// ext4 CVE report latencies in years after the 2008 initial release —
/// 24 values whose CDF has exactly 50% at ≥ 7 years (Figure 2b).
pub const EXT4_LATENCY_YEARS: [u32; 24] = [
    1, 1, 2, 2, 3, 3, 4, 5, 5, 6, 6, 6, 7, 7, 8, 8, 9, 9, 9, 10, 10, 11, 11, 12,
];

/// ext4's initial release year.
pub const EXT4_RELEASE_YEAR: u32 = 2008;

/// A per-file-system code-size and bug-patch history entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsYear {
    /// Years since the file system's initial release (0-based).
    pub year_since_release: u32,
    /// Lines of code that year.
    pub loc: u32,
    /// New bug patches that year.
    pub bug_patches: u32,
}

serde::impl_serialize_struct!(FsYear {
    year_since_release,
    loc,
    bug_patches
});

/// Generates a file system's history: LoC grows linearly, bugs-per-LoC
/// decays from `start_rate` toward the 0.5%/year floor the paper reports.
pub fn fs_history(loc0: u32, loc_growth: u32, start_rate_permille: u32, years: u32) -> Vec<FsYear> {
    (0..years)
        .map(|y| {
            let loc = loc0 + loc_growth * y;
            // Exponential-ish decay toward 5‰ (= 0.5%): halve the excess
            // every two years.
            let excess = start_rate_permille.saturating_sub(5);
            let rate = 5 + (excess as f64 * 0.5f64.powf(y as f64 / 2.0)).round() as u32;
            FsYear {
                year_since_release: y,
                loc,
                bug_patches: (loc as u64 * rate as u64 / 1000) as u32,
            }
        })
        .collect()
}

/// The assembled dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// All CVE records, 1999–2020.
    pub cves: Vec<CveRecord>,
    /// ext4 report latencies (years after release).
    pub ext4_latency_years: Vec<u32>,
    /// (name, history) per studied file system.
    pub fs_histories: Vec<(&'static str, Vec<FsYear>)>,
}

impl Dataset {
    /// Builds the full calibrated dataset. Deterministic: same output
    /// every call.
    pub fn build() -> Dataset {
        let mut cves = Vec::new();
        // Pre-corpus years get a uniform filler CWE (they are only used by
        // Figure 2a, which counts rows per year).
        let mut sub_emitted = [0u32; 8];
        let mut sub_pos = 0u32;
        for (year, count) in COUNTS_1999_2009 {
            for i in 0..count {
                let subsystem = subsystem_for(sub_pos, &mut sub_emitted);
                sub_pos += 1;
                cves.push(CveRecord {
                    id: format!("CVE-{year}-{i:04}"),
                    year,
                    subsystem,
                    cwe: "CWE-416",
                });
            }
        }
        // Corpus years: deal CWEs out of the calibrated mix using largest-
        // remainder apportionment per year so each year's rows are a faithful
        // sample of the global mix and the global totals hit the mix exactly.
        let mut emitted = vec![0u32; CWE_MIX.len()];
        let mut total_emitted = 0u32;
        for (year, count) in COUNTS_2010_2020 {
            for i in 0..count {
                // Global position of this row decides its CWE: walk the mix
                // cumulatively (deterministic stratified assignment).
                let pos = total_emitted;
                let target = |k: usize| -> u32 {
                    // Rows owed to CWEs 0..=k after pos+1 rows total.
                    let permille: u32 = CWE_MIX[..=k].iter().map(|(_, p)| p).sum();
                    ((u64::from(pos) + 1) * u64::from(permille) / 1000) as u32
                };
                let mut chosen = CWE_MIX.len() - 1;
                let mut cum_emitted = 0u32;
                for (k, e) in emitted.iter().enumerate().take(CWE_MIX.len()) {
                    cum_emitted += e;
                    if cum_emitted < target(k) {
                        chosen = k;
                        break;
                    }
                }
                emitted[chosen] += 1;
                total_emitted += 1;
                let subsystem = subsystem_for(sub_pos, &mut sub_emitted);
                sub_pos += 1;
                cves.push(CveRecord {
                    id: format!("CVE-{year}-{:04}", 1000 + i),
                    year,
                    subsystem,
                    cwe: CWE_MIX[chosen].0,
                });
            }
        }
        Dataset {
            cves,
            ext4_latency_years: EXT4_LATENCY_YEARS.to_vec(),
            fs_histories: vec![
                // ext4: mature, large; btrfs: larger, younger; overlayfs:
                // small, youngest. Rates start high and decay to the floor.
                ("ext4", fs_history(30_000, 2_000, 22, 13)),
                ("btrfs", fs_history(45_000, 4_000, 28, 12)),
                ("overlayfs", fs_history(8_000, 1_000, 25, 7)),
            ],
        }
    }

    /// Rows in the §2 corpus (2010–2020).
    pub fn corpus(&self) -> Vec<&CveRecord> {
        self.cves.iter().filter(|c| c.year >= 2010).collect()
    }

    /// Serializes the full record set to JSON (for external analysis
    /// scripts reproducing the figures outside Rust).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.cves).expect("records are plain data")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_size_is_calibrated() {
        let total: u32 = COUNTS_2010_2020.iter().map(|(_, c)| c).sum();
        assert_eq!(total, CORPUS_SIZE);
        let ds = Dataset::build();
        assert_eq!(ds.corpus().len() as u32, CORPUS_SIZE);
    }

    #[test]
    fn cwe_mix_sums_to_1000_permille() {
        let total: u32 = CWE_MIX.iter().map(|(_, p)| p).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn corpus_cwe_distribution_matches_mix() {
        let ds = Dataset::build();
        let corpus = ds.corpus();
        for (cwe, permille) in CWE_MIX {
            let n = corpus.iter().filter(|c| c.cwe == cwe).count() as i64;
            let expected = (CORPUS_SIZE as i64 * permille as i64) / 1000;
            assert!(
                (n - expected).abs() <= 2,
                "{cwe}: got {n}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn ext4_latency_median_is_seven_plus() {
        let lat = EXT4_LATENCY_YEARS;
        let at_least_7 = lat.iter().filter(|&&y| y >= 7).count();
        assert_eq!(at_least_7 * 2, lat.len(), "exactly 50% at >= 7 years");
    }

    #[test]
    fn fs_history_decays_to_half_percent() {
        let hist = fs_history(30_000, 2_000, 22, 13);
        let last = hist.last().unwrap();
        let rate = last.bug_patches as f64 / last.loc as f64;
        assert!((0.004..=0.008).contains(&rate), "tail rate {rate}");
        let first = &hist[0];
        let first_rate = first.bug_patches as f64 / first.loc as f64;
        assert!(first_rate > rate, "rates decline over time");
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = Dataset::build();
        let b = Dataset::build();
        assert_eq!(a.cves, b.cves);
    }

    #[test]
    fn json_export_roundtrips_row_count() {
        let ds = Dataset::build();
        let json = ds.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), ds.cves.len());
        let first = &parsed[0];
        assert!(first["id"].as_str().unwrap().starts_with("CVE-"));
        assert!(first["cwe"].as_str().unwrap().starts_with("CWE-"));
    }

    #[test]
    fn subsystem_attribution_is_weighted() {
        let ds = Dataset::build();
        let corpus = ds.corpus();
        let drivers = corpus.iter().filter(|c| c.subsystem == "drivers").count();
        let share = drivers as f64 / corpus.len() as f64;
        assert!((share - 0.35).abs() < 0.02, "drivers share {share}");
    }

    #[test]
    fn records_have_plausible_fields() {
        let ds = Dataset::build();
        for c in &ds.cves {
            assert!(c.id.starts_with("CVE-"));
            assert!(c.cwe.starts_with("CWE-"));
            assert!((1999..=2020).contains(&c.year));
        }
    }
}
