//! Figure-series computation (2a, 2b, 2c) and ASCII rendering.
//!
//! Each `fig*` function returns the numeric series (what the paper plots);
//! `render_*` helpers produce terminal charts for the figure binaries, and
//! everything serializes to JSON for machine-checked EXPERIMENTS.md.

use crate::dataset::Dataset;

/// Figure 2a: (year, new CVE count).
pub fn fig2a(ds: &Dataset) -> Vec<(u32, u32)> {
    let mut by_year: Vec<(u32, u32)> = Vec::new();
    for c in &ds.cves {
        match by_year.iter_mut().find(|(y, _)| *y == c.year) {
            Some((_, n)) => *n += 1,
            None => by_year.push((c.year, 1)),
        }
    }
    by_year.sort_by_key(|&(y, _)| y);
    by_year
}

/// Figure 2b: the CDF of ext4 CVE report latency — (years, fraction ≤).
pub fn fig2b(ds: &Dataset) -> Vec<(u32, f64)> {
    let mut lat = ds.ext4_latency_years.clone();
    lat.sort_unstable();
    let n = lat.len() as f64;
    let max = *lat.last().unwrap_or(&0);
    (0..=max)
        .map(|y| {
            let le = lat.iter().filter(|&&v| v <= y).count() as f64;
            (y, le / n)
        })
        .collect()
}

/// One Figure 2c series point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BugsPerLoc {
    /// File system name.
    pub fs: &'static str,
    /// Years since the file system's initial release.
    pub year_since_release: u32,
    /// New bug patches per line of code that year.
    pub bugs_per_loc: f64,
}

serde::impl_serialize_struct!(BugsPerLoc {
    fs,
    year_since_release,
    bugs_per_loc
});

/// Figure 2c: bugs per LoC per year for each studied file system.
pub fn fig2c(ds: &Dataset) -> Vec<BugsPerLoc> {
    let mut out = Vec::new();
    for (fs, hist) in &ds.fs_histories {
        for y in hist {
            out.push(BugsPerLoc {
                fs,
                year_since_release: y.year_since_release,
                bugs_per_loc: y.bug_patches as f64 / y.loc as f64,
            });
        }
    }
    out
}

/// Related-work comparison (§5): per-subsystem CVE shares of the corpus.
///
/// Chou et al. found device drivers the most error-prone Linux component
/// (to 2.4); Palix et al. found the fault rate shifting toward file
/// systems and the HAL by 2.6; the paper's own §2 observation is that
/// mature modules (ext4) keep producing bugs. This series lets all three
/// be read off the corpus: (subsystem, count, share).
pub fn subsystem_shares(ds: &Dataset) -> Vec<(&'static str, usize, f64)> {
    let corpus = ds.corpus();
    let total = corpus.len() as f64;
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for c in &corpus {
        match counts.iter_mut().find(|(s, _)| *s == c.subsystem) {
            Some((_, n)) => *n += 1,
            None => counts.push((c.subsystem, 1)),
        }
    }
    counts.sort_by_key(|b| std::cmp::Reverse(b.1));
    counts
        .into_iter()
        .map(|(s, n)| (s, n, n as f64 / total))
        .collect()
}

/// Renders a horizontal ASCII bar chart of (label, value) rows.
pub fn render_bars<L: std::fmt::Display>(rows: &[(L, f64)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    let mut out = String::new();
    for (label, v) in rows {
        let bar_len = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!("{label:>8} | {} {v:.3}\n", "#".repeat(bar_len)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_covers_all_years_and_peaks_in_2017() {
        let ds = Dataset::build();
        let series = fig2a(&ds);
        assert_eq!(series.first().unwrap().0, 1999);
        assert_eq!(series.last().unwrap().0, 2020);
        let peak = series.iter().max_by_key(|&&(_, n)| n).unwrap();
        assert_eq!(peak.0, 2017, "the public 2017 spike survives scaling");
        // "Hundreds of new CVEs each year" in the corpus decade.
        let recent: u32 = series
            .iter()
            .filter(|(y, _)| *y >= 2010)
            .map(|(_, n)| *n)
            .sum();
        assert_eq!(recent, 1475);
    }

    #[test]
    fn fig2b_cdf_is_monotone_and_hits_half_at_seven() {
        let ds = Dataset::build();
        let cdf = fig2b(&ds);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
        let at_6 = cdf.iter().find(|(y, _)| *y == 6).unwrap().1;
        assert!((at_6 - 0.5).abs() < 1e-9, "50% of CVEs took >= 7 years");
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig2c_has_three_series_with_declining_rates() {
        let ds = Dataset::build();
        let points = fig2c(&ds);
        for fs in ["ext4", "btrfs", "overlayfs"] {
            let series: Vec<&BugsPerLoc> = points.iter().filter(|p| p.fs == fs).collect();
            assert!(!series.is_empty());
            assert!(series[0].bugs_per_loc > series.last().unwrap().bugs_per_loc);
        }
        // The 10-year tail sits near 0.5%.
        let ext4_tail = points
            .iter()
            .filter(|p| p.fs == "ext4" && p.year_since_release >= 10)
            .map(|p| p.bugs_per_loc)
            .fold(0.0f64, f64::max);
        assert!(ext4_tail > 0.003 && ext4_tail < 0.01, "tail {ext4_tail}");
    }

    #[test]
    fn subsystem_shares_match_related_work() {
        let ds = Dataset::build();
        let shares = subsystem_shares(&ds);
        // Drivers lead (Chou et al.); the combined fs share is substantial
        // (Palix et al., and the paper's own ext4 observation).
        assert_eq!(shares[0].0, "drivers");
        assert!(shares[0].2 > 0.30 && shares[0].2 < 0.40);
        let fs_share: f64 = shares
            .iter()
            .filter(|(s, _, _)| s.starts_with("fs/"))
            .map(|(_, _, p)| p)
            .sum();
        assert!(fs_share > 0.10, "fs share {fs_share}");
        let total: usize = shares.iter().map(|(_, n, _)| n).sum();
        assert_eq!(total, 1475);
    }

    #[test]
    fn bars_render_proportionally() {
        let chart = render_bars(&[("a", 1.0), ("b", 2.0)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[1].matches('#').count() == 10);
        assert!(lines[0].matches('#').count() == 5);
    }
}
