//! The §2 categorization: CWE → which roadmap step prevents it.
//!
//! "Among the 1475 total CVEs we examined, roughly 42% CVEs could be
//! prevented with compile-time type and ownership safety, and an
//! additional 35% with functional correctness verification. The remaining
//! 23% have a variety of causes."

use crate::dataset::Dataset;

/// Which roadmap step first prevents a bug class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prevention {
    /// Steps 2–3: compile-time type and ownership safety.
    TypeOwnership,
    /// Step 4: functional correctness verification.
    Functional,
    /// Neither (design flaws, info exposure, numeric errors, …).
    Other,
}

serde::impl_serialize_enum!(Prevention {
    TypeOwnership,
    Functional,
    Other
});

/// Maps a CWE to its prevention category — the hand-labelling rule the
/// paper's authors applied, written down as code.
pub fn categorize_cwe(cwe: &str) -> Prevention {
    match cwe {
        // Memory and thread safety: excluded by construction in a type-
        // and ownership-safe language. Improper locking and deadlock
        // (CWE-667/833) sit here because guard types that encode the
        // only legal acquisition order make the inversion unwritable.
        "CWE-416" | "CWE-415" | "CWE-476" | "CWE-787" | "CWE-125" | "CWE-362" | "CWE-843"
        | "CWE-401" | "CWE-908" | "CWE-667" | "CWE-833" => Prevention::TypeOwnership,
        // Semantic bugs: need a specification to rule out.
        "CWE-20" | "CWE-840" | "CWE-682" | "CWE-459" | "CWE-269" => Prevention::Functional,
        // Everything else: security design, info exposure, numeric error.
        _ => Prevention::Other,
    }
}

/// Aggregate result of categorizing a corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategorizationSummary {
    /// Corpus size.
    pub total: usize,
    /// Count preventable by type + ownership safety.
    pub type_ownership: usize,
    /// Count additionally preventable by functional correctness.
    pub functional: usize,
    /// Count with other causes.
    pub other: usize,
}

serde::impl_serialize_struct!(CategorizationSummary {
    total,
    type_ownership,
    functional,
    other
});

impl CategorizationSummary {
    /// Percentage helpers (rounded to one decimal).
    pub fn percentages(&self) -> (f64, f64, f64) {
        let pct = |n: usize| (n as f64 * 1000.0 / self.total as f64).round() / 10.0;
        (
            pct(self.type_ownership),
            pct(self.functional),
            pct(self.other),
        )
    }
}

/// Runs the §2 categorization over the dataset's 2010–2020 corpus.
pub fn categorize(ds: &Dataset) -> CategorizationSummary {
    let corpus = ds.corpus();
    let mut summary = CategorizationSummary {
        total: corpus.len(),
        type_ownership: 0,
        functional: 0,
        other: 0,
    };
    for c in corpus {
        match categorize_cwe(c.cwe) {
            Prevention::TypeOwnership => summary.type_ownership += 1,
            Prevention::Functional => summary.functional += 1,
            Prevention::Other => summary.other += 1,
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_covers_the_memory_safety_family() {
        assert_eq!(categorize_cwe("CWE-416"), Prevention::TypeOwnership);
        assert_eq!(categorize_cwe("CWE-362"), Prevention::TypeOwnership);
        assert_eq!(categorize_cwe("CWE-667"), Prevention::TypeOwnership);
        assert_eq!(categorize_cwe("CWE-833"), Prevention::TypeOwnership);
        assert_eq!(categorize_cwe("CWE-20"), Prevention::Functional);
        assert_eq!(categorize_cwe("CWE-200"), Prevention::Other);
        assert_eq!(categorize_cwe("CWE-190"), Prevention::Other);
        assert_eq!(categorize_cwe("CWE-9999"), Prevention::Other);
    }

    #[test]
    fn corpus_categorization_matches_the_paper() {
        let ds = Dataset::build();
        let s = categorize(&ds);
        assert_eq!(s.total, 1475);
        let (ty, fun, other) = s.percentages();
        assert!((ty - 42.0).abs() <= 1.0, "type/ownership = {ty}%");
        assert!((fun - 35.0).abs() <= 1.0, "functional = {fun}%");
        assert!((other - 23.0).abs() <= 1.0, "other = {other}%");
        assert_eq!(s.type_ownership + s.functional + s.other, s.total);
    }
}
