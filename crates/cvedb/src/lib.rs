//! # sk-cvedb — the bug study behind Figure 2 and §2
//!
//! The paper's empirical motivation is a CVE/bug-patch study:
//!
//! - **Figure 2a** — new Linux CVEs reported each year;
//! - **Figure 2b** — CDF of how long after ext4's initial release its CVEs
//!   were reported ("50% of CVEs in ext4 were found after 7 years or more
//!   of use");
//! - **Figure 2c** — new bug patches per line of code per year for
//!   overlayfs, ext4, and btrfs ("even after 10 years, there are still new
//!   bugs (0.5% bugs per line of code each year)");
//! - **§2 categorization** — of 1475 CVEs since 2010, "roughly 42% could
//!   be prevented with compile-time type and ownership safety, and an
//!   additional 35% with functional correctness verification", leaving 23%
//!   with other causes.
//!
//! **Substitution note** (DESIGN.md §2): the NVD and kernel git history
//! are unavailable offline, so [`dataset`] *generates* a record-level
//! dataset deterministically calibrated to every aggregate the paper
//! reports (and to public per-year Linux CVE counts for the 2a shape).
//! The analysis code in [`figures`] and [`categorize`] then computes the
//! figures from raw records exactly as it would from real NVD rows —
//! binning, CDF construction, per-LoC normalization, and CWE→prevention
//! mapping are all real and re-runnable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod categorize;
pub mod dataset;
pub mod figures;

pub use categorize::{categorize_cwe, CategorizationSummary, Prevention};
pub use dataset::{CveRecord, Dataset};
