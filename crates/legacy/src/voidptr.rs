//! `void *` emulation.
//!
//! A [`VoidPtr`] is one machine word with no visible type information —
//! exactly as expressive as C's `void *`. Creating one erases the type;
//! using one requires naming a type, and nothing ties the two together.
//! The paper's §4.2 example is VFS letting a file system pass custom data
//! from `write_begin` to `write_end` as `void *`; `sk-fs-legacy` does
//! precisely that through this type.
//!
//! Misuse is detected by the hidden arena tag and recorded in the
//! [`BugLedger`](crate::BugLedger); see the crate docs for the emulation
//! principle.

use std::any::Any;

use sk_ksim::kalloc::ObjRef;

use crate::ctx::LegacyCtx;

/// A type-erased pointer word. `Copy`, comparable, and as dumb as `void *`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VoidPtr(u64);

impl VoidPtr {
    /// The NULL pointer.
    pub const NULL: VoidPtr = VoidPtr(0);

    /// True if this is NULL.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The raw word (used by the `ERR_PTR` punning layer).
    pub fn to_word(self) -> u64 {
        self.0
    }

    /// Reconstructs a pointer from a raw word.
    pub fn from_word(w: u64) -> VoidPtr {
        VoidPtr(w)
    }

    fn obj(self) -> ObjRef {
        // Word 0 is reserved for NULL; object words are offset by 1.
        ObjRef::from_word(self.0 - 1)
    }

    fn from_obj(r: ObjRef) -> VoidPtr {
        VoidPtr(r.to_word() + 1)
    }
}

impl LegacyCtx {
    /// Allocates `value` and returns its type-erased pointer (`kmalloc` +
    /// implicit cast to `void *`).
    pub fn vp_new<T: Any + Send>(&self, value: T) -> VoidPtr {
        VoidPtr::from_obj(self.arena.insert(value))
    }

    /// Casts the pointer to `&T` and runs `f` — the legacy idiom
    /// `((struct T *)p)->…`.
    ///
    /// On misuse (wrong type, freed object, NULL) the event is recorded and
    /// `None` is returned: the bug has *manifested* (the caller gets no
    /// usable data and typically limps on with a default), and the ledger
    /// has seen it.
    pub fn vp_cast<T: Any, R>(
        &self,
        p: VoidPtr,
        site: &'static str,
        f: impl FnOnce(&T) -> R,
    ) -> Option<R> {
        if p.is_null() {
            self.record_access_error(sk_ksim::kalloc::AccessError::NullDeref, site);
            return None;
        }
        match self.arena.with(p.obj(), f) {
            Ok(r) => Some(r),
            Err(e) => {
                self.record_access_error(e, site);
                None
            }
        }
    }

    /// Mutable variant of [`LegacyCtx::vp_cast`].
    pub fn vp_cast_mut<T: Any, R>(
        &self,
        p: VoidPtr,
        site: &'static str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        if p.is_null() {
            self.record_access_error(sk_ksim::kalloc::AccessError::NullDeref, site);
            return None;
        }
        match self.arena.with_mut(p.obj(), f) {
            Ok(r) => Some(r),
            Err(e) => {
                self.record_access_error(e, site);
                None
            }
        }
    }

    /// Frees the object behind the pointer (`kfree`). Double frees and
    /// stale pointers are recorded.
    pub fn vp_free(&self, p: VoidPtr, site: &'static str) {
        if p.is_null() {
            // `kfree(NULL)` is defined and silent in Linux.
            return;
        }
        if let Err(e) = self.arena.free(p.obj()) {
            self.record_access_error(e, site);
        }
    }

    /// Takes the object out by value, typed (`container_of` + free).
    pub fn vp_take<T: Any>(&self, p: VoidPtr, site: &'static str) -> Option<T> {
        if p.is_null() {
            self.record_access_error(sk_ksim::kalloc::AccessError::NullDeref, site);
            return None;
        }
        match self.arena.remove::<T>(p.obj()) {
            Ok(v) => Some(v),
            Err(e) => {
                self.record_access_error(e, site);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::BugClass;

    #[test]
    fn correct_cast_roundtrips() {
        let ctx = LegacyCtx::new();
        let p = ctx.vp_new(123u32);
        assert_eq!(ctx.vp_cast(p, "t", |v: &u32| *v), Some(123));
        assert!(ctx.ledger.is_clean());
        ctx.vp_free(p, "t");
        assert!(ctx.ledger.is_clean());
    }

    #[test]
    fn wrong_cast_is_type_confusion() {
        let ctx = LegacyCtx::new();
        let p = ctx.vp_new(String::from("inode"));
        assert_eq!(ctx.vp_cast(p, "t", |v: &u64| *v), None);
        assert_eq!(ctx.ledger.count(BugClass::TypeConfusion), 1);
    }

    #[test]
    fn stale_pointer_is_use_after_free() {
        let ctx = LegacyCtx::new();
        let p = ctx.vp_new(1u8);
        ctx.vp_free(p, "t");
        assert_eq!(ctx.vp_cast(p, "t", |v: &u8| *v), None);
        assert_eq!(ctx.ledger.count(BugClass::UseAfterFree), 1);
    }

    #[test]
    fn double_free_recorded() {
        let ctx = LegacyCtx::new();
        let p = ctx.vp_new(1u8);
        ctx.vp_free(p, "t");
        ctx.vp_free(p, "t");
        assert_eq!(ctx.ledger.count(BugClass::DoubleFree), 1);
    }

    #[test]
    fn null_deref_recorded_but_null_free_silent() {
        let ctx = LegacyCtx::new();
        assert_eq!(ctx.vp_cast(VoidPtr::NULL, "t", |v: &u8| *v), None);
        assert_eq!(ctx.ledger.count(BugClass::NullDeref), 1);
        ctx.vp_free(VoidPtr::NULL, "t");
        assert_eq!(ctx.ledger.total(), 1, "kfree(NULL) is not a bug");
    }

    #[test]
    fn take_returns_value_and_frees() {
        let ctx = LegacyCtx::new();
        let p = ctx.vp_new(vec![1, 2, 3]);
        assert_eq!(ctx.vp_take::<Vec<i32>>(p, "t"), Some(vec![1, 2, 3]));
        assert_eq!(ctx.arena.live_count(), 0);
        // A second take is a detected double free.
        assert_eq!(ctx.vp_take::<Vec<i32>>(p, "t"), None);
        assert_eq!(ctx.ledger.count(BugClass::DoubleFree), 1);
    }

    #[test]
    fn word_roundtrip_preserves_identity() {
        let ctx = LegacyCtx::new();
        let p = ctx.vp_new(7i16);
        let q = VoidPtr::from_word(p.to_word());
        assert_eq!(p, q);
        assert_eq!(ctx.vp_cast(q, "t", |v: &i16| *v), Some(7));
    }
}
