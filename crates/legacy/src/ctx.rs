//! The legacy kernel context: the environment a legacy module sees.
//!
//! Bundles the object arena, the bug ledger, the lock registry, and the
//! kernel log — the equivalent of "the rest of the kernel" from a legacy
//! module's point of view.

use std::sync::Arc;

use sk_ksim::kalloc::{AccessError, Arena};
use sk_ksim::klog::KLog;
use sk_ksim::lock::{LockRegistry, Violation};

use crate::ledger::{BugClass, BugLedger};

/// Shared environment handed to legacy modules.
#[derive(Clone)]
pub struct LegacyCtx {
    /// The object arena all `void *` data lives in.
    pub arena: Arc<Arena>,
    /// Sink for detected misbehaviour.
    pub ledger: Arc<BugLedger>,
    /// Lock-discipline tracker.
    pub locks: Arc<LockRegistry>,
    /// Kernel log.
    pub log: Arc<KLog>,
}

impl Default for LegacyCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl LegacyCtx {
    /// Creates a fresh context.
    pub fn new() -> Self {
        LegacyCtx {
            arena: Arc::new(Arena::new()),
            ledger: Arc::new(BugLedger::new()),
            locks: LockRegistry::new(),
            log: Arc::new(KLog::default()),
        }
    }

    /// Maps an arena access failure to the bug class it manifests as and
    /// records it.
    pub fn record_access_error(&self, err: AccessError, site: &'static str) {
        let (class, detail) = match err {
            AccessError::UseAfterFree => (BugClass::UseAfterFree, String::new()),
            AccessError::DoubleFree => (BugClass::DoubleFree, String::new()),
            AccessError::NullDeref => (BugClass::NullDeref, String::new()),
            AccessError::TypeConfusion { actual } => {
                (BugClass::TypeConfusion, format!("actual type: {actual}"))
            }
        };
        self.ledger.record(class, site, detail);
    }

    /// Leak check: if more than `expected_live` objects remain in the arena,
    /// records one [`BugClass::MemoryLeak`] event per leaked object and
    /// returns the leak count.
    pub fn leak_check(&self, expected_live: u64, site: &'static str) -> u64 {
        let live = self.arena.live_count();
        let leaked = live.saturating_sub(expected_live);
        for _ in 0..leaked {
            self.ledger.record(BugClass::MemoryLeak, site, "");
        }
        leaked
    }

    /// Imports any lock-discipline violations recorded in the lock registry
    /// into the ledger, then clears them. Unlocked-field accesses file as
    /// [`BugClass::DataRace`]; ordering findings (inversions, transitive
    /// cycles, held-across-I/O, same-class rank breaks) file as
    /// [`BugClass::LockInversion`] — the deadlock family.
    pub fn import_lock_violations(&self, site: &'static str) -> usize {
        let violations = self.locks.violations();
        let n = violations.len();
        for v in violations {
            let class = match v {
                Violation::UnlockedFieldAccess { .. } => BugClass::DataRace,
                Violation::OrderInversion { .. }
                | Violation::OrderCycle { .. }
                | Violation::HeldAcrossIo { .. }
                | Violation::SameClassNesting { .. } => BugClass::LockInversion,
            };
            self.ledger.record(class, site, format!("{v:?}"));
        }
        self.locks.clear_violations();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sk_ksim::kalloc::ObjRef;

    #[test]
    fn access_errors_map_to_bug_classes() {
        let ctx = LegacyCtx::new();
        ctx.record_access_error(AccessError::UseAfterFree, "t");
        ctx.record_access_error(AccessError::NullDeref, "t");
        ctx.record_access_error(AccessError::TypeConfusion { actual: "u8" }, "t");
        assert_eq!(ctx.ledger.count(BugClass::UseAfterFree), 1);
        assert_eq!(ctx.ledger.count(BugClass::NullDeref), 1);
        assert_eq!(ctx.ledger.count(BugClass::TypeConfusion), 1);
    }

    #[test]
    fn leak_check_counts_excess_live_objects() {
        let ctx = LegacyCtx::new();
        let _a = ctx.arena.insert(1u8);
        let b = ctx.arena.insert(2u8);
        assert_eq!(ctx.leak_check(2, "t"), 0);
        assert_eq!(ctx.leak_check(1, "t"), 1);
        assert_eq!(ctx.ledger.count(BugClass::MemoryLeak), 1);
        ctx.arena.free(b).unwrap();
        let _ = ObjRef::NULL;
    }

    #[test]
    fn lock_violations_imported_as_data_races() {
        let ctx = LegacyCtx::new();
        ctx.locks.record_field_violation("i_lock", "i_size");
        assert_eq!(ctx.import_lock_violations("t"), 1);
        assert_eq!(ctx.ledger.count(BugClass::DataRace), 1);
        assert!(ctx.locks.violations().is_empty(), "registry drained");
    }

    #[test]
    fn ordering_violations_import_as_lock_inversions() {
        use sk_ksim::lock::KLock;
        let ctx = LegacyCtx::new();
        let a = KLock::new(Arc::clone(&ctx.locks), "lk_a", ());
        let b = KLock::new(Arc::clone(&ctx.locks), "lk_b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        ctx.locks.record_field_violation("lk_a", "field");
        assert_eq!(ctx.import_lock_violations("t"), 2);
        assert_eq!(ctx.ledger.count(BugClass::LockInversion), 1);
        assert_eq!(ctx.ledger.count(BugClass::DataRace), 1);
    }
}
