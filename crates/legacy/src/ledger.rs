//! The bug ledger: where detected legacy misbehaviour is recorded.
//!
//! Every event corresponds to something that would be undefined behaviour
//! (or a silent logic error) in the real kernel. The ledger is the
//! measurement instrument for the paper's §2 claim that ~42% of Linux CVEs
//! are type/ownership bugs: the empirical study injects bug classes and
//! counts which ledger events fire under which interface regime.

use std::fmt;

use parking_lot::Mutex;

/// The class of a detected bug, aligned with the CWE families the paper's
/// CVE study categorizes (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugClass {
    /// Wrong-type cast of a `void *` (CWE-843). Prevented by Step 2.
    TypeConfusion,
    /// Dereference of freed memory (CWE-416). Prevented by Step 3.
    UseAfterFree,
    /// Second free of the same object (CWE-415). Prevented by Step 3.
    DoubleFree,
    /// NULL/invalid pointer dereference (CWE-476). Prevented by Step 2/3.
    NullDeref,
    /// Dereference of an `ERR_PTR` error value (CWE-476 family).
    ErrPtrDeref,
    /// Read of never-initialized data (CWE-908). Prevented by Step 2/3.
    UninitRead,
    /// Out-of-bounds access (CWE-125/787). Prevented by Step 3.
    OutOfBounds,
    /// Unsynchronized access to lock-protected state (CWE-362).
    DataRace,
    /// Locks taken in an order that can deadlock (CWE-667 improper
    /// locking / CWE-833 deadlock). Caught by lockdep's acquires-after
    /// graph; made unrepresentable by Step-3 ownership (guards that
    /// encode the only legal order).
    LockInversion,
    /// Object never freed by its responsible owner (CWE-401).
    MemoryLeak,
    /// Arithmetic wrapped around (CWE-190). Caught by checked arithmetic.
    IntegerOverflow,
    /// Behaviour diverged from the component's specification — the residue
    /// only functional correctness (Step 4) can catch.
    SpecViolation,
}

impl BugClass {
    /// The CWE identifier the paper's study files this class under.
    pub fn cwe(self) -> &'static str {
        match self {
            BugClass::TypeConfusion => "CWE-843",
            BugClass::UseAfterFree => "CWE-416",
            BugClass::DoubleFree => "CWE-415",
            BugClass::NullDeref => "CWE-476",
            BugClass::ErrPtrDeref => "CWE-476",
            BugClass::UninitRead => "CWE-908",
            BugClass::OutOfBounds => "CWE-787",
            BugClass::DataRace => "CWE-362",
            BugClass::LockInversion => "CWE-667",
            BugClass::MemoryLeak => "CWE-401",
            BugClass::IntegerOverflow => "CWE-190",
            BugClass::SpecViolation => "CWE-840",
        }
    }
}

impl fmt::Display for BugClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} ({})", self, self.cwe())
    }
}

/// One detected bug event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugEvent {
    /// Bug class.
    pub class: BugClass,
    /// Call site tag, e.g. `"cext4::write_end"`.
    pub site: &'static str,
    /// Free-form detail (actual type found, block number, …).
    pub detail: String,
}

/// Thread-safe sink of detected bug events.
#[derive(Debug, Default)]
pub struct BugLedger {
    events: Mutex<Vec<BugEvent>>,
}

impl BugLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        BugLedger::default()
    }

    /// Records one event.
    pub fn record(&self, class: BugClass, site: &'static str, detail: impl Into<String>) {
        self.events.lock().push(BugEvent {
            class,
            site,
            detail: detail.into(),
        });
    }

    /// All recorded events, in order.
    pub fn events(&self) -> Vec<BugEvent> {
        self.events.lock().clone()
    }

    /// Number of events of `class`.
    pub fn count(&self, class: BugClass) -> usize {
        self.events
            .lock()
            .iter()
            .filter(|e| e.class == class)
            .count()
    }

    /// Total number of events.
    pub fn total(&self) -> usize {
        self.events.lock().len()
    }

    /// True if no events were recorded.
    pub fn is_clean(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Clears the ledger (between study trials).
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let l = BugLedger::new();
        assert!(l.is_clean());
        l.record(BugClass::TypeConfusion, "t::a", "u64 vs String");
        l.record(BugClass::TypeConfusion, "t::b", "");
        l.record(BugClass::UseAfterFree, "t::c", "");
        assert_eq!(l.count(BugClass::TypeConfusion), 2);
        assert_eq!(l.count(BugClass::UseAfterFree), 1);
        assert_eq!(l.count(BugClass::DoubleFree), 0);
        assert_eq!(l.total(), 3);
        l.clear();
        assert!(l.is_clean());
    }

    #[test]
    fn every_class_has_a_cwe() {
        use BugClass::*;
        for c in [
            TypeConfusion,
            UseAfterFree,
            DoubleFree,
            NullDeref,
            ErrPtrDeref,
            UninitRead,
            OutOfBounds,
            DataRace,
            LockInversion,
            MemoryLeak,
            IntegerOverflow,
            SpecViolation,
        ] {
            assert!(c.cwe().starts_with("CWE-"));
        }
    }
}
