//! C-style operation tables: string-keyed fn pointers over `void *` args.
//!
//! Linux modules export behaviour as structs of function pointers
//! (`struct file_operations`, `struct proto_ops`, …) taking loosely-typed
//! arguments. Nothing in the table says what each slot expects; optional
//! slots are NULL and some call sites forget to check. This module is the
//! generic form; `sk-vfs::legacy_ops` and the legacy netstack build their
//! concrete tables on it.

use std::collections::HashMap;
use std::sync::Arc;

use sk_ksim::errno::Errno;

use crate::ctx::LegacyCtx;
use crate::errptr::ErrPtr;
use crate::ledger::BugClass;
use crate::voidptr::VoidPtr;

/// A legacy operation: takes the kernel context and erased args, returns a
/// pointer-or-error word.
pub type LegacyFn = Arc<dyn Fn(&LegacyCtx, &[VoidPtr]) -> ErrPtr + Send + Sync>;

/// A table of legacy operations.
#[derive(Clone)]
pub struct OpsTable {
    name: &'static str,
    ops: HashMap<&'static str, LegacyFn>,
}

impl OpsTable {
    /// Creates an empty table named `name`.
    pub fn new(name: &'static str) -> Self {
        OpsTable {
            name,
            ops: HashMap::new(),
        }
    }

    /// The table's name (the module that registered it).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Installs (or replaces) the handler for `op`.
    pub fn set(
        &mut self,
        op: &'static str,
        f: impl Fn(&LegacyCtx, &[VoidPtr]) -> ErrPtr + Send + Sync + 'static,
    ) {
        self.ops.insert(op, Arc::new(f));
    }

    /// True if the slot is populated.
    pub fn has(&self, op: &str) -> bool {
        self.ops.contains_key(op)
    }

    /// Disciplined call: a missing slot returns `ENOSYS`, as careful kernel
    /// call sites do after checking the fn pointer.
    pub fn call(&self, ctx: &LegacyCtx, op: &str, args: &[VoidPtr]) -> ErrPtr {
        match self.ops.get(op) {
            Some(f) => f(ctx, args),
            None => ErrPtr::err(Errno::ENOSYS),
        }
    }

    /// Undisciplined call: invoking a missing slot is a NULL function
    /// pointer dereference — recorded, then surfaced as `EFAULT`.
    pub fn call_unchecked(&self, ctx: &LegacyCtx, op: &str, args: &[VoidPtr]) -> ErrPtr {
        match self.ops.get(op) {
            Some(f) => f(ctx, args),
            None => {
                ctx.ledger.record(
                    BugClass::NullDeref,
                    "ops_table::call_unchecked",
                    format!("{}::{op} is a NULL fn pointer", self.name),
                );
                ErrPtr::err(Errno::EFAULT)
            }
        }
    }

    /// Names of the populated slots, sorted (for diagnostics).
    pub fn slots(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.ops.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_dispatches_with_args() {
        let mut t = OpsTable::new("demo");
        t.set("double", |ctx, args| {
            let v = ctx.vp_cast(args[0], "demo::double", |x: &u32| *x * 2);
            match v {
                Some(out) => ErrPtr::ok(ctx.vp_new(out)),
                None => ErrPtr::err(Errno::EFAULT),
            }
        });
        let ctx = LegacyCtx::new();
        let arg = ctx.vp_new(21u32);
        let res = t.call(&ctx, "double", &[arg]);
        let p = res.check().unwrap();
        assert_eq!(ctx.vp_cast(p, "t", |x: &u32| *x), Some(42));
    }

    #[test]
    fn missing_slot_checked_is_enosys() {
        let t = OpsTable::new("demo");
        let ctx = LegacyCtx::new();
        let r = t.call(&ctx, "nope", &[]);
        assert_eq!(r.check(), Err(Errno::ENOSYS));
        assert!(ctx.ledger.is_clean());
    }

    #[test]
    fn missing_slot_unchecked_is_null_fn_deref() {
        let t = OpsTable::new("demo");
        let ctx = LegacyCtx::new();
        let r = t.call_unchecked(&ctx, "nope", &[]);
        assert_eq!(r.check(), Err(Errno::EFAULT));
        assert_eq!(ctx.ledger.count(BugClass::NullDeref), 1);
    }

    #[test]
    fn slots_sorted_and_replaceable() {
        let mut t = OpsTable::new("demo");
        t.set("b", |_, _| ErrPtr::err(Errno::ENOSYS));
        t.set("a", |_, _| ErrPtr::err(Errno::ENOSYS));
        t.set("a", |_, _| ErrPtr::err(Errno::EIO));
        assert_eq!(t.slots(), vec!["a", "b"]);
        let ctx = LegacyCtx::new();
        assert_eq!(t.call(&ctx, "a", &[]).check(), Err(Errno::EIO));
    }
}
