//! # sk-legacy — the C idioms the paper wants to retire
//!
//! The roadmap of "An Incremental Path Towards a Safer OS Kernel" starts
//! from Linux's existing design patterns: `void *` custom data threaded
//! through interfaces (§4.2's `write_begin`/`write_end` example), error
//! values punned into pointers (`ERR_PTR`), fn-pointer ops tables, and
//! shared structures whose locking rules live in comments (§4.3's
//! `i_lock`/`i_size` example). To *measure* how much each roadmap step
//! helps, this workspace needs those idioms to exist — so this crate
//! reproduces them in controlled form.
//!
//! **The emulation principle.** Real C commits undefined behaviour when
//! these idioms are misused; we cannot (and must not) do that in Safe Rust.
//! Instead, every legacy object lives in a generational `Arena`
//! (`sk_ksim::kalloc`) that carries a *hidden* type tag and liveness
//! generation. Legacy code cannot see the tag — a [`VoidPtr`] is a bare
//! machine word, exactly as expressive as `void *` — but when legacy code
//! casts wrongly, dereferences a freed object, double-frees, or dereferences
//! an `ERR_PTR`, the substrate *detects* the event, records it in the
//! [`BugLedger`], and lets execution continue with a degraded result (the
//! observable misbehaviour). This mirrors how KASAN and syzkaller surface
//! bugs in the real kernel: the bug still "happens"; it is just visible.
//!
//! The empirical prevention study (`sk-faultgen`) runs the same workloads
//! against the legacy interfaces (ledger fills up) and against the safe
//! interfaces from `sk-core` (the same misuse no longer compiles or is
//! refused at the boundary).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod errptr;
pub mod ledger;
pub mod ops;
pub mod voidptr;

pub use ctx::LegacyCtx;
pub use errptr::ErrPtr;
pub use ledger::{BugClass, BugEvent, BugLedger};
pub use ops::OpsTable;
pub use voidptr::VoidPtr;
