//! `ERR_PTR` punning: pointers and error values sharing one word.
//!
//! The paper (§4.2): "Many functions, such as VFS lookup, return a pointer
//! on success or an error value on failure. To achieve this in C, the error
//! value is cast to a pointer, and the caller must manually check that the
//! pointer is valid before dereferencing it."
//!
//! Linux reserves the top 4095 values of the address space: a return value
//! `v` is an error iff `v >= (unsigned long)-MAX_ERRNO`. This module
//! reproduces the encoding over [`VoidPtr`] words. Forgetting the
//! `IS_ERR()` check and dereferencing anyway is *detected* and recorded as
//! [`BugClass::ErrPtrDeref`].

use std::any::Any;

use sk_ksim::errno::Errno;

use crate::ctx::LegacyCtx;
use crate::ledger::BugClass;
use crate::voidptr::VoidPtr;

/// Highest errno representable in the punned range, as in Linux.
pub const MAX_ERRNO: u64 = 4095;

/// A pointer-or-error word, as returned by legacy interfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ErrPtr(u64);

impl ErrPtr {
    /// Wraps a valid pointer.
    pub fn ok(p: VoidPtr) -> ErrPtr {
        debug_assert!(
            p.to_word() < u64::MAX - MAX_ERRNO,
            "pointer collides with the errno range"
        );
        ErrPtr(p.to_word())
    }

    /// Encodes an error (`ERR_PTR(-errno)` in Linux).
    pub fn err(e: Errno) -> ErrPtr {
        ErrPtr((e.as_i32() as i64).wrapping_neg() as u64)
    }

    /// `IS_ERR()`: true if this word encodes an error.
    pub fn is_err(self) -> bool {
        self.0 > u64::MAX - MAX_ERRNO
    }

    /// `PTR_ERR()`: decodes the errno. Only meaningful when
    /// [`ErrPtr::is_err`]; on a valid pointer it returns `EINVAL` (which is
    /// exactly the garbage a C caller would get).
    pub fn ptr_err(self) -> Errno {
        Errno::from_i32((self.0 as i64).wrapping_neg() as i32)
    }

    /// The disciplined decode: what a careful C caller writes.
    pub fn check(self) -> Result<VoidPtr, Errno> {
        if self.is_err() {
            Err(self.ptr_err())
        } else {
            Ok(VoidPtr::from_word(self.0))
        }
    }

    /// The raw word.
    pub fn to_word(self) -> u64 {
        self.0
    }
}

impl LegacyCtx {
    /// The *undisciplined* decode: dereferences the word as a pointer
    /// without an `IS_ERR()` check — the classic bug. If the word is in
    /// fact an error value, the event is recorded and `None` returned.
    pub fn errptr_deref<T: Any, R>(
        &self,
        e: ErrPtr,
        site: &'static str,
        f: impl FnOnce(&T) -> R,
    ) -> Option<R> {
        if e.is_err() {
            self.ledger.record(
                BugClass::ErrPtrDeref,
                site,
                format!("dereferenced ERR_PTR({})", e.ptr_err()),
            );
            return None;
        }
        self.vp_cast(VoidPtr::from_word(e.to_word()), site, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_pointers_are_not_errors() {
        let ctx = LegacyCtx::new();
        let p = ctx.vp_new(5u32);
        let e = ErrPtr::ok(p);
        assert!(!e.is_err());
        assert_eq!(e.check(), Ok(p));
    }

    #[test]
    fn errors_encode_and_decode() {
        for errno in [Errno::ENOENT, Errno::EIO, Errno::EINVAL, Errno::ENOSPC] {
            let e = ErrPtr::err(errno);
            assert!(e.is_err());
            assert_eq!(e.ptr_err(), errno);
            assert_eq!(e.check(), Err(errno));
        }
    }

    #[test]
    fn null_is_a_valid_pointer_word() {
        // As in Linux, NULL is not an ERR_PTR.
        let e = ErrPtr::ok(VoidPtr::NULL);
        assert!(!e.is_err());
    }

    #[test]
    fn undisciplined_deref_of_error_recorded() {
        let ctx = LegacyCtx::new();
        let e = ErrPtr::err(Errno::ENOENT);
        assert_eq!(ctx.errptr_deref(e, "t", |v: &u32| *v), None);
        assert_eq!(ctx.ledger.count(BugClass::ErrPtrDeref), 1);
    }

    #[test]
    fn undisciplined_deref_of_ok_pointer_works() {
        let ctx = LegacyCtx::new();
        let p = ctx.vp_new(9u32);
        let e = ErrPtr::ok(p);
        assert_eq!(ctx.errptr_deref(e, "t", |v: &u32| *v), Some(9));
        assert!(ctx.ledger.is_clean());
    }

    #[test]
    fn boundary_of_errno_range() {
        // Largest errno must still be recognized as an error.
        let e = ErrPtr((MAX_ERRNO as i64).wrapping_neg() as u64);
        assert!(e.is_err());
        // One below the range is a plain (enormous) pointer.
        let p = ErrPtr(u64::MAX - MAX_ERRNO);
        assert!(!p.is_err());
    }
}
