//! Semantic-bug injection for the safe file system.
//!
//! Safe Rust rules out memory-safety bugs, not wrong logic — that is
//! exactly why the paper's Step 4 exists. This wrapper injects
//! representative *semantic* bugs (wrong behaviour, perfectly memory-safe)
//! around any [`FileSystem`], so the study can show they sail through the
//! type/ownership pipeline silently and are caught by refinement checking.

use sk_ksim::errno::KResult;
use sk_vfs::inode::{Attr, InodeNo};
use sk_vfs::modular::{DirEntry, FileSystem, StatFs};

/// Which semantic bug to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemanticBug {
    /// `rename` unlinks the source but never creates the destination
    /// (CWE-840: business-logic error).
    RenameDropsTarget,
    /// `write` ignores the offset and always writes at 0 (CWE-20-adjacent
    /// mishandled input).
    WriteIgnoresOffset,
    /// `truncate` rounds the size up to the next 8-byte boundary
    /// (CWE-682: incorrect calculation).
    TruncateRoundsUp,
    /// `unlink` reports success but leaves the directory entry behind
    /// (CWE-459: incomplete cleanup).
    UnlinkLeavesEntry,
    /// `rmdir` removes non-empty directories, orphaning their contents
    /// (CWE-269-adjacent: skipped check).
    RmdirIgnoresNonempty,
}

/// A file system with one injected semantic bug.
pub struct SemanticFaultFs<F> {
    inner: F,
    bug: SemanticBug,
}

impl<F: FileSystem> SemanticFaultFs<F> {
    /// Wraps `inner`, injecting `bug`.
    pub fn new(inner: F, bug: SemanticBug) -> Self {
        SemanticFaultFs { inner, bug }
    }

    /// The wrapped file system.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F: FileSystem> FileSystem for SemanticFaultFs<F> {
    fn fs_name(&self) -> &'static str {
        "rsfs+semantic-bug"
    }

    fn root_ino(&self) -> InodeNo {
        self.inner.root_ino()
    }

    fn lookup(&self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        self.inner.lookup(dir, name)
    }

    fn getattr(&self, ino: InodeNo) -> KResult<Attr> {
        self.inner.getattr(ino)
    }

    fn create(&self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        self.inner.create(dir, name)
    }

    fn mkdir(&self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        self.inner.mkdir(dir, name)
    }

    fn unlink(&self, dir: InodeNo, name: &str) -> KResult<()> {
        if self.bug == SemanticBug::UnlinkLeavesEntry {
            // Report success, do nothing: the entry survives.
            self.inner.lookup(dir, name)?;
            return Ok(());
        }
        self.inner.unlink(dir, name)
    }

    fn rmdir(&self, dir: InodeNo, name: &str) -> KResult<()> {
        if self.bug == SemanticBug::RmdirIgnoresNonempty {
            // Empty the directory first — recursively deleting content the
            // caller never asked to lose.
            let victim = self.inner.lookup(dir, name)?;
            let children = self.inner.readdir(victim)?;
            for child in children {
                let attr = self.inner.getattr(child.ino)?;
                if attr.ftype == sk_vfs::inode::FileType::Directory {
                    let _ = self.rmdir(victim, &child.name);
                } else {
                    let _ = self.inner.unlink(victim, &child.name);
                }
            }
        }
        self.inner.rmdir(dir, name)
    }

    fn read(&self, ino: InodeNo, off: u64, buf: &mut [u8]) -> KResult<usize> {
        self.inner.read(ino, off, buf)
    }

    fn write(&self, ino: InodeNo, off: u64, data: &[u8]) -> KResult<usize> {
        let off = if self.bug == SemanticBug::WriteIgnoresOffset {
            0
        } else {
            off
        };
        self.inner.write(ino, off, data)
    }

    fn readdir(&self, dir: InodeNo) -> KResult<Vec<DirEntry>> {
        self.inner.readdir(dir)
    }

    fn rename(
        &self,
        olddir: InodeNo,
        oldname: &str,
        newdir: InodeNo,
        newname: &str,
    ) -> KResult<()> {
        if self.bug == SemanticBug::RenameDropsTarget {
            // "Move" by deleting the source. The destination never appears.
            let src = self.inner.lookup(olddir, oldname)?;
            let attr = self.inner.getattr(src)?;
            return if attr.ftype == sk_vfs::inode::FileType::Directory {
                self.inner.rmdir(olddir, oldname).or(Ok(()))
            } else {
                self.inner.unlink(olddir, oldname)
            };
        }
        self.inner.rename(olddir, oldname, newdir, newname)
    }

    fn truncate(&self, ino: InodeNo, size: u64) -> KResult<()> {
        let size = if self.bug == SemanticBug::TruncateRoundsUp {
            size.div_ceil(8) * 8
        } else {
            size
        };
        self.inner.truncate(ino, size)
    }

    fn sync(&self) -> KResult<()> {
        self.inner.sync()
    }

    fn statfs(&self) -> KResult<StatFs> {
        self.inner.statfs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sk_fs_safe::rsfs::{JournalMode, Rsfs};
    use sk_ksim::block::{BlockDevice, RamDisk};
    use std::sync::Arc;

    fn rsfs() -> Rsfs {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(1024));
        Rsfs::mkfs(&dev, 128, 64).unwrap();
        Rsfs::mount(dev, JournalMode::None).unwrap()
    }

    #[test]
    fn rename_drops_target_loses_the_file() {
        let fs = SemanticFaultFs::new(rsfs(), SemanticBug::RenameDropsTarget);
        let root = fs.root_ino();
        fs.create(root, "a").unwrap();
        fs.rename(root, "a", root, "b").unwrap();
        assert!(fs.lookup(root, "a").is_err());
        assert!(fs.lookup(root, "b").is_err(), "destination never created");
    }

    #[test]
    fn write_ignores_offset_corrupts_content() {
        let fs = SemanticFaultFs::new(rsfs(), SemanticBug::WriteIgnoresOffset);
        let root = fs.root_ino();
        let ino = fs.create(root, "f").unwrap();
        fs.write(ino, 0, b"aaaa").unwrap();
        fs.write(ino, 4, b"bb").unwrap(); // lands at 0 instead
        let mut buf = vec![0u8; 8];
        let n = fs.read(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"bbaa");
    }

    #[test]
    fn unlink_leaves_entry_behind() {
        let fs = SemanticFaultFs::new(rsfs(), SemanticBug::UnlinkLeavesEntry);
        let root = fs.root_ino();
        fs.create(root, "ghost").unwrap();
        fs.unlink(root, "ghost").unwrap();
        assert!(fs.lookup(root, "ghost").is_ok(), "still there");
    }

    #[test]
    fn truncate_rounds_up() {
        let fs = SemanticFaultFs::new(rsfs(), SemanticBug::TruncateRoundsUp);
        let root = fs.root_ino();
        let ino = fs.create(root, "f").unwrap();
        fs.write(ino, 0, &[1u8; 20]).unwrap();
        fs.truncate(ino, 5).unwrap();
        assert_eq!(fs.getattr(ino).unwrap().size, 8);
    }

    #[test]
    fn rmdir_ignores_nonempty_destroys_content() {
        let fs = SemanticFaultFs::new(rsfs(), SemanticBug::RmdirIgnoresNonempty);
        let root = fs.root_ino();
        let d = fs.mkdir(root, "d").unwrap();
        fs.create(d, "precious").unwrap();
        fs.rmdir(root, "d").unwrap();
        assert!(fs.lookup(root, "d").is_err(), "dir and content destroyed");
    }
}
