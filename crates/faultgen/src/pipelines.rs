//! The pipeline runners: one workload, four interface regimes.
//!
//! A single deterministic workload (parameterized by seed) runs against:
//! the legacy file system (with a bug knob on and off — manifestation is
//! the *delta*, so the always-on legacy idioms don't contaminate the
//! measurement), the safe file system, a semantically-bugged safe file
//! system, and the safe file system under refinement checking.

use std::sync::Arc;

use sk_core::spec::{RefinementChecker, Refines};
use sk_fs_legacy::{cext4_ops, BugKnobs, Cext4};
use sk_fs_safe::rsfs::{JournalMode, Rsfs};
use sk_ksim::block::{BlockDevice, RamDisk};
use sk_ksim::errno::KResult;
use sk_legacy::{BugClass, LegacyCtx};
use sk_vfs::modular::{fs_abstraction, FileSystem};
use sk_vfs::shim::LegacyFsAdapter;
use sk_vfs::spec::FsModel;

/// Outcome of one pipeline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Detector events of the focused class (ledger + trackers).
    pub class_events: usize,
    /// Objects leaked in the arena.
    pub leaks: u64,
    /// Whether the final state matched the abstract model.
    pub state_correct: bool,
    /// Refinement counterexamples (spec pipeline only).
    pub refinement_violations: usize,
}

impl RunOutcome {
    /// The bug observably happened in this run.
    pub fn manifested(&self) -> bool {
        self.class_events > 0 || self.leaks > 0 || !self.state_correct
    }
}

/// The standard workload: exercises create, write (begin/end path), read,
/// mkdir, rename, readdir, truncate, and unlink — every buggy code path in
/// the catalog. Errors are propagated so a refused operation is visible.
pub fn workload(fs: &dyn FileSystem, seed: u64) -> KResult<()> {
    let root = fs.root_ino();
    let a = format!("a{seed}");
    let b = format!("b{seed}");
    let d = format!("d{seed}");
    let e = format!("e{seed}");
    let z = format!("z{seed}");
    let fa = fs.create(root, &a)?;
    let _fz = fs.create(root, &z)?;
    let len = 100 + (seed % 200) as usize;
    // Never 0 (a zero offset would mask the ignores-offset bug) and never
    // a multiple of 8 on truncate (would mask the rounding bug).
    let off = 1 + (seed % 63);
    let trunc = (seed % 50) | 1;
    let payload: Vec<u8> = (0..len).map(|i| (i as u64 + seed) as u8).collect();
    fs.write(fa, off, &payload)?;
    let mut buf = vec![0u8; len + 64];
    fs.read(fa, 0, &mut buf)?;
    let _fb = fs.create(root, &b)?;
    let dd = fs.mkdir(root, &d)?;
    fs.rename(root, &b, dd, "moved")?;
    fs.readdir(root)?;
    fs.readdir(dd)?;
    // rmdir of a non-empty directory must be refused.
    let d2 = fs.mkdir(root, &e)?;
    fs.create(d2, "inner")?;
    match fs.rmdir(root, &e) {
        Err(sk_ksim::errno::Errno::ENOTEMPTY) => {
            fs.unlink(d2, "inner")?;
            fs.rmdir(root, &e)?;
        }
        // A buggy rmdir succeeded (or failed oddly); surface the damage.
        Ok(()) => {
            fs.unlink(d2, "inner")?;
        }
        Err(other) => return Err(other),
    }
    fs.truncate(fa, trunc)?;
    fs.unlink(root, &z)?;
    fs.sync()?;
    Ok(())
}

/// The abstract-model mirror of [`workload`]: what a correct file system
/// must end up as.
pub fn workload_model(seed: u64) -> FsModel {
    let a = format!("/a{seed}");
    let b = format!("/b{seed}");
    let d = format!("/d{seed}");
    let z = format!("/z{seed}");
    let len = 100 + (seed % 200) as usize;
    let off = 1 + (seed % 63);
    let trunc = (seed % 50) | 1;
    let payload: Vec<u8> = (0..len).map(|i| (i as u64 + seed) as u8).collect();
    // The e{seed} directory dance is net-zero on a correct file system,
    // and z{seed} is created then unlinked.
    FsModel::new()
        .create(&a)
        .and_then(|m| m.create(&z))
        .and_then(|m| m.write(&a, off, &payload))
        .and_then(|m| m.create(&b))
        .and_then(|m| m.mkdir(&d))
        .and_then(|m| m.rename(&b, &format!("{d}/moved")))
        .and_then(|m| m.truncate(&a, trunc))
        .and_then(|m| m.unlink(&z))
        .expect("the model workload is well-formed")
}

fn fresh_cext4(knob: Option<&str>) -> (LegacyFsAdapter, LegacyCtx) {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(1024));
    Cext4::mkfs(&dev, 128).expect("mkfs");
    let ctx = LegacyCtx::new();
    let knobs = Arc::new(BugKnobs::none());
    if let Some(k) = knob {
        assert!(knobs.set(k, true), "unknown knob {k}");
    }
    let fs = Arc::new(Cext4::mount(dev, ctx.clone(), knobs).expect("mount"));
    (
        LegacyFsAdapter::new(Arc::new(cext4_ops(fs)), ctx.clone()),
        ctx,
    )
}

/// Runs the workload on cext4 with `knob`, measuring events of `class`
/// *relative to a knob-off control run* (the legacy idioms record
/// background events even when correct).
pub fn run_legacy(knob: &str, class: BugClass, seed: u64) -> RunOutcome {
    let control = run_legacy_once(None, class, seed);
    let bugged = run_legacy_once(Some(knob), class, seed);
    RunOutcome {
        class_events: bugged.class_events.saturating_sub(control.class_events),
        leaks: bugged.leaks.saturating_sub(control.leaks),
        state_correct: bugged.state_correct,
        refinement_violations: 0,
    }
}

fn run_legacy_once(knob: Option<&str>, class: BugClass, seed: u64) -> RunOutcome {
    let (adapter, ctx) = fresh_cext4(knob);
    let live_before = ctx.arena.live_count();
    let result = workload(&adapter, seed);
    ctx.import_lock_violations("study");
    let class_events = ctx.ledger.count(class);
    let leaks = ctx.arena.live_count().saturating_sub(live_before);
    let state_correct = result.is_ok() && fs_abstraction(&adapter) == workload_model(seed);
    RunOutcome {
        class_events,
        leaks,
        state_correct,
        refinement_violations: 0,
    }
}

fn fresh_rsfs() -> Rsfs {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(1024));
    Rsfs::mkfs(&dev, 128, 64).expect("mkfs");
    Rsfs::mount(dev, JournalMode::PerOp).expect("mount")
}

/// Runs the workload on the safe file system (optionally wrapped, e.g. by
/// the semantic-bug injector). There is no ledger: the safe pipeline's
/// misbehaviour can only show as a wrong final state.
pub fn run_safe(wrap: impl FnOnce(Rsfs) -> Box<dyn FileSystem>, seed: u64) -> RunOutcome {
    let fs = wrap(fresh_rsfs());
    let result = workload(fs.as_ref(), seed);
    let state_correct = result.is_ok() && fs_abstraction(fs.as_ref()) == workload_model(seed);
    RunOutcome {
        class_events: 0,
        leaks: 0,
        state_correct,
        refinement_violations: 0,
    }
}

/// A [`Refines`] view over any boxed file system.
struct Abstracted<'a>(&'a dyn FileSystem);
impl Refines<FsModel> for Abstracted<'_> {
    fn abstraction(&self) -> FsModel {
        fs_abstraction(self.0)
    }
}

/// Runs the workload under the Step-4 refinement checker: every operation
/// is checked against its model relation, so semantic bugs produce
/// counterexamples at the operation that commits them.
pub fn run_spec_checked(wrap: impl FnOnce(Rsfs) -> Box<dyn FileSystem>, seed: u64) -> RunOutcome {
    let fs = wrap(fresh_rsfs());
    let mut sys = Abstracted(fs.as_ref());
    let mut chk: RefinementChecker<FsModel> = RefinementChecker::new();
    let root = fs.root_ino();
    let a = format!("a{seed}");
    let b = format!("b{seed}");
    let d = format!("d{seed}");
    let e = format!("e{seed}");
    let z = format!("z{seed}");
    let pa = format!("/a{seed}");
    let pb = format!("/b{seed}");
    let pd = format!("/d{seed}");
    let pe = format!("/e{seed}");
    let pz = format!("/z{seed}");
    let len = 100 + (seed % 200) as usize;
    let off = 1 + (seed % 63);
    let trunc = (seed % 50) | 1;
    let payload: Vec<u8> = (0..len).map(|i| (i as u64 + seed) as u8).collect();

    let fa = chk.step(
        &mut sys,
        "create",
        |s| s.0.create(root, &a),
        |pre, post, r| r.is_ok() && pre.create(&pa).map(|m| m == *post).unwrap_or(false),
    );
    let fa = fa.unwrap_or_default();
    let _ = chk.step(
        &mut sys,
        "create_z",
        |s| s.0.create(root, &z),
        |pre, post, r| r.is_ok() && pre.create(&pz).map(|m| m == *post).unwrap_or(false),
    );
    let _ = chk.step(
        &mut sys,
        "write",
        |s| s.0.write(fa, off, &payload),
        |pre, post, r| {
            r.is_ok()
                && pre
                    .write(&pa, off, &payload)
                    .map(|m| m == *post)
                    .unwrap_or(false)
        },
    );
    let _ = chk.step(
        &mut sys,
        "create2",
        |s| s.0.create(root, &b),
        |pre, post, r| r.is_ok() && pre.create(&pb).map(|m| m == *post).unwrap_or(false),
    );
    let dd = chk.step(
        &mut sys,
        "mkdir",
        |s| s.0.mkdir(root, &d),
        |pre, post, r| r.is_ok() && pre.mkdir(&pd).map(|m| m == *post).unwrap_or(false),
    );
    let dd = dd.unwrap_or(0);
    let _ = chk.step(
        &mut sys,
        "rename",
        |s| s.0.rename(root, &b, dd, "moved"),
        |pre, post, r| {
            r.is_ok()
                && pre
                    .rename(&pb, &format!("{pd}/moved"))
                    .map(|m| m == *post)
                    .unwrap_or(false)
        },
    );
    // The rmdir-nonempty probe: a correct implementation refuses with
    // ENOTEMPTY and leaves the state untouched.
    let d2 = chk.step(
        &mut sys,
        "mkdir2",
        |s| s.0.mkdir(root, &e),
        |pre, post, r| r.is_ok() && pre.mkdir(&pe).map(|m| m == *post).unwrap_or(false),
    );
    let d2 = d2.unwrap_or(0);
    let _ = chk.step(
        &mut sys,
        "create_inner",
        |s| s.0.create(d2, "inner"),
        |pre, post, r| {
            r.is_ok()
                && pre
                    .create(&format!("{pe}/inner"))
                    .map(|m| m == *post)
                    .unwrap_or(false)
        },
    );
    let refused = chk.step(
        &mut sys,
        "rmdir_nonempty",
        |s| s.0.rmdir(root, &e),
        |pre, post, r| *r == Err(sk_ksim::errno::Errno::ENOTEMPTY) && pre == post,
    );
    if refused.is_err() {
        let _ = chk.step(
            &mut sys,
            "unlink_inner",
            |s| s.0.unlink(d2, "inner"),
            |pre, post, r| {
                r.is_ok()
                    && pre
                        .unlink(&format!("{pe}/inner"))
                        .map(|m| m == *post)
                        .unwrap_or(false)
            },
        );
        let _ = chk.step(
            &mut sys,
            "rmdir_empty",
            |s| s.0.rmdir(root, &e),
            |pre, post, r| r.is_ok() && pre.rmdir(&pe).map(|m| m == *post).unwrap_or(false),
        );
    } else {
        // The buggy rmdir destroyed the subtree; nothing left to clean up.
        let _ = fs.unlink(d2, "inner");
    }
    let _ = chk.step(
        &mut sys,
        "truncate",
        |s| s.0.truncate(fa, trunc),
        |pre, post, r| {
            r.is_ok()
                && pre
                    .truncate(&pa, trunc)
                    .map(|m| m == *post)
                    .unwrap_or(false)
        },
    );
    let _ = chk.step(
        &mut sys,
        "unlink",
        |s| s.0.unlink(root, &z),
        |pre, post, r| r.is_ok() && pre.unlink(&pz).map(|m| m == *post).unwrap_or(false),
    );
    let state_correct = sys.abstraction() == workload_model(seed);
    RunOutcome {
        class_events: 0,
        leaks: 0,
        state_correct,
        refinement_violations: chk.violations().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::{SemanticBug, SemanticFaultFs};

    #[test]
    fn correct_legacy_fs_passes_the_workload() {
        let out = run_legacy_once(None, BugClass::TypeConfusion, 1);
        assert!(out.state_correct, "knob-free cext4 is semantically correct");
        assert_eq!(out.class_events, 0);
    }

    #[test]
    fn knobbed_legacy_fs_manifests() {
        let out = run_legacy("wrong_cast_write_end", BugClass::TypeConfusion, 2);
        assert!(out.manifested());
        assert!(out.class_events > 0);
    }

    #[test]
    fn safe_fs_is_clean_and_correct() {
        let out = run_safe(|fs| Box::new(fs), 3);
        assert!(!out.manifested());
        assert!(out.state_correct);
    }

    #[test]
    fn semantic_bug_slips_past_the_safe_pipeline() {
        let out = run_safe(
            |fs| Box::new(SemanticFaultFs::new(fs, SemanticBug::RenameDropsTarget)),
            4,
        );
        assert!(out.manifested(), "silently wrong state");
        assert_eq!(out.class_events, 0, "but no detector fires");
    }

    #[test]
    fn spec_checker_catches_the_semantic_bug() {
        let out = run_spec_checked(
            |fs| Box::new(SemanticFaultFs::new(fs, SemanticBug::RenameDropsTarget)),
            5,
        );
        assert!(out.refinement_violations > 0, "counterexample produced");
    }

    #[test]
    fn spec_checker_is_clean_on_the_correct_fs() {
        let out = run_spec_checked(|fs| Box::new(fs), 6);
        assert_eq!(out.refinement_violations, 0);
        assert!(out.state_correct);
    }
}
