//! The bug catalog: one representative, runnable bug per CWE class of the
//! paper's corpus, with the mechanism that instantiates and evaluates it.

use std::sync::Arc;

use sk_cvedb::Prevention;
use sk_ksim::errno::Errno;
use sk_ksim::time::SimClock;
use sk_legacy::{BugClass, LegacyCtx};
use sk_netstack::legacy_stack::{LegacyStack, OP_AMP_MOVE};
use sk_netstack::modular_stack::{register_families, ModularStack};
use sk_netstack::packet::{proto, Packet};
use sk_netstack::wire::{Side, Wire};

use crate::pipelines::{run_legacy, run_safe, run_spec_checked, RunOutcome};
use crate::semantic::{SemanticBug, SemanticFaultFs};

/// How a spec instantiates its bug and evaluates the pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// A cext4 bug knob; manifestation counted as `class` detector events.
    LegacyFsKnob {
        /// Knob name (see `sk_fs_legacy::BugKnobs`).
        knob: &'static str,
        /// The detector class that counts as manifestation.
        class: BugClass,
    },
    /// The §4.1 coupling: generic poll casting UDP protinfo to TCP state.
    LegacyNetPoll,
    /// The CVE-2020-12351 analogue: crafted AMP packet mis-casts a channel.
    LegacyNetAmp,
    /// A semantic bug injected around the safe file system.
    Semantic(SemanticBug),
    /// CWE-190: wrapping size arithmetic bypassing a bounds check.
    NumericWrap,
    /// CWE-200: an interface that exposes internal state the spec doesn't
    /// constrain.
    InfoLeak,
    /// CWE-264: a missing permission model — a design flaw no checker in
    /// the roadmap sees.
    DesignFlaw,
    /// CWE-330: predictable initial sequence numbers.
    WeakEntropy,
    /// CWE-459: crash consistency — without a journal, a crash during
    /// writeback leaves a state that is neither the previous nor the new
    /// synced version. Type/ownership safety does not help (the
    /// un-journaled safe fs tears identically); only the crash
    /// *specification* — checked by enumeration or a refinement crash
    /// step — names the bug.
    CrashLoss,
}

/// One catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct BugSpec {
    /// Short name.
    pub name: &'static str,
    /// The CWE this spec represents.
    pub cwe: &'static str,
    /// The prevention category the paper's §2 mapping assigns.
    pub expected: Prevention,
    /// How to instantiate and evaluate it.
    pub mechanism: Mechanism,
}

/// The full catalog.
pub fn catalog() -> Vec<BugSpec> {
    use Mechanism::*;
    vec![
        BugSpec {
            name: "uaf_inode_private",
            cwe: "CWE-416",
            expected: Prevention::TypeOwnership,
            mechanism: LegacyFsKnob {
                knob: "uaf_inode_private",
                class: BugClass::UseAfterFree,
            },
        },
        BugSpec {
            name: "deref_errptr_lookup",
            cwe: "CWE-476",
            expected: Prevention::TypeOwnership,
            mechanism: LegacyFsKnob {
                knob: "deref_errptr_lookup",
                class: BugClass::ErrPtrDeref,
            },
        },
        BugSpec {
            name: "wrong_cast_write_end",
            cwe: "CWE-787",
            expected: Prevention::TypeOwnership,
            mechanism: LegacyFsKnob {
                knob: "wrong_cast_write_end",
                class: BugClass::TypeConfusion,
            },
        },
        BugSpec {
            name: "amp_type_confusion",
            cwe: "CWE-787",
            expected: Prevention::TypeOwnership,
            mechanism: LegacyNetAmp,
        },
        BugSpec {
            name: "off_by_one_dirent",
            cwe: "CWE-125",
            expected: Prevention::TypeOwnership,
            mechanism: LegacyFsKnob {
                knob: "off_by_one_dirent",
                class: BugClass::OutOfBounds,
            },
        },
        BugSpec {
            name: "racy_truncate",
            cwe: "CWE-362",
            expected: Prevention::TypeOwnership,
            mechanism: LegacyFsKnob {
                knob: "racy_truncate",
                class: BugClass::DataRace,
            },
        },
        BugSpec {
            name: "reversed_double_lock",
            cwe: "CWE-667",
            expected: Prevention::TypeOwnership,
            mechanism: LegacyFsKnob {
                knob: "reversed_double_lock",
                class: BugClass::LockInversion,
            },
        },
        BugSpec {
            name: "double_free_fsdata",
            cwe: "CWE-415",
            expected: Prevention::TypeOwnership,
            mechanism: LegacyFsKnob {
                knob: "double_free_fsdata",
                class: BugClass::DoubleFree,
            },
        },
        BugSpec {
            name: "leak_fsdata",
            cwe: "CWE-401",
            expected: Prevention::TypeOwnership,
            mechanism: LegacyFsKnob {
                knob: "leak_fsdata",
                class: BugClass::MemoryLeak,
            },
        },
        BugSpec {
            name: "poll_assumes_tcp",
            cwe: "CWE-843",
            expected: Prevention::TypeOwnership,
            mechanism: LegacyNetPoll,
        },
        // Functional-correctness class.
        BugSpec {
            name: "write_ignores_offset",
            cwe: "CWE-20",
            expected: Prevention::Functional,
            mechanism: Semantic(SemanticBug::WriteIgnoresOffset),
        },
        BugSpec {
            name: "rename_drops_target",
            cwe: "CWE-840",
            expected: Prevention::Functional,
            mechanism: Semantic(SemanticBug::RenameDropsTarget),
        },
        BugSpec {
            name: "truncate_rounds_up",
            cwe: "CWE-682",
            expected: Prevention::Functional,
            mechanism: Semantic(SemanticBug::TruncateRoundsUp),
        },
        BugSpec {
            name: "unlink_leaves_entry",
            cwe: "CWE-459",
            expected: Prevention::Functional,
            mechanism: Semantic(SemanticBug::UnlinkLeavesEntry),
        },
        BugSpec {
            name: "rmdir_ignores_nonempty",
            cwe: "CWE-269",
            expected: Prevention::Functional,
            mechanism: Semantic(SemanticBug::RmdirIgnoresNonempty),
        },
        BugSpec {
            name: "crash_tears_synced_write",
            cwe: "CWE-459",
            expected: Prevention::Functional,
            mechanism: CrashLoss,
        },
        // The residual 23%.
        BugSpec {
            name: "attr_info_leak",
            cwe: "CWE-200",
            expected: Prevention::Other,
            mechanism: InfoLeak,
        },
        BugSpec {
            name: "wrapping_size_math",
            cwe: "CWE-190",
            expected: Prevention::Other,
            mechanism: NumericWrap,
        },
        BugSpec {
            name: "missing_permission_model",
            cwe: "CWE-264",
            expected: Prevention::Other,
            mechanism: DesignFlaw,
        },
        BugSpec {
            name: "predictable_isn",
            cwe: "CWE-330",
            expected: Prevention::Other,
            mechanism: WeakEntropy,
        },
    ]
}

/// Picks the catalog spec for a corpus CWE; `salt` rotates among specs
/// that share a CWE.
pub fn spec_for_cwe(cwe: &str, salt: u64) -> Option<BugSpec> {
    let matching: Vec<BugSpec> = catalog().into_iter().filter(|s| s.cwe == cwe).collect();
    if matching.is_empty() {
        return None;
    }
    Some(matching[(salt as usize) % matching.len()])
}

// --- mechanism evaluations -------------------------------------------------

fn legacy_net_pair() -> (LegacyStack, LegacyStack) {
    let wire = Arc::new(Wire::new());
    let clock = Arc::new(SimClock::new());
    (
        LegacyStack::new(LegacyCtx::new(), Side::A, wire.clone(), Arc::clone(&clock)),
        LegacyStack::new(LegacyCtx::new(), Side::B, wire, clock),
    )
}

fn modular_net() -> ModularStack {
    let registry = Arc::new(sk_core::modularity::Registry::new());
    register_families(&registry).expect("register families");
    let wire = Arc::new(Wire::new());
    let clock = Arc::new(SimClock::new());
    ModularStack::new(registry, Side::A, wire, clock)
}

/// Evaluates the legacy (baseline) pipeline for a spec.
pub fn eval_baseline(spec: &BugSpec, seed: u64) -> RunOutcome {
    match spec.mechanism {
        Mechanism::LegacyFsKnob { knob, class } => run_legacy(knob, class, seed),
        Mechanism::NumericWrap => {
            // The wrap only triggers at extreme offsets; drive it directly.
            let out = run_legacy("wrapping_size_math", BugClass::IntegerOverflow, seed);
            if out.class_events > 0 {
                return out;
            }
            // The standard workload doesn't reach the wrap; use the
            // dedicated huge-offset probe.
            overflow_probe_legacy(seed)
        }
        Mechanism::LegacyNetPoll => {
            let (a, _b) = legacy_net_pair();
            let s = a
                .socket(proto::UDP, 1000 + (seed % 100) as u16)
                .expect("socket");
            let _ = a.poll(s);
            RunOutcome {
                class_events: a.ctx().ledger.count(BugClass::TypeConfusion),
                leaks: 0,
                state_correct: false, // poll returned a bogus answer
                refinement_violations: 0,
            }
        }
        Mechanism::LegacyNetAmp => {
            let (a, _b) = legacy_net_pair();
            a.create_l2cap_channel(0x40, 672);
            a.create_amp_channel(0x41, 1);
            let mut evil = Packet::new(proto::AMP_CTRL, 1, 1);
            evil.payload = vec![OP_AMP_MOVE, 0x40, 0x00, (seed % 256) as u8];
            let _ = a.handle_ctrl_packet(&evil);
            RunOutcome {
                class_events: a.ctx().ledger.count(BugClass::TypeConfusion),
                leaks: 0,
                state_correct: false,
                refinement_violations: 0,
            }
        }
        Mechanism::Semantic(bug) => {
            // "Baseline" for a semantic bug is the same wrong logic in the
            // legacy world — state divergence with nothing detecting it.
            run_safe(move |fs| Box::new(SemanticFaultFs::new(fs, bug)), seed)
        }
        Mechanism::InfoLeak => info_leak_probe(),
        Mechanism::DesignFlaw => design_flaw_probe(seed),
        Mechanism::WeakEntropy => weak_entropy_probe(),
        Mechanism::CrashLoss => crash_loss_probe_legacy(seed),
    }
}

/// Evaluates the type+ownership (safe implementation) pipeline.
pub fn eval_safe(spec: &BugSpec, seed: u64) -> RunOutcome {
    match spec.mechanism {
        Mechanism::LegacyFsKnob { .. } => run_safe(|fs| Box::new(fs), seed),
        Mechanism::NumericWrap => overflow_probe_safe(seed),
        Mechanism::LegacyNetPoll => {
            let a = modular_net();
            let s = a.socket("udp", 1000 + (seed % 100) as u16).expect("socket");
            let ok = a.poll(s) == Ok(false);
            RunOutcome {
                class_events: 0,
                leaks: 0,
                state_correct: ok,
                refinement_violations: 0,
            }
        }
        Mechanism::LegacyNetAmp => {
            let a = modular_net();
            a.create_l2cap_channel(0x40, 672);
            a.create_amp_channel(0x41, 1);
            let mut evil = Packet::new(proto::AMP_CTRL, 1, 1);
            evil.payload = vec![OP_AMP_MOVE, 0x40, 0x00, (seed % 256) as u8];
            let refused = a.handle_ctrl_packet(&evil) == Err(Errno::EPROTO);
            RunOutcome {
                class_events: 0,
                leaks: 0,
                state_correct: refused,
                refinement_violations: 0,
            }
        }
        Mechanism::Semantic(bug) => {
            run_safe(move |fs| Box::new(SemanticFaultFs::new(fs, bug)), seed)
        }
        Mechanism::InfoLeak => info_leak_probe(),
        Mechanism::DesignFlaw => design_flaw_probe(seed),
        Mechanism::WeakEntropy => weak_entropy_probe(),
        // Type/ownership safety alone buys no crash consistency: the
        // un-journaled rsfs tears exactly like cext4.
        Mechanism::CrashLoss => crash_loss_probe_safe(seed),
    }
}

/// Evaluates the functional-correctness pipeline.
pub fn eval_spec_checked(spec: &BugSpec, seed: u64) -> RunOutcome {
    match spec.mechanism {
        Mechanism::Semantic(bug) => {
            run_spec_checked(move |fs| Box::new(SemanticFaultFs::new(fs, bug)), seed)
        }
        Mechanism::CrashLoss => crash_loss_probe_spec_checked(seed),
        // Memory-safety classes never reach this pipeline (already
        // prevented); the residual classes run the checker and stay clean —
        // which *is* the measurement: the spec does not constrain them.
        _ => run_spec_checked(|fs| Box::new(fs), seed),
    }
}

// --- residual-category probes ------------------------------------------------

/// CWE-190 on the legacy side: offsets near `u64::MAX` wrap past the
/// bounds check and are detected as `IntegerOverflow` by the substrate.
fn overflow_probe_legacy(seed: u64) -> RunOutcome {
    use sk_fs_legacy::{BugKnobs, Cext4};
    use sk_ksim::block::{BlockDevice, RamDisk};
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(512));
    Cext4::mkfs(&dev, 64).expect("mkfs");
    let ctx = LegacyCtx::new();
    let knobs = Arc::new(BugKnobs::none());
    knobs.set("wrapping_size_math", true);
    let fs = Cext4::mount(dev, ctx.clone(), knobs).expect("mount");
    let e = fs.create_errptr(fs.root_ino(), "f", 1);
    let ino = e
        .check()
        .ok()
        .and_then(|p| ctx.vp_take::<u64>(p, "study"))
        .unwrap_or(0);
    let _ = fs.write_range(ino, u64::MAX - 2 - (seed % 8), b"xyz");
    RunOutcome {
        class_events: ctx.ledger.count(BugClass::IntegerOverflow),
        leaks: 0,
        state_correct: false,
        refinement_violations: 0,
    }
}

/// The same probe against rsfs: checked arithmetic refuses with
/// `EOVERFLOW` and the state is untouched. (Prevented — but by the
/// *optional* overflow-check discipline, not by type/ownership safety; the
/// study still files CWE-190 under "other", as the paper does, and reports
/// this as the "mandatory overflow checks" sub-finding of §2.)
fn overflow_probe_safe(seed: u64) -> RunOutcome {
    use sk_fs_safe::rsfs::{JournalMode, Rsfs};
    use sk_ksim::block::{BlockDevice, RamDisk};
    use sk_vfs::modular::FileSystem;
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(1024));
    Rsfs::mkfs(&dev, 64, 64).expect("mkfs");
    let fs = Rsfs::mount(dev, JournalMode::PerOp).expect("mount");
    let ino = fs.create(fs.root_ino(), "f").expect("create");
    let refused = matches!(
        fs.write(ino, u64::MAX - 2 - (seed % 8), b"xyz"),
        Err(Errno::EOVERFLOW) | Err(Errno::EFBIG)
    );
    RunOutcome {
        class_events: 0,
        leaks: 0,
        state_correct: refused && fs.getattr(ino).map(|a| a.size == 0).unwrap_or(false),
        refinement_violations: 0,
    }
}

/// CWE-200: `getattr` exposes the kernel-internal operation counter
/// through `mtime_ns` — observable, unconstrained by the model.
fn info_leak_probe() -> RunOutcome {
    use sk_fs_safe::rsfs::{JournalMode, Rsfs};
    use sk_ksim::block::{BlockDevice, RamDisk};
    use sk_vfs::modular::FileSystem;
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(1024));
    Rsfs::mkfs(&dev, 64, 64).expect("mkfs");
    let fs = Rsfs::mount(dev, JournalMode::None).expect("mount");
    let a = fs.create(fs.root_ino(), "a").expect("create");
    let b = fs.create(fs.root_ino(), "b").expect("create");
    let ta = fs.getattr(a).expect("attr").mtime_ns;
    let tb = fs.getattr(b).expect("attr").mtime_ns;
    // The leak: internal op ordering is recoverable from public attrs.
    let leaks_internal_state = tb > ta;
    RunOutcome {
        class_events: 0,
        leaks: 0,
        state_correct: !leaks_internal_state,
        refinement_violations: 0,
    }
}

/// CWE-264: any caller may unlink any file — there is no permission model
/// to violate, which is itself the flaw.
fn design_flaw_probe(seed: u64) -> RunOutcome {
    use sk_fs_safe::rsfs::{JournalMode, Rsfs};
    use sk_ksim::block::{BlockDevice, RamDisk};
    use sk_vfs::modular::FileSystem;
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(1024));
    Rsfs::mkfs(&dev, 64, 64).expect("mkfs");
    let fs = Rsfs::mount(dev, JournalMode::None).expect("mount");
    let name = format!("victim{seed}");
    fs.create(fs.root_ino(), &name).expect("create");
    // "Another user" deletes it; nothing refuses.
    let unauthorized_delete_succeeded = fs.unlink(fs.root_ino(), &name).is_ok();
    RunOutcome {
        class_events: 0,
        leaks: 0,
        state_correct: !unauthorized_delete_succeeded,
        refinement_violations: 0,
    }
}

// --- crash-consistency probes (CWE-459) --------------------------------------

use sk_core::spec::crash::{crash_images, CrashPolicy};
use sk_ksim::block::{BlockDevice, CrashDevice, DeviceStats, PendingWrite, RamDisk, BLOCK_SIZE};
use sk_ksim::errno::KResult;
use sk_vfs::modular::FileSystem;

/// Captures the pending-write set of a [`CrashDevice`] at each flush
/// barrier, so the crash probes can enumerate mid-sync crash images.
struct FlushTap {
    inner: Arc<CrashDevice<Arc<RamDisk>>>,
    intervals: parking_lot::Mutex<Vec<Vec<PendingWrite>>>,
}

impl BlockDevice for FlushTap {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }
    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
        self.inner.read_block(blkno, buf)
    }
    fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
        self.inner.write_block(blkno, buf)
    }
    fn flush(&self) -> KResult<()> {
        self.intervals.lock().push(self.inner.pending_writes());
        self.inner.flush()
    }
    fn stats(&self) -> DeviceStats {
        self.inner.stats()
    }
}

fn crash_tapped() -> (Arc<RamDisk>, Arc<FlushTap>, Arc<dyn BlockDevice>) {
    let ram = Arc::new(RamDisk::new(1024));
    let crash = Arc::new(CrashDevice::new(Arc::clone(&ram)));
    let tap = Arc::new(FlushTap {
        inner: crash,
        intervals: parking_lot::Mutex::new(Vec::new()),
    });
    let dyn_dev: Arc<dyn BlockDevice> = Arc::clone(&tap) as Arc<dyn BlockDevice>;
    (ram, tap, dyn_dev)
}

/// The two-version crash scenario: a two-block file is written and
/// synced (version 1), then overwritten and synced again. Returns the
/// durable image as of version 1, the write intervals of the second
/// sync, and both payloads.
#[allow(clippy::type_complexity)]
fn crash_schedule(
    fs: &dyn FileSystem,
    ram: &RamDisk,
    tap: &FlushTap,
    seed: u64,
) -> (Vec<u8>, Vec<Vec<PendingWrite>>, Vec<u8>, Vec<u8>) {
    let v1 = vec![seed as u8; 2 * BLOCK_SIZE];
    let v2 = vec![!(seed as u8); 2 * BLOCK_SIZE];
    let root = fs.root_ino();
    let ino = fs.create(root, "cf").expect("create");
    fs.write(ino, 0, &v1).expect("write v1");
    fs.sync().expect("sync v1");
    let base = ram.snapshot();
    tap.intervals.lock().clear();
    fs.write(ino, 0, &v2).expect("write v2");
    fs.sync().expect("sync v2");
    let intervals = tap.intervals.lock().clone();
    (base, intervals, v1, v2)
}

/// Enumerates every prefix crash image of the second sync and returns
/// the first whose recovered file content is *neither* synced version —
/// the torn state the crash spec forbids. `reread` mounts an image and
/// returns the file's content (`None` = unreadable, which also counts).
fn find_torn_image(
    base: &[u8],
    intervals: &[Vec<PendingWrite>],
    v1: &[u8],
    v2: &[u8],
    reread: impl Fn(&[u8]) -> Option<Vec<u8>>,
) -> Option<Vec<u8>> {
    let mut applied = base.to_vec();
    for interval in intervals {
        for img in crash_images(&applied, interval, BLOCK_SIZE, CrashPolicy::Prefixes) {
            match reread(&img) {
                Some(content) if content == v1 || content == v2 => {}
                _ => return Some(img),
            }
        }
        for w in interval {
            let off = w.blkno as usize * BLOCK_SIZE;
            applied[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
        }
    }
    None
}

fn reread_rsfs_none(img: &[u8]) -> Option<Vec<u8>> {
    use sk_fs_safe::rsfs::{JournalMode, Rsfs};
    let ram = Arc::new(RamDisk::new(1024));
    ram.restore(img).ok()?;
    let dev: Arc<dyn BlockDevice> = ram;
    let fs = Rsfs::mount(dev, JournalMode::None).ok()?;
    let ino = fs.lookup(fs.root_ino(), "cf").ok()?;
    let mut buf = vec![0u8; 4 * BLOCK_SIZE];
    let n = fs.read(ino, 0, &mut buf).ok()?;
    buf.truncate(n);
    Some(buf)
}

/// CWE-459 on the legacy side: cext4 has no journal, so a crash during
/// writeback can land *between* the two synced versions — a state the
/// crash specification forbids, with no detector class to count it.
fn crash_loss_probe_legacy(seed: u64) -> RunOutcome {
    use sk_fs_legacy::{cext4_ops, BugKnobs, Cext4};
    use sk_vfs::shim::LegacyFsAdapter;
    let (ram, tap, dev) = crash_tapped();
    Cext4::mkfs(&dev, 128).expect("mkfs");
    let ctx = LegacyCtx::new();
    let fs = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).expect("mount"));
    let adapter = LegacyFsAdapter::new(Arc::new(cext4_ops(fs)), ctx);
    let (base, intervals, v1, v2) = crash_schedule(&adapter, &ram, &tap, seed);
    let torn = find_torn_image(&base, &intervals, &v1, &v2, |img| {
        let ram = Arc::new(RamDisk::new(1024));
        ram.restore(img).ok()?;
        let dev: Arc<dyn BlockDevice> = ram;
        let ctx = LegacyCtx::new();
        let fs = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).ok()?);
        let adapter = LegacyFsAdapter::new(Arc::new(cext4_ops(fs)), ctx);
        let ino = adapter.lookup(adapter.root_ino(), "cf").ok()?;
        let mut buf = vec![0u8; 4 * BLOCK_SIZE];
        let n = adapter.read(ino, 0, &mut buf).ok()?;
        buf.truncate(n);
        Some(buf)
    })
    .is_some();
    RunOutcome {
        class_events: 0,
        leaks: 0,
        state_correct: !torn,
        refinement_violations: 0,
    }
}

/// The same probe against the *un-journaled* safe fs: memory safety is
/// irrelevant to crash consistency, so the tear manifests identically —
/// which is exactly why this class files under Functional.
fn crash_loss_probe_safe(seed: u64) -> RunOutcome {
    use sk_fs_safe::rsfs::{JournalMode, Rsfs};
    let (ram, tap, dev) = crash_tapped();
    Rsfs::mkfs(&dev, 128, 64).expect("mkfs");
    let fs = Rsfs::mount(dev, JournalMode::None).expect("mount");
    let (base, intervals, v1, v2) = crash_schedule(&fs, &ram, &tap, seed);
    let torn = find_torn_image(&base, &intervals, &v1, &v2, reread_rsfs_none).is_some();
    RunOutcome {
        class_events: 0,
        leaks: 0,
        state_correct: !torn,
        refinement_violations: 0,
    }
}

/// The crash spec as a checkable refinement step: the checker drives the
/// un-journaled fs to version 2, crashes it mid-sync onto the worst
/// enumerated image, recovers, and requires the recovered abstraction to
/// be one of the two synced versions. The torn image is the recorded
/// counterexample. (The journaled rsfs passes this same step — that is
/// `tests/crash_recovery.rs`.)
fn crash_loss_probe_spec_checked(seed: u64) -> RunOutcome {
    use sk_core::spec::{RefinementChecker, Refines};
    use sk_fs_safe::rsfs::{JournalMode, Rsfs};
    use sk_vfs::spec::FsModel;

    struct CrashSys {
        fs: Option<Rsfs>,
    }
    impl Refines<FsModel> for CrashSys {
        fn abstraction(&self) -> FsModel {
            self.fs.as_ref().expect("mounted").abstraction()
        }
    }

    let (ram, tap, dev) = crash_tapped();
    Rsfs::mkfs(&dev, 128, 64).expect("mkfs");
    let fs = Rsfs::mount(dev, JournalMode::None).expect("mount");

    let v1 = vec![seed as u8; 2 * BLOCK_SIZE];
    let v2 = vec![!(seed as u8); 2 * BLOCK_SIZE];
    // Setup (not under test): reach synced version 1, then stage v2.
    let ino = fs.create(fs.root_ino(), "cf").expect("create");
    fs.write(ino, 0, &v1).expect("write v1");
    fs.sync().expect("sync v1");
    let mut sys = CrashSys { fs: Some(fs) };
    let model_v1 = sys.abstraction();
    let base = ram.snapshot();
    tap.intervals.lock().clear();
    sys.fs
        .as_ref()
        .unwrap()
        .write(ino, 0, &v2)
        .expect("write v2");

    let mut chk: RefinementChecker<FsModel> = RefinementChecker::new();
    chk.step(
        &mut sys,
        "crash_during_sync",
        |s| {
            let fs = s.fs.take().expect("mounted");
            fs.sync().expect("sync v2");
            drop(fs);
            let intervals = tap.intervals.lock().clone();
            let img = find_torn_image(&base, &intervals, &v1, &v2, reread_rsfs_none)
                .unwrap_or_else(|| ram.snapshot());
            let ram2 = Arc::new(RamDisk::new(1024));
            ram2.restore(&img).expect("restore");
            let dev2: Arc<dyn BlockDevice> = ram2;
            s.fs = Some(Rsfs::mount(dev2, JournalMode::None).expect("remount"));
        },
        // The crash spec: recovery yields a synced version — the one
        // before the interrupted sync, or the one it was writing.
        |pre, post, _| *post == *pre || *post == model_v1,
    );
    RunOutcome {
        class_events: 0,
        leaks: 0,
        state_correct: chk.is_clean(),
        refinement_violations: chk.violations().len(),
    }
}

/// CWE-330: initial sequence numbers increment by a fixed stride — an
/// off-path attacker who saw one ISS can predict the next. Measured by
/// observing two SYNs on the wire.
fn weak_entropy_probe() -> RunOutcome {
    let wire = Arc::new(Wire::new());
    let clock = Arc::new(SimClock::new());
    let a = LegacyStack::new(LegacyCtx::new(), Side::A, wire.clone(), clock);
    let s1 = a.socket(proto::TCP, 10).expect("socket");
    let s2 = a.socket(proto::TCP, 11).expect("socket");
    a.connect(s1, 80).expect("connect");
    a.connect(s2, 80).expect("connect");
    let syn1 = wire.recv(Side::B).expect("frame").expect("syn1");
    let syn2 = wire.recv(Side::B).expect("frame").expect("syn2");
    // The ISS generator Weyl-steps a counter salted with nothing but
    // public inputs — port and link side. Zero entropy: an off-path
    // attacker who saw one SYN (seq + source port on the wire) computes
    // the next connection's ISS exactly. Memory safety is indifferent
    // to this; only a randomized ISS would close it.
    let port_salt = u32::from(syn2.src_port)
        .wrapping_sub(u32::from(syn1.src_port))
        .wrapping_mul(0x85EB_CA6B);
    let predicted = syn1.seq.wrapping_add(0x9E37_79B9).wrapping_add(port_salt);
    let predictable = syn2.seq == predicted;
    RunOutcome {
        class_events: 0,
        leaks: 0,
        state_correct: !predictable,
        refinement_violations: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_corpus_cwe() {
        for (cwe, _) in sk_cvedb::dataset::CWE_MIX {
            assert!(
                spec_for_cwe(cwe, 0).is_some(),
                "no spec for corpus CWE {cwe}"
            );
        }
    }

    #[test]
    fn catalog_expectations_match_cvedb_mapping_for_memory_classes() {
        for spec in catalog() {
            let mapped = sk_cvedb::categorize_cwe(spec.cwe);
            assert_eq!(
                mapped, spec.expected,
                "{}: catalog says {:?}, cvedb mapping says {:?}",
                spec.name, spec.expected, mapped
            );
        }
    }

    #[test]
    fn cwe_rotation_is_stable() {
        let a = spec_for_cwe("CWE-787", 0).unwrap();
        let b = spec_for_cwe("CWE-787", 1).unwrap();
        let a2 = spec_for_cwe("CWE-787", 0).unwrap();
        assert_eq!(a.name, a2.name);
        assert_ne!(a.name, b.name, "two specs share CWE-787");
    }

    #[test]
    fn baseline_manifests_for_every_spec() {
        for spec in catalog() {
            let out = eval_baseline(&spec, 11);
            assert!(
                out.manifested(),
                "{}: baseline must manifest, got {out:?}",
                spec.name
            );
        }
    }

    #[test]
    fn safe_pipeline_stops_exactly_the_memory_classes() {
        for spec in catalog() {
            let out = eval_safe(&spec, 12);
            match spec.expected {
                Prevention::TypeOwnership => {
                    assert!(
                        !out.manifested(),
                        "{}: safe pipeline must prevent, got {out:?}",
                        spec.name
                    );
                }
                Prevention::Functional => {
                    assert!(
                        out.manifested(),
                        "{}: semantic bug must slip through, got {out:?}",
                        spec.name
                    );
                }
                Prevention::Other => {
                    // CWE-190 is special: rsfs's optional ovf discipline
                    // refuses it; the rest still manifest.
                    if spec.cwe != "CWE-190" {
                        assert!(out.manifested(), "{}: should survive", spec.name);
                    }
                }
            }
        }
    }

    #[test]
    fn spec_pipeline_catches_exactly_the_functional_classes() {
        for spec in catalog() {
            let out = eval_spec_checked(&spec, 13);
            match spec.expected {
                Prevention::Functional => assert!(
                    out.refinement_violations > 0,
                    "{}: checker must produce a counterexample",
                    spec.name
                ),
                _ => assert_eq!(
                    out.refinement_violations, 0,
                    "{}: checker stays clean",
                    spec.name
                ),
            }
        }
    }
}
