//! # sk-faultgen — the empirical prevention study
//!
//! §2 of the paper categorizes 1475 real CVEs by which roadmap step would
//! have prevented them (42% type+ownership / 35% functional / 23% other).
//! That categorization was done by hand over NVD records. This crate turns
//! it into a *falsifiable experiment inside the workspace*: for every CVE
//! in the calibrated corpus (`sk-cvedb`), it instantiates a representative
//! bug of the same CWE class in the legacy modules, then runs the same
//! workload through each roadmap step's implementation and checkers:
//!
//! 1. **Baseline (Step 0)** — the legacy implementation with the bug knob
//!    on. The bug must *manifest*: detector events in the `BugLedger`,
//!    lock-discipline violations, leaked objects, or an observably wrong
//!    result.
//! 2. **Type + ownership safety (Steps 2–3)** — the same workload on the
//!    safe implementation. Memory-safety-class bugs are unrepresentable
//!    there; the study verifies the run is event-free and
//!    model-correct. Semantic bugs (injected via [`semantic`]'s
//!    wrapper, since Safe Rust happily expresses wrong logic) still
//!    manifest — silently.
//! 3. **Functional correctness (Step 4)** — the workload driven through a
//!    `RefinementChecker` against the abstract model. Semantic bugs now
//!    produce counterexamples; the class is caught.
//! 4. **Other** — design-level flaws (info exposure, permission design,
//!    weak entropy, unchecked numeric ranges) that survive all three, the
//!    paper's residual 23%.
//!
//! The output table is compared against the paper's percentages in
//! `bench`'s `tab_prevention_study` binary and in the test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipelines;
pub mod semantic;
pub mod specs;
pub mod study;

pub use specs::{spec_for_cwe, BugSpec, Mechanism};
pub use study::{run_study, StudyReport};
