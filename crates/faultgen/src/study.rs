//! The study driver: reproduce the §2 categorization table empirically.
//!
//! For each catalog spec, the driver runs `instances_per_spec` seeded
//! trials of the full pipeline ladder:
//!
//! 1. baseline must manifest;
//! 2. if the safe (type+ownership) pipeline neither detects nor diverges,
//!    the class is **TypeOwnership**-prevented;
//! 3. otherwise, if refinement checking produces a counterexample, it is
//!    **Functional**-prevented;
//! 4. otherwise it is **Other** — it survived the whole roadmap.
//!
//! CWE-190 gets a documented special case: rsfs's *optional* checked-
//! arithmetic discipline refuses the overflow, but nothing in the type or
//! ownership system mandates that, so the class is still filed under
//! **Other** — matching the paper, which lists numeric errors in the
//! residual 23% while noting they "could be prevented with … mandatory
//! overflow checks". The refusal is reported as that sub-finding.
//!
//! Trial outcomes that contradict a spec's expected category are recorded
//! as mismatches (the study is falsifiable); the final table weights each
//! verified spec by its share of the calibrated 1475-CVE corpus.

use sk_cvedb::{Dataset, Prevention};

use crate::specs::{catalog, eval_baseline, eval_safe, eval_spec_checked, spec_for_cwe, Mechanism};

/// Per-spec verification result.
#[derive(Debug, Clone)]
pub struct SpecResult {
    /// Spec name.
    pub name: &'static str,
    /// CWE represented.
    pub cwe: &'static str,
    /// Category measured by the pipeline ladder.
    pub measured: Prevention,
    /// Category the paper's mapping expects.
    pub expected: Prevention,
    /// Trials run.
    pub trials: usize,
    /// Trials in which the baseline failed to manifest (should be 0).
    pub baseline_misses: usize,
    /// Optional sub-finding note.
    pub note: Option<&'static str>,
}

/// The full study output.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// Per-spec verification.
    pub specs: Vec<SpecResult>,
    /// Corpus-weighted counts.
    pub total: usize,
    /// Count (and below, pct) prevented by type+ownership safety.
    pub type_ownership: usize,
    /// Count additionally prevented by functional correctness.
    pub functional: usize,
    /// Count surviving the roadmap.
    pub other: usize,
    /// Contradictions between measured and expected categories.
    pub mismatches: Vec<String>,
}

impl StudyReport {
    /// Percentages (type+ownership, functional, other).
    pub fn percentages(&self) -> (f64, f64, f64) {
        let pct = |n: usize| (n as f64 * 1000.0 / self.total as f64).round() / 10.0;
        (
            pct(self.type_ownership),
            pct(self.functional),
            pct(self.other),
        )
    }
}

/// Classifies one spec by running the pipeline ladder over several seeds.
fn classify(spec: &crate::specs::BugSpec, instances: usize, base_seed: u64) -> SpecResult {
    let mut baseline_misses = 0;
    let mut safe_prevented = 0;
    let mut spec_caught = 0;
    for i in 0..instances {
        let seed = base_seed + i as u64 * 17 + 11;
        if !eval_baseline(spec, seed).manifested() {
            baseline_misses += 1;
        }
        if !eval_safe(spec, seed).manifested() {
            safe_prevented += 1;
        } else if eval_spec_checked(spec, seed).refinement_violations > 0 {
            spec_caught += 1;
        }
    }
    let majority = instances / 2;
    let (measured, note) = match spec.mechanism {
        Mechanism::NumericWrap => (
            Prevention::Other,
            Some(
                "refused by rsfs's opt-in checked arithmetic (the paper's \
                 'mandatory overflow checks' aside); not mandated by type or \
                 ownership safety, so filed under Other",
            ),
        ),
        _ => {
            if safe_prevented > majority {
                (Prevention::TypeOwnership, None)
            } else if spec_caught > majority {
                (Prevention::Functional, None)
            } else {
                (Prevention::Other, None)
            }
        }
    };
    SpecResult {
        name: spec.name,
        cwe: spec.cwe,
        measured,
        expected: spec.expected,
        trials: instances,
        baseline_misses,
        note,
    }
}

/// Runs the study: verifies every catalog spec with `instances_per_spec`
/// trials, then weights results by the calibrated corpus.
pub fn run_study(instances_per_spec: usize) -> StudyReport {
    let specs: Vec<SpecResult> = catalog()
        .iter()
        .enumerate()
        .map(|(i, s)| classify(s, instances_per_spec.max(1), i as u64 * 1000))
        .collect();

    let mut mismatches = Vec::new();
    for r in &specs {
        if r.measured != r.expected {
            mismatches.push(format!(
                "{}: measured {:?}, expected {:?}",
                r.name, r.measured, r.expected
            ));
        }
        if r.baseline_misses > 0 {
            mismatches.push(format!(
                "{}: baseline failed to manifest in {}/{} trials",
                r.name, r.baseline_misses, r.trials
            ));
        }
    }

    // Weight by the corpus: every record maps to a verified spec; the
    // record inherits that spec's *measured* category.
    let ds = Dataset::build();
    let (mut ty, mut fun, mut other) = (0usize, 0usize, 0usize);
    let mut total = 0usize;
    for (i, rec) in ds.corpus().iter().enumerate() {
        let Some(spec) = spec_for_cwe(rec.cwe, i as u64) else {
            continue;
        };
        let measured = specs
            .iter()
            .find(|r| r.name == spec.name)
            .map(|r| r.measured)
            .unwrap_or(spec.expected);
        match measured {
            Prevention::TypeOwnership => ty += 1,
            Prevention::Functional => fun += 1,
            Prevention::Other => other += 1,
        }
        total += 1;
    }

    StudyReport {
        specs,
        total,
        type_ownership: ty,
        functional: fun,
        other,
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_reproduces_the_papers_split() {
        let report = run_study(3);
        assert!(
            report.mismatches.is_empty(),
            "mismatches: {:?}",
            report.mismatches
        );
        assert_eq!(report.total, 1475, "every corpus record classified");
        let (ty, fun, other) = report.percentages();
        assert!((ty - 42.0).abs() <= 1.5, "type+ownership = {ty}%");
        assert!((fun - 35.0).abs() <= 1.5, "functional = {fun}%");
        assert!((other - 23.0).abs() <= 1.5, "other = {other}%");
    }

    #[test]
    fn every_spec_is_verified_with_trials() {
        let report = run_study(2);
        assert_eq!(report.specs.len(), catalog().len());
        for r in &report.specs {
            assert_eq!(r.trials, 2);
            assert_eq!(r.baseline_misses, 0, "{} baseline missed", r.name);
        }
    }

    #[test]
    fn overflow_subfinding_is_noted() {
        let report = run_study(1);
        let wrap = report
            .specs
            .iter()
            .find(|r| r.name == "wrapping_size_math")
            .unwrap();
        assert!(wrap.note.is_some());
        assert_eq!(wrap.measured, Prevention::Other);
    }
}
