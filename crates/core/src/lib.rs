//! # sk-core — the incremental-safety interface framework
//!
//! This crate is the reproduction of the paper's primary contribution: the
//! interface designs that let Linux components be replaced "one at a time,
//! each with an incrementally-safer implementation" (§3). One module per
//! roadmap step:
//!
//! - [`modularity`] — **Step 1**: modular interfaces. Callers reference an
//!   interface handle, never an implementation; implementations register in
//!   a [`modularity::Registry`] and can be hot-swapped while callers hold
//!   handles (§4.1).
//! - [`typesafe`] — **Step 2**: type safety. Generic tokens replace `void *`
//!   custom data (the `write_begin`/`write_end` pairing becomes a move-only
//!   typed token), and `KResult` replaces `ERR_PTR` punning (§4.2). Checked
//!   arithmetic helpers cover the paper's "mandatory overflow checks".
//! - [`ownership`] — **Step 3**: ownership safety. The paper's three
//!   restricted sharing models as types — [`ownership::Owned`] (model 1:
//!   ownership passes, callee frees), [`ownership::Exclusive`] (model 2:
//!   exclusive loan, callee may mutate but not free or keep),
//!   [`ownership::Shared`] (model 3: shared read-only loan) — plus a
//!   runtime [`ownership::ContractTracker`] that enforces the same
//!   contracts on the *unverified* side of a boundary (§4.3).
//! - [`spec`] — **Step 4**: functional correctness. A modeling language of
//!   pure-functional abstract states, refinement checking of every
//!   operation against its specification relation, exhaustive
//!   crash-schedule enumeration, and axiomatic models of unverified
//!   components (§4.4). Proof search is replaced by exhaustive dynamic
//!   checking on bounded workloads — see DESIGN.md for the substitution
//!   argument.
//! - [`shim`] — the boundary layers the paper requires "between every
//!   incremental boundary": marshalling between safe interfaces and legacy
//!   ops tables, with crossing statistics and optional validation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod modularity;
pub mod ownership;
pub mod roadmap;
pub mod shim;
pub mod spec;
pub mod typesafe;

pub use modularity::{InterfaceHandle, Registry};
pub use ownership::{ContractTracker, Exclusive, Owned, Shared};
pub use roadmap::{Roadmap, SafetyLevel};
pub use spec::{AbstractModel, RefinementChecker, Refines};
pub use typesafe::Token;
