//! Roadmap bookkeeping: which safety level each module currently certifies.
//!
//! §3's summary: "Each step imposes greater restrictions on a module …
//! each change adds immediate benefits to the kernel: that component now
//! has a more robust implementation and can better support growth by
//! resisting regressions." And §4.5 ("Rate of change"): changes must prove
//! they don't *lose* safety that was already won.
//!
//! [`Roadmap`] is that ledger: every interface records the
//! [`SafetyLevel`] its current implementation certifies, with a free-form
//! evidence string (the test suite, checker run, or review that backs the
//! claim). Replacing an implementation **resets the certification to
//! [`SafetyLevel::Modular`]** — a swap proves modularity by construction
//! and nothing more — so regressions are visible by default and the new
//! module must re-earn its levels. The migration example prints this
//! ledger before and after its swap.

use std::collections::HashMap;

use parking_lot::Mutex;
use sk_ksim::errno::{Errno, KResult};

/// The paper's safety spectrum, ordered (Figure 1's vertical axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SafetyLevel {
    /// Step 0: the legacy idiom.
    NoGuarantees,
    /// Step 1: behind a modular interface.
    Modular,
    /// Step 2: no type punning at or behind the interface.
    TypeSafe,
    /// Step 3: the three restricted sharing models, statically enforced.
    OwnershipSafe,
    /// Step 4: checked against a functional specification.
    FunctionallyVerified,
}

impl SafetyLevel {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SafetyLevel::NoGuarantees => "no guarantees",
            SafetyLevel::Modular => "modular",
            SafetyLevel::TypeSafe => "type safe",
            SafetyLevel::OwnershipSafe => "ownership safe",
            SafetyLevel::FunctionallyVerified => "functionally verified",
        }
    }
}

/// One certification step a module has earned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certification {
    /// The level certified.
    pub level: SafetyLevel,
    /// What backs the claim (a checker run, a suite, a review).
    pub evidence: String,
    /// Which implementation the certification applies to.
    pub implementation: String,
}

#[derive(Default)]
struct Entry {
    implementation: String,
    certs: Vec<Certification>,
}

/// The per-interface safety ledger.
#[derive(Default)]
pub struct Roadmap {
    entries: Mutex<HashMap<&'static str, Entry>>,
}

impl Roadmap {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Roadmap::default()
    }

    /// Starts tracking `interface`, served by `implementation`, at
    /// [`SafetyLevel::NoGuarantees`].
    pub fn track(&self, interface: &'static str, implementation: &str) {
        self.entries.lock().insert(
            interface,
            Entry {
                implementation: implementation.to_string(),
                certs: Vec::new(),
            },
        );
    }

    /// Records that the *current* implementation of `interface` certifies
    /// `level`, with `evidence`. Levels may be earned in any order; the
    /// effective level is the highest contiguous chain from
    /// [`SafetyLevel::Modular`] upward.
    pub fn certify(
        &self,
        interface: &'static str,
        level: SafetyLevel,
        evidence: impl Into<String>,
    ) -> KResult<()> {
        let mut entries = self.entries.lock();
        let entry = entries.get_mut(interface).ok_or(Errno::ENODEV)?;
        let implementation = entry.implementation.clone();
        entry.certs.retain(|c| c.level != level);
        entry.certs.push(Certification {
            level,
            evidence: evidence.into(),
            implementation,
        });
        Ok(())
    }

    /// Registers a replacement: the new implementation keeps only
    /// [`SafetyLevel::Modular`] (the swap itself is the evidence) and must
    /// re-earn everything above it.
    pub fn replaced(&self, interface: &'static str, new_implementation: &str) -> KResult<()> {
        let mut entries = self.entries.lock();
        let entry = entries.get_mut(interface).ok_or(Errno::ENODEV)?;
        entry.implementation = new_implementation.to_string();
        entry.certs = vec![Certification {
            level: SafetyLevel::Modular,
            evidence: "hot-swapped through the registry".to_string(),
            implementation: new_implementation.to_string(),
        }];
        Ok(())
    }

    /// The effective level: the highest level such that every level from
    /// [`SafetyLevel::Modular`] up to it is certified for the current
    /// implementation.
    pub fn level_of(&self, interface: &str) -> SafetyLevel {
        let entries = self.entries.lock();
        let Some(entry) = entries.get(interface) else {
            return SafetyLevel::NoGuarantees;
        };
        let has = |l: SafetyLevel| entry.certs.iter().any(|c| c.level == l);
        let chain = [
            SafetyLevel::Modular,
            SafetyLevel::TypeSafe,
            SafetyLevel::OwnershipSafe,
            SafetyLevel::FunctionallyVerified,
        ];
        let mut effective = SafetyLevel::NoGuarantees;
        for l in chain {
            if has(l) {
                effective = l;
            } else {
                break;
            }
        }
        effective
    }

    /// A printable summary, sorted by interface name.
    pub fn summary(&self) -> Vec<(String, String, SafetyLevel)> {
        let entries = self.entries.lock();
        let mut rows: Vec<(String, String, SafetyLevel)> = entries
            .iter()
            .map(|(iface, e)| {
                (iface.to_string(), e.implementation.clone(), {
                    let has = |l: SafetyLevel| e.certs.iter().any(|c| c.level == l);
                    let chain = [
                        SafetyLevel::Modular,
                        SafetyLevel::TypeSafe,
                        SafetyLevel::OwnershipSafe,
                        SafetyLevel::FunctionallyVerified,
                    ];
                    let mut eff = SafetyLevel::NoGuarantees;
                    for l in chain {
                        if has(l) {
                            eff = l;
                        } else {
                            break;
                        }
                    }
                    eff
                })
            })
            .collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(SafetyLevel::NoGuarantees < SafetyLevel::Modular);
        assert!(SafetyLevel::Modular < SafetyLevel::TypeSafe);
        assert!(SafetyLevel::TypeSafe < SafetyLevel::OwnershipSafe);
        assert!(SafetyLevel::OwnershipSafe < SafetyLevel::FunctionallyVerified);
    }

    #[test]
    fn certification_chain_must_be_contiguous() {
        let r = Roadmap::new();
        r.track("vfs.filesystem", "rsfs");
        assert_eq!(r.level_of("vfs.filesystem"), SafetyLevel::NoGuarantees);
        r.certify("vfs.filesystem", SafetyLevel::Modular, "registry swap test")
            .unwrap();
        // Skipping type safety: ownership cert alone doesn't raise the
        // effective level past the gap.
        r.certify(
            "vfs.filesystem",
            SafetyLevel::OwnershipSafe,
            "forbid(unsafe)",
        )
        .unwrap();
        assert_eq!(r.level_of("vfs.filesystem"), SafetyLevel::Modular);
        r.certify(
            "vfs.filesystem",
            SafetyLevel::TypeSafe,
            "no void ptr in iface",
        )
        .unwrap();
        assert_eq!(r.level_of("vfs.filesystem"), SafetyLevel::OwnershipSafe);
        r.certify(
            "vfs.filesystem",
            SafetyLevel::FunctionallyVerified,
            "refinement suite + crash checker",
        )
        .unwrap();
        assert_eq!(
            r.level_of("vfs.filesystem"),
            SafetyLevel::FunctionallyVerified
        );
    }

    #[test]
    fn replacement_resets_to_modular() {
        let r = Roadmap::new();
        r.track("vfs.filesystem", "cext4");
        r.certify("vfs.filesystem", SafetyLevel::Modular, "adapter")
            .unwrap();
        r.certify("vfs.filesystem", SafetyLevel::TypeSafe, "claimed")
            .unwrap();
        r.replaced("vfs.filesystem", "rsfs").unwrap();
        assert_eq!(r.level_of("vfs.filesystem"), SafetyLevel::Modular);
        let rows = r.summary();
        assert_eq!(rows[0].1, "rsfs");
    }

    #[test]
    fn unknown_interface_errors() {
        let r = Roadmap::new();
        assert_eq!(
            r.certify("nope", SafetyLevel::Modular, "x"),
            Err(Errno::ENODEV)
        );
        assert_eq!(r.replaced("nope", "y"), Err(Errno::ENODEV));
        assert_eq!(r.level_of("nope"), SafetyLevel::NoGuarantees);
    }

    #[test]
    fn recertifying_a_level_replaces_evidence() {
        let r = Roadmap::new();
        r.track("net.tcp", "tcp-v1");
        r.certify("net.tcp", SafetyLevel::Modular, "old evidence")
            .unwrap();
        r.certify("net.tcp", SafetyLevel::Modular, "new evidence")
            .unwrap();
        assert_eq!(r.level_of("net.tcp"), SafetyLevel::Modular);
    }
}
