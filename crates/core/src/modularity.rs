//! Step 1 — modular interfaces (§4.1).
//!
//! "Callers of any module must only reference the modular interface and
//! cannot directly depend on any specific implementation. … New
//! implementations can be dropped in without changing other parts of the
//! kernel."
//!
//! The [`Registry`] maps interface names to slots. A consumer calls
//! [`Registry::subscribe`] once and holds an [`InterfaceHandle`]; every use
//! reads the slot's *current* implementation, so [`Registry::replace`] (the
//! incremental-replacement operation the whole paper is about) takes effect
//! immediately for all existing callers — this is what
//! `examples/incremental_migration.rs` demonstrates with a live workload.
//!
//! The handle's indirection (one `RwLock` read + one `Arc` clone per
//! dispatch) is exactly the "performance cost of modular interfaces" the
//! paper flags as a research question; `benches/interface_overhead.rs`
//! measures it against a direct call.

use std::any::{type_name, Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use sk_ksim::errno::{Errno, KResult};

/// One registered interface slot.
struct Slot {
    /// `Arc<SlotCell<I>>` behind `Any`, keyed by the interface type.
    cell: Box<dyn Any + Send + Sync>,
    /// Untyped metadata view of the same cell, for [`Registry::list`].
    meta: Arc<dyn SlotMeta>,
    /// TypeId of `I` (the `dyn Trait` type), for mismatch diagnostics.
    iface_type: TypeId,
    iface_type_name: &'static str,
}

struct SlotCell<I: ?Sized> {
    current: RwLock<Arc<I>>,
    swaps: AtomicU64,
    impl_name: RwLock<&'static str>,
}

/// Descriptive entry returned by [`Registry::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Interface name, e.g. `"vfs.filesystem"`.
    pub interface: &'static str,
    /// Rust type name of the interface trait object.
    pub iface_type: &'static str,
    /// Name of the currently installed implementation.
    pub implementation: &'static str,
    /// How many times the implementation has been replaced.
    pub swaps: u64,
}

/// The module registry: names → interface slots.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use sk_core::modularity::Registry;
///
/// trait Greeter: Send + Sync { fn hi(&self) -> &'static str; }
/// struct En; impl Greeter for En { fn hi(&self) -> &'static str { "hello" } }
/// struct Fr; impl Greeter for Fr { fn hi(&self) -> &'static str { "bonjour" } }
///
/// let reg = Registry::new();
/// reg.register::<dyn Greeter>("greeter", "en", Arc::new(En)).unwrap();
/// let handle = reg.subscribe::<dyn Greeter>("greeter").unwrap();
/// assert_eq!(handle.get().hi(), "hello");
///
/// // The incremental replacement: existing handles see the new module.
/// reg.replace::<dyn Greeter>("greeter", "fr", Arc::new(Fr)).unwrap();
/// assert_eq!(handle.get().hi(), "bonjour");
/// ```
#[derive(Default)]
pub struct Registry {
    slots: Mutex<HashMap<&'static str, Slot>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers `implementation` under `interface`.
    ///
    /// Fails with `EEXIST` if the name is taken — replacement must be an
    /// explicit [`Registry::replace`], never an accidental shadow.
    pub fn register<I: ?Sized + Send + Sync + 'static>(
        &self,
        interface: &'static str,
        impl_name: &'static str,
        implementation: Arc<I>,
    ) -> KResult<()> {
        let mut slots = self.slots.lock();
        if slots.contains_key(interface) {
            return Err(Errno::EEXIST);
        }
        let cell: Arc<SlotCell<I>> = Arc::new(SlotCell {
            current: RwLock::new(implementation),
            swaps: AtomicU64::new(0),
            impl_name: RwLock::new(impl_name),
        });
        slots.insert(
            interface,
            Slot {
                cell: Box::new(Arc::clone(&cell)),
                meta: cell,
                iface_type: TypeId::of::<Arc<SlotCell<I>>>(),
                iface_type_name: type_name::<I>(),
            },
        );
        Ok(())
    }

    /// Subscribes to an interface, returning a handle that always dispatches
    /// to the slot's current implementation.
    ///
    /// `ENODEV` if the name is unknown; `EPROTO` ("protocol error") if the
    /// name exists but was registered under a different interface type —
    /// the registry-level analogue of a type-confused `void *`.
    pub fn subscribe<I: ?Sized + Send + Sync + 'static>(
        &self,
        interface: &'static str,
    ) -> KResult<InterfaceHandle<I>> {
        let slots = self.slots.lock();
        let slot = slots.get(interface).ok_or(Errno::ENODEV)?;
        if slot.iface_type != TypeId::of::<Arc<SlotCell<I>>>() {
            return Err(Errno::EPROTO);
        }
        let cell = slot
            .cell
            .downcast_ref::<Arc<SlotCell<I>>>()
            .expect("TypeId verified above");
        Ok(InterfaceHandle {
            interface,
            cell: Arc::clone(cell),
        })
    }

    /// Hot-swaps the implementation behind `interface`, returning the old
    /// one. Existing handles see the new implementation on their next
    /// dispatch.
    pub fn replace<I: ?Sized + Send + Sync + 'static>(
        &self,
        interface: &'static str,
        impl_name: &'static str,
        implementation: Arc<I>,
    ) -> KResult<Arc<I>> {
        let slots = self.slots.lock();
        let slot = slots.get(interface).ok_or(Errno::ENODEV)?;
        if slot.iface_type != TypeId::of::<Arc<SlotCell<I>>>() {
            return Err(Errno::EPROTO);
        }
        let cell = slot
            .cell
            .downcast_ref::<Arc<SlotCell<I>>>()
            .expect("TypeId verified above");
        let old = {
            let mut cur = cell.current.write();
            std::mem::replace(&mut *cur, implementation)
        };
        *cell.impl_name.write() = impl_name;
        cell.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(old)
    }

    /// Lists every registered interface.
    pub fn list(&self) -> Vec<RegistryEntry> {
        let slots = self.slots.lock();
        let mut entries: Vec<RegistryEntry> = slots
            .iter()
            .map(|(name, slot)| RegistryEntry {
                interface: name,
                iface_type: slot.iface_type_name,
                implementation: slot.meta.impl_name(),
                swaps: slot.meta.swaps(),
            })
            .collect();
        entries.sort_by_key(|e| e.interface);
        entries
    }
}

/// Untyped view of a slot's metadata.
trait SlotMeta: Send + Sync {
    fn impl_name(&self) -> &'static str;
    fn swaps(&self) -> u64;
}

impl<I: ?Sized + Send + Sync> SlotMeta for SlotCell<I> {
    fn impl_name(&self) -> &'static str {
        *self.impl_name.read()
    }
    fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

/// A consumer's handle to an interface: the only way modules reference each
/// other under Step 1.
pub struct InterfaceHandle<I: ?Sized> {
    interface: &'static str,
    cell: Arc<SlotCell<I>>,
}

impl<I: ?Sized> Clone for InterfaceHandle<I> {
    fn clone(&self) -> Self {
        InterfaceHandle {
            interface: self.interface,
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<I: ?Sized> InterfaceHandle<I> {
    /// Returns the current implementation for one dispatch.
    ///
    /// Callers must not cache the returned `Arc` across operations if they
    /// want replacement to take effect (the examples re-`get()` per call).
    pub fn get(&self) -> Arc<I> {
        Arc::clone(&self.cell.current.read())
    }

    /// The interface name this handle is bound to.
    pub fn interface(&self) -> &'static str {
        self.interface
    }

    /// Number of replacements that have occurred on this slot.
    pub fn swap_count(&self) -> u64 {
        self.cell.swaps.load(Ordering::Relaxed)
    }

    /// Name of the implementation currently installed.
    pub fn impl_name(&self) -> &'static str {
        *self.cell.impl_name.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Greeter: Send + Sync {
        fn greet(&self) -> String;
    }

    struct English;
    impl Greeter for English {
        fn greet(&self) -> String {
            "hello".into()
        }
    }

    struct French;
    impl Greeter for French {
        fn greet(&self) -> String {
            "bonjour".into()
        }
    }

    #[test]
    fn register_subscribe_dispatch() {
        let reg = Registry::new();
        reg.register::<dyn Greeter>("greeter", "english", Arc::new(English))
            .unwrap();
        let h = reg.subscribe::<dyn Greeter>("greeter").unwrap();
        assert_eq!(h.get().greet(), "hello");
        assert_eq!(h.interface(), "greeter");
        assert_eq!(h.impl_name(), "english");
    }

    #[test]
    fn duplicate_registration_rejected() {
        let reg = Registry::new();
        reg.register::<dyn Greeter>("greeter", "english", Arc::new(English))
            .unwrap();
        assert_eq!(
            reg.register::<dyn Greeter>("greeter", "french", Arc::new(French)),
            Err(Errno::EEXIST)
        );
    }

    #[test]
    fn unknown_interface_is_enodev() {
        let reg = Registry::new();
        assert!(matches!(
            reg.subscribe::<dyn Greeter>("nope"),
            Err(Errno::ENODEV)
        ));
    }

    #[test]
    fn hot_swap_visible_through_existing_handles() {
        let reg = Registry::new();
        reg.register::<dyn Greeter>("greeter", "english", Arc::new(English))
            .unwrap();
        let h = reg.subscribe::<dyn Greeter>("greeter").unwrap();
        assert_eq!(h.get().greet(), "hello");
        let old = reg
            .replace::<dyn Greeter>("greeter", "french", Arc::new(French))
            .unwrap();
        assert_eq!(old.greet(), "hello", "old implementation returned");
        assert_eq!(h.get().greet(), "bonjour", "handle sees the replacement");
        assert_eq!(h.swap_count(), 1);
        assert_eq!(h.impl_name(), "french");
    }

    #[test]
    fn type_mismatch_is_eproto() {
        trait Other: Send + Sync {}
        let reg = Registry::new();
        reg.register::<dyn Greeter>("greeter", "english", Arc::new(English))
            .unwrap();
        assert!(matches!(
            reg.subscribe::<dyn Other>("greeter"),
            Err(Errno::EPROTO)
        ));
        struct O;
        impl Other for O {}
        assert!(matches!(
            reg.replace::<dyn Other>("greeter", "o", Arc::new(O)),
            Err(Errno::EPROTO)
        ));
    }

    #[test]
    fn handles_clone_and_share_the_slot() {
        let reg = Registry::new();
        reg.register::<dyn Greeter>("greeter", "english", Arc::new(English))
            .unwrap();
        let h1 = reg.subscribe::<dyn Greeter>("greeter").unwrap();
        let h2 = h1.clone();
        reg.replace::<dyn Greeter>("greeter", "french", Arc::new(French))
            .unwrap();
        assert_eq!(h1.get().greet(), "bonjour");
        assert_eq!(h2.get().greet(), "bonjour");
    }

    #[test]
    fn list_shows_registered_interfaces() {
        let reg = Registry::new();
        reg.register::<dyn Greeter>("b.greeter", "english", Arc::new(English))
            .unwrap();
        reg.register::<dyn Greeter>("a.greeter", "french", Arc::new(French))
            .unwrap();
        let entries = reg.list();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].interface, "a.greeter");
        assert!(entries[0].iface_type.contains("Greeter"));
    }
}
