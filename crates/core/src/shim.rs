//! Boundary shims between safe and unverified worlds.
//!
//! "A shim layer is then needed to bridge the communication gap between the
//! verified modules and unverified components. Similarly, this type of shim
//! layer is needed between every incremental boundary." (§4.4)
//!
//! A [`Boundary`] instruments one such seam: it counts crossings (the
//! quantity `benches/shim_overhead.rs` prices), optionally validates
//! ownership contracts on each crossing via a
//! [`ContractTracker`], and provides the
//! error-representation marshalling between `KResult` (safe side) and
//! `ErrPtr` words (legacy side). Concrete interface-by-interface shims —
//! e.g. exposing a safe file system through the legacy VFS ops table —
//! live next to those interfaces in `sk-vfs::shim`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sk_ksim::errno::{Errno, KResult};
use sk_legacy::{ErrPtr, VoidPtr};

use crate::ownership::ContractTracker;

/// Counters for one boundary.
#[derive(Debug, Default)]
pub struct BoundaryStats {
    crossings: AtomicU64,
    validation_failures: AtomicU64,
}

impl BoundaryStats {
    /// Number of times the boundary was crossed.
    pub fn crossings(&self) -> u64 {
        self.crossings.load(Ordering::Relaxed)
    }

    /// Number of crossings on which contract validation failed.
    pub fn validation_failures(&self) -> u64 {
        self.validation_failures.load(Ordering::Relaxed)
    }
}

/// One verified/unverified (or safe/legacy) seam.
pub struct Boundary {
    name: &'static str,
    stats: BoundaryStats,
    tracker: Option<Arc<ContractTracker>>,
}

impl Boundary {
    /// Creates an uninstrumented boundary (counting only).
    pub fn new(name: &'static str) -> Self {
        Boundary {
            name,
            stats: BoundaryStats::default(),
            tracker: None,
        }
    }

    /// Creates a boundary that validates ownership contracts on crossing.
    pub fn with_tracker(name: &'static str, tracker: Arc<ContractTracker>) -> Self {
        Boundary {
            name,
            stats: BoundaryStats::default(),
            tracker: Some(tracker),
        }
    }

    /// The boundary's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Counter access.
    pub fn stats(&self) -> &BoundaryStats {
        &self.stats
    }

    /// The tracker, when contract validation is enabled.
    pub fn tracker(&self) -> Option<&Arc<ContractTracker>> {
        self.tracker.as_ref()
    }

    /// Executes `f` as one boundary crossing.
    pub fn cross<R>(&self, f: impl FnOnce() -> R) -> R {
        self.stats.crossings.fetch_add(1, Ordering::Relaxed);
        f()
    }

    /// Executes `f` as one crossing whose contract precondition is
    /// `precondition` (evaluated against the tracker when present). When
    /// the precondition fails, the crossing is refused with `EACCES` —
    /// the shim's job is exactly to stop undisciplined crossings.
    pub fn cross_checked<R>(
        &self,
        precondition: impl FnOnce(&ContractTracker) -> bool,
        f: impl FnOnce() -> KResult<R>,
    ) -> KResult<R> {
        self.stats.crossings.fetch_add(1, Ordering::Relaxed);
        if let Some(tracker) = &self.tracker {
            if !precondition(tracker) {
                self.stats
                    .validation_failures
                    .fetch_add(1, Ordering::Relaxed);
                return Err(Errno::EACCES);
            }
        }
        f()
    }
}

/// Decodes a legacy `ErrPtr` word into the safe error representation.
pub fn errptr_to_kresult(e: ErrPtr) -> KResult<VoidPtr> {
    e.check()
}

/// Encodes a safe result into the legacy `ErrPtr` representation.
pub fn kresult_to_errptr(r: KResult<VoidPtr>) -> ErrPtr {
    match r {
        Ok(p) => ErrPtr::ok(p),
        Err(e) => ErrPtr::err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ownership::Access;

    #[test]
    fn crossings_counted() {
        let b = Boundary::new("vfs<->fs");
        assert_eq!(b.cross(|| 2 + 2), 4);
        b.cross(|| ());
        assert_eq!(b.stats().crossings(), 2);
        assert_eq!(b.name(), "vfs<->fs");
    }

    #[test]
    fn checked_crossing_refuses_on_contract_failure() {
        let tracker = Arc::new(ContractTracker::new());
        let obj = tracker.register("vfs");
        tracker.lend_exclusive(obj, "vfs", "fs");
        let b = Boundary::with_tracker("vfs<->fs", Arc::clone(&tracker));
        // The *caller* (vfs) trying to read during an exclusive loan: the
        // precondition fails and the crossing is refused.
        let r: KResult<()> = b.cross_checked(|t| t.access(obj, "vfs", Access::Read), || Ok(()));
        assert_eq!(r, Err(Errno::EACCES));
        assert_eq!(b.stats().validation_failures(), 1);
        // The borrower passes.
        let r: KResult<u8> = b.cross_checked(|t| t.access(obj, "fs", Access::Write), || Ok(1));
        assert_eq!(r, Ok(1));
        assert_eq!(b.stats().crossings(), 2);
    }

    #[test]
    fn untracked_boundary_never_refuses() {
        let b = Boundary::new("plain");
        let r: KResult<u8> = b.cross_checked(|_| false, || Ok(1));
        assert_eq!(r, Ok(1), "no tracker, no validation");
    }

    #[test]
    fn error_marshalling_roundtrips() {
        let ok = kresult_to_errptr(Ok(VoidPtr::NULL));
        assert_eq!(errptr_to_kresult(ok), Ok(VoidPtr::NULL));
        let err = kresult_to_errptr(Err(Errno::ENOENT));
        assert_eq!(errptr_to_kresult(err), Err(Errno::ENOENT));
    }
}
