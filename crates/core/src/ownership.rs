//! Step 3 — ownership safety (§4.3).
//!
//! The paper proposes "interfaces that are semantically equivalent to
//! message passing interfaces but share memory for performance reasons",
//! with three sharing models:
//!
//! 1. **Ownership passes** — the caller can no longer access the memory;
//!    the callee must free it. In Rust this is passing [`Owned<T>`] by
//!    value.
//! 2. **Exclusive rights pass** — the caller cannot access the memory until
//!    the call returns; the callee may mutate but not free it, and cannot
//!    keep it after returning. This is [`Exclusive<'_, T>`], a `&mut`
//!    loan with the "free" capability removed.
//! 3. **Non-exclusive rights pass** — everyone may read, nobody may mutate
//!    or free until the call returns. This is [`Shared<'_, T>`].
//!
//! For *safe* callees the Rust borrow checker enforces all three statically
//! — the wrappers exist to name the models at interface boundaries and to
//! keep the two sides of a boundary honest about which model is in force.
//! For the **unverified** side of a boundary (§4.4's axiomatic-model
//! setting), the same contracts are enforced dynamically by a
//! [`ContractTracker`]: the shim registers each object crossing the
//! boundary, and every access/free by the legacy side is validated against
//! the object's current rights state. Violations are recorded (optionally
//! into a `BugLedger`) rather than silently corrupting state.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use parking_lot::Mutex;
use sk_legacy::{BugClass, BugLedger};

/// Model 1: owned passage. Receiving an `Owned<T>` transfers the object and
/// the obligation to free it (dropping is freeing).
///
/// # Examples
///
/// The three sharing models, as the borrow checker sees them:
///
/// ```
/// use sk_core::ownership::{Exclusive, Owned, Shared};
///
/// fn consume(buf: Owned<Vec<u8>>) -> usize { buf.len() } // model 1: callee frees
/// fn mutate(mut buf: Exclusive<'_, Vec<u8>>) { buf.push(0); } // model 2
/// fn observe(buf: Shared<'_, Vec<u8>>) -> usize { buf.len() } // model 3
///
/// let mut owned = Owned::new(vec![1, 2, 3]);
/// mutate(owned.lend_exclusive());
/// assert_eq!(observe(owned.lend_shared()), 4);
/// assert_eq!(consume(owned), 4);
/// // `owned` is gone: the caller "can no longer access the memory".
/// ```
#[derive(Debug)]
pub struct Owned<T> {
    value: T,
}

impl<T> Owned<T> {
    /// Takes ownership of `value`.
    pub fn new(value: T) -> Self {
        Owned { value }
    }

    /// Consumes the wrapper, yielding the object (the receiver "frees" it
    /// by letting it drop, or re-wraps it to pass it on).
    pub fn into_inner(self) -> T {
        self.value
    }

    /// Loans the object exclusively (model 2) without giving it up.
    pub fn lend_exclusive(&mut self) -> Exclusive<'_, T> {
        Exclusive {
            value: &mut self.value,
        }
    }

    /// Loans the object shared (model 3) without giving it up.
    pub fn lend_shared(&self) -> Shared<'_, T> {
        Shared { value: &self.value }
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Model 2: an exclusive loan. The callee may read and mutate, but there is
/// no way to free the object or keep the loan beyond the call (the lifetime
/// sees to both).
#[derive(Debug)]
pub struct Exclusive<'a, T> {
    value: &'a mut T,
}

impl<'a, T> Exclusive<'a, T> {
    /// Creates an exclusive loan of `value`.
    pub fn new(value: &'a mut T) -> Self {
        Exclusive { value }
    }

    /// Reborrows, e.g. to pass the loan one level further down.
    pub fn reborrow(&mut self) -> Exclusive<'_, T> {
        Exclusive { value: self.value }
    }
}

impl<T> Deref for Exclusive<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
    }
}

impl<T> DerefMut for Exclusive<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value
    }
}

/// Model 3: a shared read-only loan. `Copy`, so it can fan out to any number
/// of readers; no mutation or free is expressible.
#[derive(Debug)]
pub struct Shared<'a, T> {
    value: &'a T,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<'a, T> Shared<'a, T> {
    /// Creates a shared loan of `value`.
    pub fn new(value: &'a T) -> Self {
        Shared { value }
    }
}

impl<T> Deref for Shared<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
    }
}

/// Identity of a boundary-crossing object in a [`ContractTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(u64);

/// A module name, as known to the tracker.
pub type ModuleName = &'static str;

/// The rights state of a tracked object.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Rights {
    /// Owned by one module, not currently lent.
    Owned { owner: ModuleName },
    /// Exclusively lent by `owner` to `borrower`.
    LentExclusive {
        owner: ModuleName,
        borrower: ModuleName,
    },
    /// Shared read-only with `readers` (owner retains read rights too).
    LentShared {
        owner: ModuleName,
        readers: Vec<ModuleName>,
    },
    /// Freed; any further use is a violation.
    Freed,
}

/// The kind of access a module attempts on a tracked object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read the object.
    Read,
    /// Mutate the object.
    Write,
}

/// A detected ownership-contract violation at an unverified boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractViolation {
    /// The object involved.
    pub obj: ObjId,
    /// The offending module.
    pub module: ModuleName,
    /// Human-readable description of the violated contract.
    pub what: String,
}

#[derive(Default)]
struct TrackerInner {
    next: u64,
    objects: HashMap<ObjId, Rights>,
    violations: Vec<ContractViolation>,
}

/// Dynamic enforcement of the three sharing models for unverified modules.
///
/// The safe side of a boundary gets its contracts checked by the compiler;
/// the unverified side gets this tracker, driven by the shim layer.
#[derive(Default)]
pub struct ContractTracker {
    inner: Mutex<TrackerInner>,
    ledger: Option<Arc<BugLedger>>,
}

impl ContractTracker {
    /// Creates a tracker that keeps violations internally.
    pub fn new() -> Self {
        ContractTracker::default()
    }

    /// Creates a tracker that additionally mirrors violations into a
    /// [`BugLedger`] (as `DataRace`/`UseAfterFree`-class events), so the
    /// fault study can count them alongside legacy detections.
    pub fn with_ledger(ledger: Arc<BugLedger>) -> Self {
        ContractTracker {
            inner: Mutex::new(TrackerInner::default()),
            ledger: Some(ledger),
        }
    }

    fn violate(&self, inner: &mut TrackerInner, obj: ObjId, module: ModuleName, what: String) {
        if let Some(ledger) = &self.ledger {
            let class = if what.contains("double free") {
                BugClass::DoubleFree
            } else if what.contains("freed") || what.contains("Freed") {
                BugClass::UseAfterFree
            } else {
                BugClass::DataRace
            };
            ledger.record(class, "contract_tracker", what.clone());
        }
        inner
            .violations
            .push(ContractViolation { obj, module, what });
    }

    /// Registers a new object owned by `owner`.
    pub fn register(&self, owner: ModuleName) -> ObjId {
        let mut inner = self.inner.lock();
        inner.next += 1;
        let id = ObjId(inner.next);
        inner.objects.insert(id, Rights::Owned { owner });
        id
    }

    /// Model 1: transfers ownership from `from` to `to`.
    pub fn pass_ownership(&self, obj: ObjId, from: ModuleName, to: ModuleName) -> bool {
        let mut inner = self.inner.lock();
        match inner.objects.get(&obj).cloned() {
            Some(Rights::Owned { owner }) if owner == from => {
                inner.objects.insert(obj, Rights::Owned { owner: to });
                true
            }
            Some(Rights::Freed) => {
                self.violate(
                    &mut inner,
                    obj,
                    from,
                    "passed ownership of freed object".into(),
                );
                false
            }
            Some(state) => {
                self.violate(
                    &mut inner,
                    obj,
                    from,
                    format!("pass_ownership without owning it (state: {state:?})"),
                );
                false
            }
            None => {
                self.violate(
                    &mut inner,
                    obj,
                    from,
                    "pass_ownership of unknown object".into(),
                );
                false
            }
        }
    }

    /// Model 2: `owner` lends the object exclusively to `borrower`.
    pub fn lend_exclusive(&self, obj: ObjId, owner: ModuleName, borrower: ModuleName) -> bool {
        let mut inner = self.inner.lock();
        match inner.objects.get(&obj).cloned() {
            Some(Rights::Owned { owner: o }) if o == owner => {
                inner
                    .objects
                    .insert(obj, Rights::LentExclusive { owner, borrower });
                true
            }
            Some(state) => {
                self.violate(
                    &mut inner,
                    obj,
                    owner,
                    format!("lend_exclusive while not sole owner (state: {state:?})"),
                );
                false
            }
            None => {
                self.violate(
                    &mut inner,
                    obj,
                    owner,
                    "lend_exclusive of unknown object".into(),
                );
                false
            }
        }
    }

    /// Model 2: the borrower returns the exclusive loan.
    pub fn return_exclusive(&self, obj: ObjId, borrower: ModuleName) -> bool {
        let mut inner = self.inner.lock();
        match inner.objects.get(&obj).cloned() {
            Some(Rights::LentExclusive { owner, borrower: b }) if b == borrower => {
                inner.objects.insert(obj, Rights::Owned { owner });
                true
            }
            Some(state) => {
                self.violate(
                    &mut inner,
                    obj,
                    borrower,
                    format!("return_exclusive without holding the loan (state: {state:?})"),
                );
                false
            }
            None => {
                self.violate(
                    &mut inner,
                    obj,
                    borrower,
                    "return_exclusive of unknown object".into(),
                );
                false
            }
        }
    }

    /// Model 3: `owner` opens the object for shared reading by `reader`.
    /// Can be called repeatedly to add readers.
    pub fn lend_shared(&self, obj: ObjId, owner: ModuleName, reader: ModuleName) -> bool {
        let mut inner = self.inner.lock();
        match inner.objects.get(&obj).cloned() {
            Some(Rights::Owned { owner: o }) if o == owner => {
                inner.objects.insert(
                    obj,
                    Rights::LentShared {
                        owner,
                        readers: vec![reader],
                    },
                );
                true
            }
            Some(Rights::LentShared {
                owner: o,
                mut readers,
            }) if o == owner => {
                readers.push(reader);
                inner
                    .objects
                    .insert(obj, Rights::LentShared { owner: o, readers });
                true
            }
            Some(state) => {
                self.violate(
                    &mut inner,
                    obj,
                    owner,
                    format!("lend_shared while exclusively lent or freed (state: {state:?})"),
                );
                false
            }
            None => {
                self.violate(
                    &mut inner,
                    obj,
                    owner,
                    "lend_shared of unknown object".into(),
                );
                false
            }
        }
    }

    /// Model 3: `reader` drops out of the shared loan; when the last reader
    /// leaves, full rights return to the owner.
    pub fn return_shared(&self, obj: ObjId, reader: ModuleName) -> bool {
        let mut inner = self.inner.lock();
        match inner.objects.get(&obj).cloned() {
            Some(Rights::LentShared { owner, mut readers }) => {
                if let Some(pos) = readers.iter().position(|&r| r == reader) {
                    readers.remove(pos);
                    let next = if readers.is_empty() {
                        Rights::Owned { owner }
                    } else {
                        Rights::LentShared { owner, readers }
                    };
                    inner.objects.insert(obj, next);
                    true
                } else {
                    self.violate(
                        &mut inner,
                        obj,
                        reader,
                        "return_shared without being a reader".into(),
                    );
                    false
                }
            }
            Some(state) => {
                self.violate(
                    &mut inner,
                    obj,
                    reader,
                    format!("return_shared but object not shared (state: {state:?})"),
                );
                false
            }
            None => {
                self.violate(
                    &mut inner,
                    obj,
                    reader,
                    "return_shared of unknown object".into(),
                );
                false
            }
        }
    }

    /// Validates an access by `module` against the object's current rights.
    pub fn access(&self, obj: ObjId, module: ModuleName, kind: Access) -> bool {
        let mut inner = self.inner.lock();
        let ok = match inner.objects.get(&obj) {
            Some(Rights::Owned { owner }) => *owner == module,
            Some(Rights::LentExclusive { borrower, .. }) => {
                // While exclusively lent, only the borrower may touch it —
                // this is the "caller cannot access the memory until the
                // call returns" clause.
                *borrower == module
            }
            Some(Rights::LentShared { owner, readers }) => {
                // Reads allowed for owner and readers; writes for nobody.
                kind == Access::Read && (*owner == module || readers.contains(&module))
            }
            Some(Rights::Freed) => false,
            None => false,
        };
        if !ok {
            let state = inner.objects.get(&obj).cloned();
            self.violate(
                &mut inner,
                obj,
                module,
                format!("illegal {kind:?} access (state: {state:?})"),
            );
        }
        ok
    }

    /// Frees the object. Only the current sole owner may free; freeing a
    /// lent or already-freed object is a violation.
    pub fn free(&self, obj: ObjId, module: ModuleName) -> bool {
        let mut inner = self.inner.lock();
        match inner.objects.get(&obj).cloned() {
            Some(Rights::Owned { owner }) if owner == module => {
                inner.objects.insert(obj, Rights::Freed);
                true
            }
            Some(Rights::Freed) => {
                self.violate(&mut inner, obj, module, "double free".into());
                false
            }
            Some(state) => {
                self.violate(
                    &mut inner,
                    obj,
                    module,
                    format!("free without sole ownership (state: {state:?})"),
                );
                false
            }
            None => {
                self.violate(&mut inner, obj, module, "free of unknown object".into());
                false
            }
        }
    }

    /// Objects never freed (resource-leak accounting at teardown).
    pub fn leaked(&self) -> Vec<ObjId> {
        let inner = self.inner.lock();
        let mut v: Vec<ObjId> = inner
            .objects
            .iter()
            .filter(|(_, r)| !matches!(r, Rights::Freed))
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    /// All recorded violations.
    pub fn violations(&self) -> Vec<ContractViolation> {
        self.inner.lock().violations.clone()
    }

    /// True if no violations were recorded.
    pub fn is_clean(&self) -> bool {
        self.inner.lock().violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn callee_consumes(buf: Owned<Vec<u8>>) -> usize {
        buf.len()
        // Dropped here: the callee freed it, per model 1.
    }

    fn callee_mutates(mut buf: Exclusive<'_, Vec<u8>>) {
        buf.push(9);
    }

    fn callee_reads(buf: Shared<'_, Vec<u8>>) -> usize {
        buf.len()
    }

    #[test]
    fn model1_ownership_passes() {
        let buf = Owned::new(vec![1, 2, 3]);
        assert_eq!(callee_consumes(buf), 3);
        // `buf` is gone; the borrow checker enforces the caller's loss of
        // access at compile time.
    }

    #[test]
    fn model2_exclusive_loan_returns() {
        let mut buf = Owned::new(vec![1, 2, 3]);
        callee_mutates(buf.lend_exclusive());
        assert_eq!(*buf, vec![1, 2, 3, 9], "caller sees the mutation");
    }

    #[test]
    fn model3_shared_loan_fans_out() {
        let buf = Owned::new(vec![1, 2, 3]);
        let s = buf.lend_shared();
        let s2 = s; // Copy.
        assert_eq!(callee_reads(s), 3);
        assert_eq!(callee_reads(s2), 3);
        assert_eq!(buf.len(), 3, "owner retains read access");
    }

    #[test]
    fn exclusive_reborrow_chains() {
        let mut v = 1u32;
        let mut e = Exclusive::new(&mut v);
        {
            let mut inner = e.reborrow();
            *inner += 1;
        }
        *e += 1;
        assert_eq!(v, 3);
    }

    #[test]
    fn tracker_happy_path_is_clean() {
        let t = ContractTracker::new();
        let o = t.register("vfs");
        assert!(t.access(o, "vfs", Access::Write));
        assert!(t.pass_ownership(o, "vfs", "fs"));
        assert!(t.access(o, "fs", Access::Write));
        assert!(t.free(o, "fs"));
        assert!(t.is_clean());
        assert!(t.leaked().is_empty());
    }

    #[test]
    fn tracker_caller_access_during_exclusive_loan_violates() {
        let t = ContractTracker::new();
        let o = t.register("vfs");
        assert!(t.lend_exclusive(o, "vfs", "fs"));
        assert!(!t.access(o, "vfs", Access::Read), "caller locked out");
        assert!(t.access(o, "fs", Access::Write), "borrower may mutate");
        assert!(t.return_exclusive(o, "fs"));
        assert!(t.access(o, "vfs", Access::Write), "rights restored");
        assert_eq!(t.violations().len(), 1);
    }

    #[test]
    fn tracker_shared_loan_blocks_writes() {
        let t = ContractTracker::new();
        let o = t.register("vfs");
        assert!(t.lend_shared(o, "vfs", "fs"));
        assert!(t.lend_shared(o, "vfs", "journal"));
        assert!(t.access(o, "fs", Access::Read));
        assert!(t.access(o, "journal", Access::Read));
        assert!(t.access(o, "vfs", Access::Read), "owner may still read");
        assert!(!t.access(o, "fs", Access::Write), "no writes while shared");
        assert!(t.return_shared(o, "fs"));
        assert!(t.return_shared(o, "journal"));
        assert!(t.access(o, "vfs", Access::Write), "rights restored");
    }

    #[test]
    fn tracker_borrower_cannot_free() {
        let t = ContractTracker::new();
        let o = t.register("vfs");
        t.lend_exclusive(o, "vfs", "fs");
        assert!(!t.free(o, "fs"), "callee must not free a loan");
        assert_eq!(t.violations().len(), 1);
    }

    #[test]
    fn tracker_double_free_and_uaf() {
        let t = ContractTracker::new();
        let o = t.register("fs");
        assert!(t.free(o, "fs"));
        assert!(!t.free(o, "fs"));
        assert!(!t.access(o, "fs", Access::Read));
        assert_eq!(t.violations().len(), 2);
    }

    #[test]
    fn tracker_leak_detection() {
        let t = ContractTracker::new();
        let a = t.register("fs");
        let b = t.register("fs");
        t.free(a, "fs");
        assert_eq!(t.leaked(), vec![b]);
    }

    #[test]
    fn tracker_mirrors_into_ledger() {
        let ledger = Arc::new(BugLedger::new());
        let t = ContractTracker::with_ledger(Arc::clone(&ledger));
        let o = t.register("fs");
        t.free(o, "fs");
        t.free(o, "fs"); // double free
        t.access(o, "fs", Access::Read); // use after free
        assert_eq!(ledger.count(BugClass::DoubleFree), 1);
        assert_eq!(ledger.count(BugClass::UseAfterFree), 1);
    }

    #[test]
    fn tracker_wrong_module_transfer_violates() {
        let t = ContractTracker::new();
        let o = t.register("vfs");
        assert!(!t.pass_ownership(o, "fs", "journal"), "fs never owned it");
        assert!(!t.return_exclusive(o, "fs"));
        assert!(!t.return_shared(o, "fs"));
        assert_eq!(t.violations().len(), 3);
    }
}
