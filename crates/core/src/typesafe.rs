//! Step 2 — type safety (§4.2).
//!
//! "The void pointers used to pass custom data structures can be replaced
//! with pointers to a generic type using language-level techniques such as
//! C++ templates or Rust generics. To eliminate the need for casting error
//! values to pointers, type safe interfaces … require functions to return a
//! union type that can hold either valid data or an error."
//!
//! Three pieces:
//!
//! - [`Token`]: the typed replacement for `void *` custom data. The
//!   motivating example is VFS's `write_begin`/`write_end`: in C, the file
//!   system smuggles a `void *` between the two calls and casts it back on
//!   faith. A `Token<T>` is move-only, so the compiler enforces that
//!   exactly one `write_end` consumes what `write_begin` produced, and the
//!   payload type is carried statically — no cast exists to get wrong.
//!   Tokens additionally carry a session nonce so that *runtime* pairing
//!   mistakes across concurrent sessions are caught too.
//! - `KResult` (re-exported from `sk-ksim`): the pointer-or-error union
//!   type replacing `ERR_PTR`.
//! - [`ovf`]: mandatory-overflow-check arithmetic, covering the slice of
//!   the paper's "remaining 23%" that it attributes to numeric errors and
//!   says "could be prevented with programming language techniques such as
//!   mandatory overflow checks".

use std::sync::atomic::{AtomicU64, Ordering};

pub use sk_ksim::errno::{Errno, KResult};

static NEXT_SESSION: AtomicU64 = AtomicU64::new(1);

/// A move-only typed token pairing a `*_begin` call with its `*_end`.
///
/// The type parameter is the custom data the module threads through the
/// interface; the move-only discipline means the token cannot be duplicated,
/// dropped-and-reused, or confused with another type — the three failure
/// modes of the `void *` version.
///
/// # Examples
///
/// ```
/// use sk_core::typesafe::Token;
///
/// let begin_ctx = Token::new(vec![1u8, 2, 3]); // write_begin
/// let session = begin_ctx.session();
/// let data = begin_ctx.consume_for(session).unwrap(); // write_end
/// assert_eq!(data, vec![1, 2, 3]);
/// // `begin_ctx` is gone — a second write_end does not compile.
/// ```
#[derive(Debug)]
pub struct Token<T> {
    value: T,
    session: u64,
}

impl<T> Token<T> {
    /// Issues a token for a new session.
    pub fn new(value: T) -> Self {
        Token {
            value,
            session: NEXT_SESSION.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The session nonce (used to verify cross-call pairing at runtime).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Read access to the payload while the session is open.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Mutable access to the payload while the session is open.
    pub fn get_mut(&mut self) -> &mut T {
        &mut self.value
    }

    /// Consumes the token, ending the session and yielding the payload.
    pub fn consume(self) -> T {
        self.value
    }

    /// Consumes the token, verifying it belongs to `expected_session`.
    ///
    /// Returns `EINVAL` (and the payload is dropped) on a pairing mismatch
    /// — the typed analogue of `write_end` receiving another call's
    /// `void *`.
    pub fn consume_for(self, expected_session: u64) -> KResult<T> {
        if self.session != expected_session {
            return Err(Errno::EINVAL);
        }
        Ok(self.value)
    }
}

/// Mandatory-overflow-check arithmetic.
///
/// Every function returns `EOVERFLOW` instead of wrapping. The safe file
/// system uses these for all size/offset computation; the legacy file
/// system uses raw wrapping arithmetic and the fault study counts the
/// difference.
pub mod ovf {
    use super::{Errno, KResult};

    /// Checked addition.
    pub fn add(a: u64, b: u64) -> KResult<u64> {
        a.checked_add(b).ok_or(Errno::EOVERFLOW)
    }

    /// Checked subtraction (underflow is also `EOVERFLOW`).
    pub fn sub(a: u64, b: u64) -> KResult<u64> {
        a.checked_sub(b).ok_or(Errno::EOVERFLOW)
    }

    /// Checked multiplication.
    pub fn mul(a: u64, b: u64) -> KResult<u64> {
        a.checked_mul(b).ok_or(Errno::EOVERFLOW)
    }

    /// Checked narrowing to `u32`.
    pub fn to_u32(a: u64) -> KResult<u32> {
        u32::try_from(a).map_err(|_| Errno::EOVERFLOW)
    }

    /// Checked narrowing to `usize`.
    pub fn to_usize(a: u64) -> KResult<usize> {
        usize::try_from(a).map_err(|_| Errno::EOVERFLOW)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_carries_payload_through_a_session() {
        let mut t = Token::new(vec![1u8, 2]);
        t.get_mut().push(3);
        assert_eq!(t.get().len(), 3);
        assert_eq!(t.consume(), vec![1, 2, 3]);
    }

    #[test]
    fn sessions_are_unique() {
        let a = Token::new(());
        let b = Token::new(());
        assert_ne!(a.session(), b.session());
    }

    #[test]
    fn consume_for_verifies_pairing() {
        let a = Token::new(1u8);
        let b = Token::new(2u8);
        let sa = a.session();
        assert_eq!(b.consume_for(sa), Err(Errno::EINVAL));
        assert_eq!(a.consume_for(sa), Ok(1));
    }

    #[test]
    fn ovf_catches_wraparound() {
        assert_eq!(ovf::add(u64::MAX, 1), Err(Errno::EOVERFLOW));
        assert_eq!(ovf::sub(0, 1), Err(Errno::EOVERFLOW));
        assert_eq!(ovf::mul(u64::MAX, 2), Err(Errno::EOVERFLOW));
        assert_eq!(ovf::to_u32(u64::from(u32::MAX) + 1), Err(Errno::EOVERFLOW));
        assert_eq!(ovf::add(1, 2), Ok(3));
        assert_eq!(ovf::sub(3, 2), Ok(1));
        assert_eq!(ovf::mul(6, 7), Ok(42));
        assert_eq!(ovf::to_u32(7), Ok(7));
        assert_eq!(ovf::to_usize(7), Ok(7));
    }
}
