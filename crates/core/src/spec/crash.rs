//! Exhaustive crash-schedule enumeration.
//!
//! A crash specification ("recovers to the last synced version given any
//! crash", §4.4) is only checkable if the checker can enumerate what the
//! disk may look like after power failure. The `CrashDevice` in `sk-ksim`
//! exposes the volatile write cache; this module turns (durable image +
//! pending writes) into the set of possible post-crash images:
//!
//! - [`CrashPolicy::Prefixes`] models a cache that drains in FIFO order:
//!   the crash may cut the sequence at any point (n + 1 images).
//! - [`CrashPolicy::Subsets`] models a reordering cache: any subset of the
//!   pending writes may have reached media, with later writes to the same
//!   block still winning among those applied (2^n images; n is capped
//!   because this is exhaustive, not sampled).
//! - [`CrashPolicy::Torn`] models sector-atomic hardware: like `Prefixes`,
//!   but the write the crash lands on may itself be cut at any sector
//!   boundary — only its first k sectors reach media. This is the schedule
//!   that catches on-disk formats relying on whole-block atomicity.
//!
//! The journal's correctness argument in `sk-fs-safe` is exactly that under
//! *all three* policies every reachable image recovers to an allowed model.

use sk_ksim::block::{PendingWrite, SECTOR_SIZE};
use sk_ksim::scenario::EngineStream;

/// Which crash schedules to enumerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPolicy {
    /// Writes drain in order; a crash truncates the sequence.
    Prefixes,
    /// Writes may reorder arbitrarily; a crash keeps any subset.
    Subsets,
    /// Writes drain in order, and the write the crash interrupts may be
    /// torn at any [`SECTOR_SIZE`] boundary: every prefix image plus, for
    /// each pending write, one image per partial sector count
    /// (`(n+1) + n·(sectors_per_block − 1)` images).
    Torn,
}

/// Upper bound on pending writes for [`CrashPolicy::Subsets`] (2^16 images).
pub const MAX_SUBSET_PENDING: usize = 16;

/// Applies `writes` (in order) to a copy of `base` and returns it.
fn apply(base: &[u8], writes: &[&PendingWrite], block_size: usize) -> Vec<u8> {
    let mut img = base.to_vec();
    for w in writes {
        let off = w.blkno as usize * block_size;
        img[off..off + block_size].copy_from_slice(&w.data);
    }
    img
}

/// Enumerates every post-crash disk image reachable from `base` with the
/// given `pending` cache under `policy`.
///
/// # Panics
///
/// Panics if `policy` is [`CrashPolicy::Subsets`] and more than
/// [`MAX_SUBSET_PENDING`] writes are pending — the checker is exhaustive by
/// design and refuses to silently sample.
pub fn crash_images(
    base: &[u8],
    pending: &[PendingWrite],
    block_size: usize,
    policy: CrashPolicy,
) -> Vec<Vec<u8>> {
    match policy {
        CrashPolicy::Prefixes => (0..=pending.len())
            .map(|n| {
                let refs: Vec<&PendingWrite> = pending[..n].iter().collect();
                apply(base, &refs, block_size)
            })
            .collect(),
        CrashPolicy::Torn => {
            // Sector-atomic prefixes: the cut write lands partially.
            let spb = (block_size / SECTOR_SIZE).max(1);
            let mut images = Vec::new();
            for n in 0..=pending.len() {
                let refs: Vec<&PendingWrite> = pending[..n].iter().collect();
                images.push(apply(base, &refs, block_size));
                // The (n+1)-th write is the one the crash interrupts: apply
                // its first k sectors over the prefix, for every proper k.
                if let Some(cut) = pending.get(n) {
                    for k in 1..spb {
                        let mut img = images.last().unwrap().clone();
                        let off = cut.blkno as usize * block_size;
                        let bytes = k * SECTOR_SIZE;
                        img[off..off + bytes].copy_from_slice(&cut.data[..bytes]);
                        images.push(img);
                    }
                }
            }
            images
        }
        CrashPolicy::Subsets => {
            assert!(
                pending.len() <= MAX_SUBSET_PENDING,
                "refusing to enumerate 2^{} crash images; bound the workload",
                pending.len()
            );
            let n = pending.len();
            (0u32..(1 << n))
                .map(|mask| {
                    let refs: Vec<&PendingWrite> = pending
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, w)| w)
                        .collect();
                    apply(base, &refs, block_size)
                })
                .collect()
        }
    }
}

/// Samples *one* post-crash image reachable under `policy`, drawing the
/// crash point from a scenario-engine stream.
///
/// This is the composed-scenario counterpart of [`crash_images`]: where
/// exhaustive enumeration checks a harness in isolation, a soak scenario
/// crashes at an engine-chosen point *while* other subsystems are mid-fault,
/// and the whole run replays from the one engine seed. The chosen crash
/// point is logged to the shared trace so a failing image can be read
/// straight off the trace tail.
///
/// Unlike exhaustive [`CrashPolicy::Subsets`], the sampled form accepts up
/// to 64 pending writes (one mask draw), since sampling never enumerates.
pub fn sample_crash_image(
    base: &[u8],
    pending: &[PendingWrite],
    block_size: usize,
    policy: CrashPolicy,
    stream: &EngineStream,
) -> Vec<u8> {
    match policy {
        CrashPolicy::Prefixes => {
            let n = stream.gen_range(0..=pending.len());
            stream.emit(format!("crash prefixes cut={n}/{}", pending.len()));
            let refs: Vec<&PendingWrite> = pending[..n].iter().collect();
            apply(base, &refs, block_size)
        }
        CrashPolicy::Torn => {
            let spb = (block_size / SECTOR_SIZE).max(1);
            let n = stream.gen_range(0..=pending.len());
            let refs: Vec<&PendingWrite> = pending[..n].iter().collect();
            let mut img = apply(base, &refs, block_size);
            // The (n+1)-th write is the one the crash interrupts; draw how
            // many of its sectors reach media (0 = none, i.e. plain prefix).
            // The sector draw happens whenever a cut write exists so the
            // stream offset depends only on (len, n), not on data content.
            if let Some(cut) = pending.get(n) {
                let k = stream.gen_range(0..spb);
                stream.emit(format!(
                    "crash torn cut={n}/{} blk={} sectors={k}/{spb}",
                    pending.len(),
                    cut.blkno
                ));
                if k > 0 {
                    let off = cut.blkno as usize * block_size;
                    let bytes = k * SECTOR_SIZE;
                    img[off..off + bytes].copy_from_slice(&cut.data[..bytes]);
                }
            } else {
                stream.emit(format!("crash torn cut={n}/{} (full drain)", pending.len()));
            }
            img
        }
        CrashPolicy::Subsets => {
            assert!(
                pending.len() <= 64,
                "subset sampling draws one 64-bit mask; bound the workload"
            );
            let mask = if pending.is_empty() {
                0
            } else if pending.len() == 64 {
                stream.gen_u64()
            } else {
                stream.gen_u64() & ((1u64 << pending.len()) - 1)
            };
            stream.emit(format!("crash subsets mask={mask:#x} of={}", pending.len()));
            let refs: Vec<&PendingWrite> = pending
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1u64 << i) != 0)
                .map(|(_, w)| w)
                .collect();
            apply(base, &refs, block_size)
        }
    }
}

/// Judges a recovered state against the fsync-refined crash contract.
///
/// With an async commit pipeline the promise is no longer "pre or post of
/// the in-flight op" but "some prefix of the op history **at or after the
/// last durability barrier**": `models` is the chronological state history,
/// `floor` is the watermark index established by the barrier (0 when the
/// crash point precedes every barrier), and recovery must land on
/// `models[floor..]`. Landing below the floor means fsync'd data vanished;
/// landing off-history means recovery invented a state.
pub fn judge_with_floor<M: PartialEq + core::fmt::Debug>(
    models: &[M],
    floor: usize,
    recovered: &M,
) -> Result<(), String> {
    // A history may revisit a state (create then unlink), so the recovered
    // state is judged against *any* matching index, newest first.
    match models.iter().rposition(|m| m == recovered) {
        Some(i) if i >= floor => Ok(()),
        Some(i) => Err(format!(
            "recovered to model {i}, below the durability watermark {floor}: \
             fsync'd data is missing"
        )),
        None => Err(format!("off-history state {recovered:?}")),
    }
}

/// Result of driving a crash-consistency check over every enumerated image.
#[derive(Debug, Default, Clone)]
pub struct CrashReport {
    /// Number of post-crash images examined.
    pub images_checked: usize,
    /// Human-readable descriptions of images whose recovery violated the
    /// crash specification.
    pub failures: Vec<String>,
}

impl CrashReport {
    /// True if every image recovered to an allowed state.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Checks every image with `recover_and_judge`, which returns
    /// `Ok(())` when the recovered state satisfies the crash spec and
    /// `Err(description)` otherwise.
    pub fn run(
        images: Vec<Vec<u8>>,
        mut recover_and_judge: impl FnMut(usize, &[u8]) -> Result<(), String>,
    ) -> CrashReport {
        let mut report = CrashReport::default();
        for (i, img) in images.iter().enumerate() {
            report.images_checked += 1;
            if let Err(why) = recover_and_judge(i, img) {
                report.failures.push(format!("image {i}: {why}"));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(blkno: u64, fill: u8, bs: usize) -> PendingWrite {
        PendingWrite {
            blkno,
            data: vec![fill; bs],
        }
    }

    #[test]
    fn prefixes_enumerates_n_plus_one_images() {
        let bs = 4;
        let base = vec![0u8; 3 * bs];
        let pending = vec![w(0, 1, bs), w(1, 2, bs), w(2, 3, bs)];
        let images = crash_images(&base, &pending, bs, CrashPolicy::Prefixes);
        assert_eq!(images.len(), 4);
        assert_eq!(images[0], base, "zero writes applied");
        assert_eq!(images[1][0], 1);
        assert_eq!(images[1][bs], 0, "second write not yet applied");
        assert_eq!(images[3][2 * bs], 3, "full prefix applied");
    }

    #[test]
    fn subsets_enumerates_power_set() {
        let bs = 2;
        let base = vec![0u8; 2 * bs];
        let pending = vec![w(0, 1, bs), w(1, 2, bs)];
        let images = crash_images(&base, &pending, bs, CrashPolicy::Subsets);
        assert_eq!(images.len(), 4);
        // One of the images must have block 1 written but not block 0 —
        // the reordering the prefix policy can't produce.
        assert!(images.iter().any(|img| img[0] == 0 && img[bs] == 2));
    }

    #[test]
    fn later_write_to_same_block_wins_in_subsets() {
        let bs = 2;
        let base = vec![0u8; bs];
        let pending = vec![w(0, 1, bs), w(0, 2, bs)];
        let images = crash_images(&base, &pending, bs, CrashPolicy::Subsets);
        // Mask 0b11 applies both in order: final value 2.
        assert!(images.iter().any(|img| img[0] == 2));
        // No image can have "1 over 2": applying in order forbids it only
        // for the both-applied case; the {first-only} subset legitimately
        // yields 1.
        assert!(images.iter().any(|img| img[0] == 1));
        assert!(images.iter().any(|img| img[0] == 0));
    }

    #[test]
    fn torn_enumerates_prefixes_plus_sector_cuts() {
        let bs = 2 * SECTOR_SIZE;
        let base = vec![0u8; 2 * bs];
        let pending = vec![w(0, 1, bs), w(1, 2, bs)];
        let images = crash_images(&base, &pending, bs, CrashPolicy::Torn);
        // (n+1) prefixes + n·(spb−1) torn variants = 3 + 2·1.
        assert_eq!(images.len(), 5);
        // Every prefix image is present…
        for img in crash_images(&base, &pending, bs, CrashPolicy::Prefixes) {
            assert!(images.contains(&img));
        }
        // …plus the half-applied first write: sector 0 new, sector 1 old.
        assert!(images.iter().any(|img| {
            img[..SECTOR_SIZE].iter().all(|&b| b == 1)
                && img[SECTOR_SIZE..bs].iter().all(|&b| b == 0)
        }));
        // No image tears *inside* a sector.
        for img in &images {
            for blk in img.chunks(bs) {
                for sector in blk.chunks(SECTOR_SIZE) {
                    assert!(sector.iter().all(|&b| b == sector[0]));
                }
            }
        }
    }

    #[test]
    fn torn_with_single_sector_blocks_degenerates_to_prefixes() {
        let bs = 4; // smaller than a sector: whole-block atomic
        let base = vec![0u8; 2 * bs];
        let pending = vec![w(0, 1, bs), w(1, 2, bs)];
        assert_eq!(
            crash_images(&base, &pending, bs, CrashPolicy::Torn),
            crash_images(&base, &pending, bs, CrashPolicy::Prefixes)
        );
    }

    #[test]
    #[should_panic(expected = "refusing to enumerate")]
    fn subsets_refuses_unbounded_pending() {
        let bs = 1;
        let base = vec![0u8; 32];
        let pending: Vec<PendingWrite> = (0..17).map(|i| w(i, 1, bs)).collect();
        let _ = crash_images(&base, &pending, bs, CrashPolicy::Subsets);
    }

    #[test]
    fn floor_judge_enforces_the_watermark() {
        let models = vec![0u32, 1, 2, 3];
        // Above or at the floor: allowed.
        assert!(judge_with_floor(&models, 2, &2).is_ok());
        assert!(judge_with_floor(&models, 2, &3).is_ok());
        // No barrier yet: any history prefix is allowed.
        assert!(judge_with_floor(&models, 0, &0).is_ok());
        // Below the floor: the fsync'd data went missing.
        let why = judge_with_floor(&models, 2, &1).unwrap_err();
        assert!(why.contains("watermark 2"), "{why}");
        // Off-history: recovery invented a state.
        let why = judge_with_floor(&models, 0, &9).unwrap_err();
        assert!(why.contains("off-history"), "{why}");
        // A revisited state (create then unlink back to empty) matches its
        // newest occurrence, so it satisfies a floor at that index.
        let looped = vec![0u32, 1, 0];
        assert!(judge_with_floor(&looped, 2, &0).is_ok());
        assert!(judge_with_floor(&looped, 2, &1).is_err());
    }

    #[test]
    fn sampled_images_are_members_of_the_exhaustive_set() {
        use sk_ksim::scenario::ScenarioEngine;
        let bs = 2 * SECTOR_SIZE;
        let base = vec![0u8; 4 * bs];
        let pending = vec![w(0, 1, bs), w(1, 2, bs), w(2, 3, bs)];
        for policy in [
            CrashPolicy::Prefixes,
            CrashPolicy::Torn,
            CrashPolicy::Subsets,
        ] {
            let all = crash_images(&base, &pending, bs, policy);
            let engine = ScenarioEngine::new(7);
            let stream = engine.stream("crash");
            for _ in 0..32 {
                let img = sample_crash_image(&base, &pending, bs, policy, &stream);
                assert!(
                    all.contains(&img),
                    "{policy:?}: sampled an image the exhaustive set cannot reach"
                );
            }
            assert!(engine.trace_text().contains("crash"));
        }
    }

    #[test]
    fn sampled_images_replay_from_the_engine_seed() {
        use sk_ksim::scenario::ScenarioEngine;
        let bs = 2 * SECTOR_SIZE;
        let base = vec![9u8; 4 * bs];
        let pending = vec![w(1, 4, bs), w(3, 5, bs)];
        let run = |policy| {
            let engine = ScenarioEngine::new(0xC4A5);
            let stream = engine.stream("crash");
            let imgs: Vec<Vec<u8>> = (0..16)
                .map(|_| sample_crash_image(&base, &pending, bs, policy, &stream))
                .collect();
            (imgs, engine.trace_text())
        };
        for policy in [
            CrashPolicy::Prefixes,
            CrashPolicy::Torn,
            CrashPolicy::Subsets,
        ] {
            assert_eq!(run(policy), run(policy));
        }
    }

    #[test]
    fn crash_report_collects_failures() {
        let images = vec![vec![0u8], vec![1u8], vec![2u8]];
        let report = CrashReport::run(images, |_, img| {
            if img[0] == 1 {
                Err("bad state".into())
            } else {
                Ok(())
            }
        });
        assert_eq!(report.images_checked, 3);
        assert_eq!(report.failures.len(), 1);
        assert!(!report.is_clean());
        assert!(report.failures[0].contains("image 1"));
    }
}
