//! Runtime refinement checking.
//!
//! Each checked step captures the abstraction before and after running the
//! implementation operation and evaluates the operation's specification
//! relation over `(pre, post, result)`. Nondeterministic specifications are
//! naturally expressible: the relation accepts any post-state the
//! specification allows.

use super::{AbstractModel, Refines};

/// A recorded refinement failure: the counterexample.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementViolation<M> {
    /// Name of the operation whose relation failed.
    pub op: String,
    /// Abstraction before the operation.
    pub pre: M,
    /// Abstraction after the operation.
    pub post: M,
}

/// Checks a stream of implementation operations against their relations.
#[derive(Debug, Default)]
pub struct RefinementChecker<M> {
    checked: u64,
    violations: Vec<RefinementViolation<M>>,
}

impl<M: AbstractModel> RefinementChecker<M> {
    /// Creates a checker with an empty history.
    pub fn new() -> Self {
        RefinementChecker {
            checked: 0,
            violations: Vec::new(),
        }
    }

    /// Runs `action` on `sys` as operation `op`, checking that
    /// `relation(pre_model, post_model, &result)` holds.
    ///
    /// Returns the action's result either way; failures are recorded as
    /// counterexamples, so a test can drive a whole workload and assert
    /// [`RefinementChecker::is_clean`] at the end.
    pub fn step<S: Refines<M>, R>(
        &mut self,
        sys: &mut S,
        op: impl Into<String>,
        action: impl FnOnce(&mut S) -> R,
        relation: impl FnOnce(&M, &M, &R) -> bool,
    ) -> R {
        let pre = sys.abstraction();
        let result = action(sys);
        let post = sys.abstraction();
        self.checked += 1;
        if !relation(&pre, &post, &result) {
            self.violations.push(RefinementViolation {
                op: op.into(),
                pre,
                post,
            });
        }
        result
    }

    /// Checks an invariant of the current abstraction (a unary relation).
    pub fn check_invariant<S: Refines<M>>(
        &mut self,
        sys: &S,
        name: impl Into<String>,
        invariant: impl FnOnce(&M) -> bool,
    ) -> bool {
        let m = sys.abstraction();
        self.checked += 1;
        let ok = invariant(&m);
        if !ok {
            self.violations.push(RefinementViolation {
                op: name.into(),
                pre: m.clone(),
                post: m,
            });
        }
        ok
    }

    /// Number of steps and invariants checked.
    pub fn ops_checked(&self) -> u64 {
        self.checked
    }

    /// Recorded counterexamples.
    pub fn violations(&self) -> &[RefinementViolation<M>] {
        &self.violations
    }

    /// True if every checked relation held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy counter implementation with an abstraction to `u64`.
    struct Counter {
        // Implementation detail: stores the value split in two fields.
        hi: u32,
        lo: u32,
    }

    impl Refines<u64> for Counter {
        fn abstraction(&self) -> u64 {
            (u64::from(self.hi) << 32) | u64::from(self.lo)
        }
    }

    impl Counter {
        fn incr(&mut self) {
            let (lo, carry) = self.lo.overflowing_add(1);
            self.lo = lo;
            if carry {
                self.hi += 1;
            }
        }

        /// A buggy decrement that forgets the borrow.
        fn buggy_decr(&mut self) {
            self.lo = self.lo.wrapping_sub(1);
        }
    }

    #[test]
    fn correct_op_passes_relation() {
        let mut c = Counter {
            hi: 0,
            lo: u32::MAX,
        };
        let mut chk = RefinementChecker::new();
        chk.step(
            &mut c,
            "incr",
            |c| c.incr(),
            |pre, post, _: &()| *post == pre + 1,
        );
        assert!(chk.is_clean());
        assert_eq!(chk.ops_checked(), 1);
        assert_eq!(c.abstraction(), u64::from(u32::MAX) + 1);
    }

    #[test]
    fn buggy_op_produces_counterexample() {
        let mut c = Counter { hi: 1, lo: 0 };
        let mut chk = RefinementChecker::new();
        chk.step(
            &mut c,
            "decr",
            |c| c.buggy_decr(),
            |pre, post, _: &()| *post == pre - 1,
        );
        assert!(!chk.is_clean());
        let v = &chk.violations()[0];
        assert_eq!(v.op, "decr");
        assert_eq!(v.pre, 1 << 32);
        // The bug: lo wrapped without borrowing from hi.
        assert_eq!(v.post, (1u64 << 32) | u64::from(u32::MAX));
    }

    #[test]
    fn nondeterministic_relation_accepts_any_allowed_post() {
        let mut c = Counter { hi: 0, lo: 0 };
        let mut chk = RefinementChecker::new();
        // Spec: "incr moves the value up by at least one" — nondeterminism.
        chk.step(
            &mut c,
            "incr",
            |c| {
                c.incr();
                c.incr()
            },
            |pre, post, _: &()| *post > *pre,
        );
        assert!(chk.is_clean());
    }

    #[test]
    fn invariant_checking() {
        let c = Counter { hi: 0, lo: 5 };
        let mut chk = RefinementChecker::new();
        assert!(chk.check_invariant(&c, "small", |m| *m < 10));
        assert!(!chk.check_invariant(&c, "zero", |m| *m == 0));
        assert_eq!(chk.violations().len(), 1);
        assert_eq!(chk.violations()[0].op, "zero");
    }

    #[test]
    fn result_is_passed_to_relation() {
        let mut c = Counter { hi: 0, lo: 0 };
        let mut chk = RefinementChecker::new();
        let r = chk.step(
            &mut c,
            "read",
            |c| c.abstraction(),
            |pre, post, r: &u64| pre == post && *r == *pre,
        );
        assert_eq!(r, 0);
        assert!(chk.is_clean());
    }
}
