//! Axiomatic models of unverified components (§4.4).
//!
//! "The boundary must provide assumptions (axioms) about the behavior of
//! the unverified module. … In the case of block I/O, the data structure
//! `buffer_head` may be abstracted away, and the axioms can be defined in
//! terms of bytes."
//!
//! [`AxiomaticDevice`] wraps an *unverified* block device in exactly that
//! model: a map from block numbers to the bytes last written (plus the
//! first-observed contents of blocks read before ever being written). The
//! axioms checked on every operation:
//!
//! - **A1 (read-after-write)**: a read returns the bytes most recently
//!   written to that block.
//! - **A2 (stability)**: a block never written since first observed keeps
//!   its first-observed contents.
//! - **A3 (geometry)**: `num_blocks`/`block_size` never change.
//!
//! A verified module "will appear buggy if either the block I/O layer is
//! buggy or the model erroneous" — so violations are recorded, not
//! panicked, and surface in the boundary's diagnostics. Running the
//! workspace's corruption-injecting `FaultyDevice` under this wrapper makes
//! A1/A2 fire, demonstrating the axioms catching a faulty substrate.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sk_ksim::block::{BlockDevice, DeviceStats};
use sk_ksim::errno::KResult;

/// A recorded axiom violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxiomViolation {
    /// Which axiom failed ("A1", "A2", "A3").
    pub axiom: &'static str,
    /// The block involved.
    pub blkno: u64,
    /// Description of the mismatch.
    pub what: String,
}

struct ModelState {
    /// Expected contents per block (written or first observed).
    expected: HashMap<u64, Vec<u8>>,
    /// Blocks whose entry came from a write (A1) vs first read (A2).
    written: HashMap<u64, bool>,
    violations: Vec<AxiomViolation>,
    geometry: (u64, usize),
}

/// Wraps an unverified device in the runtime-checked axiomatic model.
pub struct AxiomaticDevice<D> {
    inner: D,
    model: Mutex<ModelState>,
}

impl<D: BlockDevice> AxiomaticDevice<D> {
    /// Wraps `inner`; the model starts empty (no assumptions about prior
    /// contents).
    pub fn new(inner: D) -> Self {
        let geometry = (inner.num_blocks(), inner.block_size());
        AxiomaticDevice {
            inner,
            model: Mutex::new(ModelState {
                expected: HashMap::new(),
                written: HashMap::new(),
                violations: Vec::new(),
                geometry,
            }),
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// All recorded axiom violations.
    pub fn violations(&self) -> Vec<AxiomViolation> {
        self.model.lock().violations.clone()
    }

    /// True if no axiom has been observed to fail.
    pub fn is_clean(&self) -> bool {
        self.model.lock().violations.is_empty()
    }

    /// Forgets the model's expectations (after an external event the model
    /// cannot see, e.g. restoring a snapshot under crash checking).
    pub fn reset_model(&self) {
        let mut m = self.model.lock();
        m.expected.clear();
        m.written.clear();
    }

    fn check_geometry(&self) {
        let mut m = self.model.lock();
        let now = (self.inner.num_blocks(), self.inner.block_size());
        if now != m.geometry {
            let expected = m.geometry;
            m.violations.push(AxiomViolation {
                axiom: "A3",
                blkno: 0,
                what: format!("geometry changed from {expected:?} to {now:?}"),
            });
            m.geometry = now;
        }
    }
}

impl<D: BlockDevice> BlockDevice for AxiomaticDevice<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
        self.check_geometry();
        self.inner.read_block(blkno, buf)?;
        let mut m = self.model.lock();
        match m.expected.get(&blkno) {
            Some(expected) => {
                if expected != buf {
                    let axiom = if m.written.get(&blkno).copied().unwrap_or(false) {
                        "A1"
                    } else {
                        "A2"
                    };
                    m.violations.push(AxiomViolation {
                        axiom,
                        blkno,
                        what: "read returned bytes differing from the model".into(),
                    });
                    // Re-baseline so one corruption is one violation, not a
                    // violation on every subsequent read.
                    let data = buf.to_vec();
                    m.expected.insert(blkno, data);
                }
            }
            None => {
                // First observation of this block: record as baseline (A2).
                m.expected.insert(blkno, buf.to_vec());
                m.written.insert(blkno, false);
            }
        }
        Ok(())
    }

    fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
        self.check_geometry();
        self.inner.write_block(blkno, buf)?;
        let mut m = self.model.lock();
        m.expected.insert(blkno, buf.to_vec());
        m.written.insert(blkno, true);
        Ok(())
    }

    fn flush(&self) -> KResult<()> {
        self.inner.flush()
    }

    fn stats(&self) -> DeviceStats {
        self.inner.stats()
    }
}

// Allow wrapping shared devices.
impl<D: BlockDevice> AxiomaticDevice<Arc<D>> {
    /// Convenience: wraps a shared device.
    pub fn over(inner: Arc<D>) -> Self {
        AxiomaticDevice::new(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sk_ksim::block::{FaultConfig, FaultyDevice, RamDisk, BLOCK_SIZE};

    #[test]
    fn honest_device_satisfies_axioms() {
        let d = AxiomaticDevice::new(RamDisk::new(4));
        let data = vec![7u8; BLOCK_SIZE];
        d.write_block(1, &data).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(1, &mut out).unwrap();
        d.read_block(2, &mut out).unwrap(); // First-observe a clean block.
        d.read_block(2, &mut out).unwrap(); // Stable.
        d.flush().unwrap();
        assert!(d.is_clean(), "{:?}", d.violations());
    }

    #[test]
    fn corrupting_device_violates_a1() {
        let cfg = FaultConfig {
            corruption_rate: 1.0,
            ..FaultConfig::default()
        };
        let d = AxiomaticDevice::new(FaultyDevice::new(RamDisk::new(4), cfg, 11));
        let data = vec![0u8; BLOCK_SIZE];
        d.write_block(0, &data).unwrap(); // Corrupted on media.
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(0, &mut out).unwrap();
        let v = d.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].axiom, "A1");
        assert_eq!(v[0].blkno, 0);
    }

    #[test]
    fn out_of_band_mutation_violates_a2() {
        let ram = Arc::new(RamDisk::new(4));
        let d = AxiomaticDevice::new(Arc::clone(&ram));
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(3, &mut out).unwrap(); // Baseline: zeros.
                                            // Mutate behind the model's back.
        let sneaky = vec![9u8; BLOCK_SIZE];
        ram.write_block(3, &sneaky).unwrap();
        d.read_block(3, &mut out).unwrap();
        let v = d.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].axiom, "A2");
    }

    #[test]
    fn one_corruption_one_violation() {
        let ram = Arc::new(RamDisk::new(4));
        let d = AxiomaticDevice::new(Arc::clone(&ram));
        let data = vec![1u8; BLOCK_SIZE];
        d.write_block(0, &data).unwrap();
        let sneaky = vec![2u8; BLOCK_SIZE];
        ram.write_block(0, &sneaky).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(0, &mut out).unwrap();
        d.read_block(0, &mut out).unwrap();
        d.read_block(0, &mut out).unwrap();
        assert_eq!(d.violations().len(), 1, "re-baselined after first report");
    }

    #[test]
    fn reset_model_forgets_expectations() {
        let ram = Arc::new(RamDisk::new(4));
        let d = AxiomaticDevice::new(Arc::clone(&ram));
        let data = vec![1u8; BLOCK_SIZE];
        d.write_block(0, &data).unwrap();
        let other = vec![2u8; BLOCK_SIZE];
        ram.write_block(0, &other).unwrap();
        d.reset_model();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(0, &mut out).unwrap();
        assert!(d.is_clean(), "after reset the new content is the baseline");
    }
}
