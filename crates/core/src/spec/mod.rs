//! Step 4 — functional correctness (§4.4).
//!
//! The paper asks for four features to support verified modules:
//!
//! 1. **A modeling language**: "a mathematical language with immutable
//!    objects … and functions and relations over them". Here a model is any
//!    plain Rust value implementing [`AbstractModel`] — cloneable,
//!    comparable, side-effect free. The file-system model in
//!    `sk-vfs::spec`, for instance, is a map from path strings to file
//!    content bytes, exactly the example the paper gives.
//! 2. **Refinement**: "the implementation explains how to 'interpret' its
//!    efficient, complex, mutable data structure as an instance of the
//!    model" — that is the [`Refines`] trait — and "verification shows that
//!    each operation performed by the implementation is a valid relation
//!    between the before- and after- model interpretations" — that is
//!    [`refinement::RefinementChecker::step`], which captures the
//!    abstraction before and after each operation and evaluates the
//!    operation's specification relation over the pair.
//! 3. **Axiomatic models of unverified code**: [`axioms`] wraps the
//!    unverified block layer in runtime-checked assumptions "defined in
//!    terms of bytes", with `buffer_head` abstracted away.
//! 4. **Crash specifications**: [`crash`] enumerates every disk image a
//!    power failure could leave behind (prefixes, and bounded subsets, of
//!    the volatile write cache) so a checker can verify the recovered state
//!    is always one the crash specification allows.
//!
//! **Substitution note** (see DESIGN.md): where the paper's endgame is
//! machine-checked proof, this workspace checks the *same specifications*
//! dynamically and exhaustively on bounded workloads. The interface
//! obligations — which is what the paper is actually about — are identical.

pub mod axioms;
pub mod crash;
pub mod refinement;

use std::fmt::Debug;

pub use axioms::{AxiomViolation, AxiomaticDevice};
pub use crash::{crash_images, CrashPolicy, CrashReport};
pub use refinement::{RefinementChecker, RefinementViolation};

/// A pure abstract model: an immutable mathematical object.
///
/// Blanket-implemented; the bounds are the whole definition. `Clone` gives
/// immutable snapshots, `PartialEq` gives the relation language equality,
/// `Debug` gives counterexample printing.
pub trait AbstractModel: Clone + PartialEq + Debug {}

impl<T: Clone + PartialEq + Debug> AbstractModel for T {}

/// An implementation that can be interpreted as an instance of model `M`.
///
/// This is the abstraction function of classic refinement proofs.
pub trait Refines<M: AbstractModel> {
    /// Interprets the current concrete state as an abstract model value.
    fn abstraction(&self) -> M;
}
