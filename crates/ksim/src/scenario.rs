//! The unified deterministic fault-scenario engine.
//!
//! Before this module, every fault harness in the workspace — the
//! adversarial disk ([`crate::block::FaultyDisk`]), the adversarial link
//! (`sk-netstack::fault::FaultyLink`), the crash-schedule enumeration
//! (`sk-core::spec::crash`), and the soak-test stress schedules — carried
//! its *own* `seed: u64` and its own private `StdRng`. Each harness was
//! individually reproducible, but a run that composed them was not: four
//! seeds, four clocks'-worth of interleaving, no single number that
//! replays the failure. The scenarios most likely to break the
//! ring/journal/netstack interplay (disk `EIO` mid-checkpoint during a
//! retransmit storm) were inexpressible.
//!
//! [`ScenarioEngine`] is the FoundationDB-style fix: **one seed, one
//! virtual clock, one trace**. Every harness derives its RNG stream from
//! the engine seed (`seed ^ fnv1a(subsystem)`, see [`subsystem_tag`]), so
//! - a single `--seed N` reconstructs every stream in the run, and
//! - streams stay *independent*: drawing more disk faults never perturbs
//!   the link schedule, which keeps shrunk repros stable.
//!
//! Every injected fault is appended to a shared bounded trace in the
//! format `(event, subsystem, tick, seed-offset)`: `tick` is the engine's
//! [`SimClock`] at emission and `seed-offset` is how many values that
//! subsystem's stream had drawn, so two traces are byte-identical iff the
//! two runs made identical fault decisions at identical virtual times.
//! Trace equality is itself under test (`tests/soak.rs`), which is what
//! makes "replay from the logged seed" a checked guarantee instead of a
//! convention.
//!
//! Locking discipline: a stream's RNG lives behind its own mutex, and the
//! draw helpers release it before returning — a harness must **draw the
//! fault decision first, then touch the device**, never holding the
//! stream lock across inner IO (that would serialize every subsystem's
//! fault decisions behind the slowest device; see
//! [`EngineStream::locked_now`] and the probe test in `block.rs`).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

use crate::time::SimClock;

/// Canonical subsystem names, so traces from different runs line up.
pub mod subsys {
    /// Block-device fault injection (`FaultyDisk`).
    pub const DISK: &str = "disk";
    /// Network-link fault injection (`FaultyLink`).
    pub const LINK: &str = "link";
    /// Crash-point selection over pending write caches.
    pub const CRASH: &str = "crash";
    /// Randomized workload / stress-schedule decisions.
    pub const WORKLOAD: &str = "workload";
    /// Live-replacement (hot-swap) protocol events: quiesce, state
    /// transfer, resume — so a scenario can land faults *mid-handoff*
    /// and replay them from the same seed.
    pub const SWAP: &str = "swap";
}

/// FNV-1a hash of a subsystem name: the per-subsystem seed tag.
///
/// Stream seeds are `engine_seed ^ subsystem_tag(name)`, so every
/// harness stream is pinned by the *one* engine seed while distinct
/// subsystems still get decorrelated streams.
pub fn subsystem_tag(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Maximum trace events retained (oldest dropped first). Bounded so
/// week-long soaks cannot grow without limit; the tail — which is what a
/// failure report prints — is always intact.
pub const TRACE_CAP: usize = 8192;

/// One entry in the shared scenario trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time ([`SimClock`] ns) when the event was emitted.
    pub tick: u64,
    /// Which subsystem stream emitted it (see [`subsys`]).
    pub subsystem: &'static str,
    /// How many values the subsystem's stream had drawn at emission —
    /// the replay cursor into that stream.
    pub seed_offset: u64,
    /// Human-readable description of the fault decision.
    pub event: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[t={}ns {}+{}] {}",
            self.tick, self.subsystem, self.seed_offset, self.event
        )
    }
}

/// Bounded trace shared by the engine and all of its streams.
struct TraceBuf {
    events: VecDeque<TraceEvent>,
    /// Total events ever emitted, including ones the cap evicted.
    total: u64,
}

/// One seeded discrete-event scenario: a seed, a virtual clock, and the
/// derived per-subsystem RNG streams, all feeding one trace.
///
/// Construction is cheap; harnesses hold `Arc<ScenarioEngine>` and ask
/// for their stream by name. Requesting the same name twice returns the
/// *same* stream, so two `FaultyDisk`s on one engine share one disk
/// schedule — composition, not accidental reseeding.
pub struct ScenarioEngine {
    seed: u64,
    clock: Arc<SimClock>,
    trace: Arc<Mutex<TraceBuf>>,
    streams: Mutex<HashMap<&'static str, Arc<EngineStream>>>,
}

impl ScenarioEngine {
    /// An engine with a fresh virtual clock at t = 0.
    pub fn new(seed: u64) -> Arc<ScenarioEngine> {
        ScenarioEngine::with_clock(seed, Arc::new(SimClock::new()))
    }

    /// An engine sharing an existing virtual clock (so device latency and
    /// link delays tick on the same timeline).
    pub fn with_clock(seed: u64, clock: Arc<SimClock>) -> Arc<ScenarioEngine> {
        Arc::new(ScenarioEngine {
            seed,
            clock,
            trace: Arc::new(Mutex::new(TraceBuf {
                events: VecDeque::new(),
                total: 0,
            })),
            streams: Mutex::new(HashMap::new()),
        })
    }

    /// The one seed that replays this scenario.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The one virtual clock every event source ticks on.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The derived stream for `name`, created on first request and shared
    /// afterwards. Stream seed: `engine_seed ^ subsystem_tag(name)`.
    pub fn stream(&self, name: &'static str) -> Arc<EngineStream> {
        let mut streams = self.streams.lock();
        Arc::clone(streams.entry(name).or_insert_with(|| {
            Arc::new(EngineStream {
                name,
                clock: Arc::clone(&self.clock),
                trace: Arc::clone(&self.trace),
                state: Mutex::new(StreamState {
                    rng: StdRng::seed_from_u64(self.seed ^ subsystem_tag(name)),
                    draws: 0,
                }),
            })
        }))
    }

    /// Snapshot of the retained trace window, oldest first.
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.trace.lock().events.iter().cloned().collect()
    }

    /// Total events emitted over the engine's lifetime (including any the
    /// retention cap evicted).
    pub fn trace_len(&self) -> u64 {
        self.trace.lock().total
    }

    /// The whole retained trace, one event per line — the byte string two
    /// same-seed runs must agree on.
    pub fn trace_text(&self) -> String {
        let buf = self.trace.lock();
        let mut out = String::new();
        for ev in &buf.events {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }

    /// The last `n` trace lines — what a failing scenario prints so the
    /// seed plus the tail land in the CI job output.
    pub fn trace_tail(&self, n: usize) -> String {
        let buf = self.trace.lock();
        let skip = buf.events.len().saturating_sub(n);
        let mut out = String::new();
        for ev in buf.events.iter().skip(skip) {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for ScenarioEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioEngine")
            .field("seed", &self.seed)
            .field("tick", &self.clock.now_ns())
            .field("trace_len", &self.trace_len())
            .finish()
    }
}

struct StreamState {
    rng: StdRng,
    draws: u64,
}

/// A per-subsystem RNG stream plus its trace hookup.
///
/// Draw helpers take the internal lock only for the draw itself; callers
/// must make the fault decision first and touch devices after, so the
/// stream mutex is never held across blocking IO.
pub struct EngineStream {
    name: &'static str,
    clock: Arc<SimClock>,
    trace: Arc<Mutex<TraceBuf>>,
    state: Mutex<StreamState>,
}

impl EngineStream {
    /// The subsystem name this stream was derived for.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of values drawn from this stream so far (the seed-offset
    /// stamped on trace events).
    pub fn draws(&self) -> u64 {
        self.state.lock().draws
    }

    /// Bernoulli draw. Counts as one draw even for `p = 1.0`.
    pub fn gen_bool(&self, p: f64) -> bool {
        let mut st = self.state.lock();
        st.draws += 1;
        st.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Probability roll with the same no-draw-at-zero contract the
    /// harnesses' private `roll` helpers had: `p <= 0` consumes nothing
    /// from the stream, so disabling a fault class leaves every other
    /// decision in the run unchanged.
    pub fn roll(&self, p: f64) -> bool {
        p > 0.0 && self.gen_bool(p)
    }

    /// Uniform draw from `range`.
    pub fn gen_range<T, R>(&self, range: R) -> T
    where
        T: rand::SampleUniform,
        R: SampleRange<T>,
    {
        let mut st = self.state.lock();
        st.draws += 1;
        st.rng.gen_range(range)
    }

    /// One raw `u64` (for deriving nested seeds in workload schedules).
    pub fn gen_u64(&self) -> u64 {
        let mut st = self.state.lock();
        st.draws += 1;
        st.rng.gen()
    }

    /// Appends an event to the shared trace, stamped with the current
    /// virtual tick and this stream's draw count.
    pub fn emit(&self, event: impl Into<String>) {
        let ev = TraceEvent {
            tick: self.clock.now_ns(),
            subsystem: self.name,
            seed_offset: self.draws(),
            event: event.into(),
        };
        let mut buf = self.trace.lock();
        buf.total += 1;
        if buf.events.len() == TRACE_CAP {
            buf.events.pop_front();
        }
        buf.events.push_back(ev);
    }

    /// True if some thread currently holds this stream's RNG lock. The
    /// held-across-IO probe: a wrapped inner device asserts this is
    /// `false` inside its read/write path, proving the fault harness
    /// dropped the lock before touching the device.
    pub fn locked_now(&self) -> bool {
        self.state.try_lock().is_none()
    }
}

impl fmt::Debug for EngineStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineStream")
            .field("name", &self.name)
            .field("draws", &self.draws())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsystem_tags_are_distinct_and_stable() {
        let tags = [
            subsystem_tag(subsys::DISK),
            subsystem_tag(subsys::LINK),
            subsystem_tag(subsys::CRASH),
            subsystem_tag(subsys::WORKLOAD),
        ];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                assert_ne!(a, b, "subsystem tags must not collide");
            }
        }
        // FNV-1a is a fixed function: the tag is part of the replay
        // contract and must never drift between builds.
        assert_eq!(subsystem_tag("disk"), subsystem_tag("disk"));
    }

    #[test]
    fn same_name_returns_the_same_stream() {
        let eng = ScenarioEngine::new(7);
        let a = eng.stream(subsys::DISK);
        let b = eng.stream(subsys::DISK);
        assert!(Arc::ptr_eq(&a, &b), "streams are shared, not reseeded");
        a.gen_u64();
        assert_eq!(b.draws(), 1);
    }

    #[test]
    fn streams_are_decorrelated_but_seed_pinned() {
        let run = |seed: u64| {
            let eng = ScenarioEngine::new(seed);
            let disk = eng.stream(subsys::DISK);
            let link = eng.stream(subsys::LINK);
            let d: Vec<u64> = (0..8).map(|_| disk.gen_u64()).collect();
            let l: Vec<u64> = (0..8).map(|_| link.gen_u64()).collect();
            (d, l)
        };
        let (d1, l1) = run(42);
        let (d2, l2) = run(42);
        assert_eq!(d1, d2, "disk stream replays from the engine seed");
        assert_eq!(l1, l2, "link stream replays from the engine seed");
        assert_ne!(d1, l1, "distinct subsystems draw distinct streams");
        let (d3, _) = run(43);
        assert_ne!(d1, d3, "different engine seed, different stream");
    }

    #[test]
    fn draw_interleaving_does_not_couple_streams() {
        // Drawing extra disk values must not perturb the link stream:
        // this is what keeps a shrunk repro stable when one subsystem's
        // workload changes.
        let eng1 = ScenarioEngine::new(9);
        let l1: Vec<u64> = {
            let link = eng1.stream(subsys::LINK);
            (0..4).map(|_| link.gen_u64()).collect()
        };
        let eng2 = ScenarioEngine::new(9);
        let disk = eng2.stream(subsys::DISK);
        for _ in 0..100 {
            disk.gen_u64();
        }
        let l2: Vec<u64> = {
            let link = eng2.stream(subsys::LINK);
            (0..4).map(|_| link.gen_u64()).collect()
        };
        assert_eq!(l1, l2);
    }

    #[test]
    fn trace_records_tick_subsystem_and_seed_offset() {
        let eng = ScenarioEngine::new(1);
        let disk = eng.stream(subsys::DISK);
        disk.gen_u64();
        eng.clock().advance(500);
        disk.emit("write_eio blk=3");
        let tr = eng.trace();
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].tick, 500);
        assert_eq!(tr[0].subsystem, subsys::DISK);
        assert_eq!(tr[0].seed_offset, 1);
        assert_eq!(tr[0].event, "write_eio blk=3");
        assert_eq!(tr[0].to_string(), "[t=500ns disk+1] write_eio blk=3");
    }

    #[test]
    fn trace_is_bounded_but_counts_everything() {
        let eng = ScenarioEngine::new(2);
        let s = eng.stream(subsys::WORKLOAD);
        for i in 0..(TRACE_CAP + 10) {
            s.emit(format!("e{i}"));
        }
        assert_eq!(eng.trace().len(), TRACE_CAP);
        assert_eq!(eng.trace_len(), (TRACE_CAP + 10) as u64);
        let tail = eng.trace_tail(2);
        assert!(tail.contains(&format!("e{}", TRACE_CAP + 9)), "{tail}");
        assert_eq!(tail.lines().count(), 2);
    }

    #[test]
    fn roll_at_zero_consumes_nothing() {
        let eng = ScenarioEngine::new(3);
        let s = eng.stream(subsys::DISK);
        assert!(!s.roll(0.0));
        assert_eq!(s.draws(), 0, "disabled fault classes draw nothing");
        s.roll(0.5);
        assert_eq!(s.draws(), 1);
    }

    #[test]
    fn locked_now_reflects_the_stream_lock() {
        let eng = ScenarioEngine::new(4);
        let s = eng.stream(subsys::DISK);
        assert!(!s.locked_now());
        let guard = s.state.lock();
        assert!(s.locked_now());
        drop(guard);
        assert!(!s.locked_now());
    }
}
