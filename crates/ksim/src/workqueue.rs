//! Deferred work: a deterministic kernel workqueue and a writeback flusher.
//!
//! Linux defers IO and housekeeping to workqueues and the writeback
//! daemons; the substrate needs the same facility (the buffer cache's
//! dirty data has to reach the device *eventually*, not just at explicit
//! sync points). Because everything in this workspace is deterministic,
//! the [`WorkQueue`] is pumped explicitly: work items become runnable at a
//! simulated-clock deadline and run, in order, when [`WorkQueue::pump`] is
//! called — no threads, no nondeterminism, same semantics.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferCache;
use crate::errno::KResult;
use crate::time::SimClock;

/// A unit of deferred work.
type WorkFn = Box<dyn FnOnce() + Send>;

struct WorkItem {
    due_ns: u64,
    seq: u64,
    name: &'static str,
    work: WorkFn,
}

impl PartialEq for WorkItem {
    fn eq(&self, other: &Self) -> bool {
        (self.due_ns, self.seq) == (other.due_ns, other.seq)
    }
}
impl Eq for WorkItem {}
impl PartialOrd for WorkItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorkItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due_ns, self.seq).cmp(&(other.due_ns, other.seq))
    }
}

/// Statistics for a work queue.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkQueueStats {
    /// Items enqueued.
    pub queued: u64,
    /// Items executed.
    pub executed: u64,
}

/// A deterministic deferred-work queue driven by the simulated clock.
pub struct WorkQueue {
    clock: Arc<SimClock>,
    heap: Mutex<BinaryHeap<Reverse<WorkItem>>>,
    seq: AtomicU64,
    stats: Mutex<WorkQueueStats>,
}

impl WorkQueue {
    /// Creates a queue driven by `clock`.
    pub fn new(clock: Arc<SimClock>) -> Arc<WorkQueue> {
        Arc::new(WorkQueue {
            clock,
            heap: Mutex::new(BinaryHeap::new()),
            seq: AtomicU64::new(0),
            stats: Mutex::new(WorkQueueStats::default()),
        })
    }

    /// Enqueues `work` to run at the next pump.
    pub fn queue_work(&self, name: &'static str, work: impl FnOnce() + Send + 'static) {
        self.queue_delayed(name, 0, work);
    }

    /// Enqueues `work` to run once the clock has advanced `delay_ns`.
    pub fn queue_delayed(
        &self,
        name: &'static str,
        delay_ns: u64,
        work: impl FnOnce() + Send + 'static,
    ) {
        let due_ns = self.clock.now_ns().saturating_add(delay_ns);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.heap.lock().push(Reverse(WorkItem {
            due_ns,
            seq,
            name,
            work: Box::new(work),
        }));
        self.stats.lock().queued += 1;
    }

    /// Enqueues `work` to run every `interval_ns`, kupdate-style: the
    /// item re-arms itself after each run, so the callback keeps firing
    /// at every interval boundary for as long as the queue is pumped.
    /// The queue holds only a weak self-reference, so dropping every
    /// external `Arc<WorkQueue>` stops the timer. This is the periodic
    /// half the one-shot [`WorkQueue::queue_delayed`] can't express
    /// without the caller manually re-arming — the journal's timer
    /// commit (and anything else `kupdate`-shaped) hangs off it.
    pub fn queue_periodic(
        self: &Arc<Self>,
        name: &'static str,
        interval_ns: u64,
        work: impl Fn() + Send + Sync + 'static,
    ) {
        fn arm(
            wq: &Arc<WorkQueue>,
            name: &'static str,
            interval_ns: u64,
            work: Arc<dyn Fn() + Send + Sync>,
        ) {
            let weak = Arc::downgrade(wq);
            wq.queue_delayed(name, interval_ns, move || {
                work();
                if let Some(wq) = weak.upgrade() {
                    arm(&wq, name, interval_ns, work);
                }
            });
        }
        arm(self, name, interval_ns, Arc::new(work));
    }

    /// Runs every item due at the current simulated time, in deadline (then
    /// FIFO) order. Items enqueued *by running work* run too if already
    /// due. Returns the number executed.
    pub fn pump(&self) -> usize {
        let mut ran = 0;
        loop {
            let item = {
                let mut heap = self.heap.lock();
                match heap.peek() {
                    Some(Reverse(item)) if item.due_ns <= self.clock.now_ns() => {
                        heap.pop().map(|Reverse(i)| i)
                    }
                    _ => None,
                }
            };
            let Some(item) = item else { break };
            let _ = item.name;
            (item.work)();
            self.stats.lock().executed += 1;
            ran += 1;
        }
        ran
    }

    /// Items waiting (due or not).
    pub fn pending(&self) -> usize {
        self.heap.lock().len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> WorkQueueStats {
        *self.stats.lock()
    }
}

/// A deferred maintenance callback run by the [`Flusher`] each pass —
/// e.g. draining a journal's checkpoint backlog before cache writeback.
pub type FlushHook = Box<dyn Fn() -> KResult<()> + Send + Sync>;

/// The writeback daemon: periodically flushes the buffer cache through a
/// work queue, rescheduling itself — the substrate's `pdflush`.
pub struct Flusher {
    cache: Arc<BufferCache>,
    wq: Arc<WorkQueue>,
    interval_ns: u64,
    flushes: AtomicU64,
    hooks: Mutex<Vec<FlushHook>>,
}

impl Flusher {
    /// Creates a flusher over `cache`, waking every `interval_ns`.
    pub fn new(cache: Arc<BufferCache>, wq: Arc<WorkQueue>, interval_ns: u64) -> Arc<Flusher> {
        Arc::new(Flusher {
            cache,
            wq,
            interval_ns,
            flushes: AtomicU64::new(0),
            hooks: Mutex::new(Vec::new()),
        })
    }

    /// Registers a hook that runs at the start of every flush pass (the
    /// journal's deferred-checkpoint drain rides the writeback daemon this
    /// way, like jbd2's kjournald riding behind the flusher threads).
    pub fn add_hook(&self, hook: impl Fn() -> KResult<()> + Send + Sync + 'static) {
        self.hooks.lock().push(Box::new(hook));
    }

    /// Arms the first wakeup.
    pub fn start(self: &Arc<Self>) {
        let me = Arc::clone(self);
        self.wq
            .queue_delayed("flusher", self.interval_ns, move || me.run_once());
    }

    fn run_once(self: Arc<Self>) {
        let _ = self.flush_now();
        let me = Arc::clone(&self);
        self.wq
            .queue_delayed("flusher", self.interval_ns, move || me.run_once());
    }

    /// Flushes immediately (also used by sync paths). Hooks run first so
    /// journal checkpoints release their Delay pins before writeback
    /// collects the dirty set; the first error wins but writeback still
    /// runs.
    pub fn flush_now(&self) -> KResult<()> {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        let mut first_err = Ok(());
        for hook in self.hooks.lock().iter() {
            let res = hook();
            if first_err.is_ok() {
                first_err = res;
            }
        }
        self.cache.sync_all()?;
        first_err
    }

    /// Number of writeback passes performed.
    pub fn flush_count(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockDevice, RamDisk, BLOCK_SIZE};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn immediate_work_runs_on_pump() {
        let clock = Arc::new(SimClock::new());
        let wq = WorkQueue::new(Arc::clone(&clock));
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        wq.queue_work("t", move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(wq.pending(), 1);
        assert_eq!(wq.pump(), 1);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        assert_eq!(wq.pending(), 0);
    }

    #[test]
    fn delayed_work_waits_for_the_clock() {
        let clock = Arc::new(SimClock::new());
        let wq = WorkQueue::new(Arc::clone(&clock));
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        wq.queue_delayed("t", 100, move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(wq.pump(), 0, "not due yet");
        clock.advance(99);
        assert_eq!(wq.pump(), 0);
        clock.advance(1);
        assert_eq!(wq.pump(), 1);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn due_items_run_in_deadline_then_fifo_order() {
        let clock = Arc::new(SimClock::new());
        let wq = WorkQueue::new(Arc::clone(&clock));
        let log = Arc::new(Mutex::new(Vec::new()));
        for (delay, tag) in [(50u64, "b"), (10, "a"), (50, "c")] {
            let log = Arc::clone(&log);
            wq.queue_delayed("t", delay, move || log.lock().push(tag));
        }
        clock.advance(100);
        assert_eq!(wq.pump(), 3);
        assert_eq!(*log.lock(), vec!["a", "b", "c"]);
    }

    #[test]
    fn work_can_enqueue_more_work() {
        let clock = Arc::new(SimClock::new());
        let wq = WorkQueue::new(Arc::clone(&clock));
        let counter = Arc::new(AtomicUsize::new(0));
        let wq2 = Arc::clone(&wq);
        let c = Arc::clone(&counter);
        wq.queue_work("outer", move || {
            let c2 = Arc::clone(&c);
            c.fetch_add(1, Ordering::Relaxed);
            wq2.queue_work("inner", move || {
                c2.fetch_add(10, Ordering::Relaxed);
            });
        });
        assert_eq!(wq.pump(), 2, "chained item ran in the same pump");
        assert_eq!(counter.load(Ordering::Relaxed), 11);
        assert_eq!(wq.stats().executed, 2);
    }

    #[test]
    fn periodic_work_rearms_itself_each_interval() {
        let clock = Arc::new(SimClock::new());
        let wq = WorkQueue::new(Arc::clone(&clock));
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        wq.queue_periodic("kupdate", 100, move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(wq.pump(), 0, "not due before the first interval");
        for tick in 1..=3 {
            clock.advance(100);
            assert_eq!(wq.pump(), 1);
            assert_eq!(counter.load(Ordering::Relaxed), tick);
        }
        // A large jump runs the item once, then re-arms from *now* — the
        // deterministic analogue of kupdate catching up after a stall.
        clock.advance(1_000);
        assert_eq!(wq.pump(), 1);
        assert_eq!(wq.pending(), 1, "still armed for the next interval");
    }

    #[test]
    fn flush_hooks_run_before_writeback_and_errors_surface() {
        let clock = Arc::new(SimClock::new());
        let dev = Arc::new(RamDisk::with_geometry(16, BLOCK_SIZE, Arc::clone(&clock)));
        let cache = Arc::new(BufferCache::new(
            Arc::clone(&dev) as Arc<dyn BlockDevice>,
            8,
        ));
        let wq = WorkQueue::new(Arc::clone(&clock));
        let flusher = Flusher::new(Arc::clone(&cache), Arc::clone(&wq), 1_000);
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        flusher.add_hook(move || {
            r.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        flusher.add_hook(|| Err(crate::errno::Errno::EIO));
        assert_eq!(flusher.flush_now(), Err(crate::errno::Errno::EIO));
        assert_eq!(ran.load(Ordering::Relaxed), 1, "earlier hooks still ran");
        assert_eq!(flusher.flush_count(), 1);
    }

    #[test]
    fn flusher_writes_back_dirty_buffers_periodically() {
        let clock = Arc::new(SimClock::new());
        let dev = Arc::new(RamDisk::with_geometry(16, BLOCK_SIZE, Arc::clone(&clock)));
        let cache = Arc::new(BufferCache::new(
            Arc::clone(&dev) as Arc<dyn BlockDevice>,
            8,
        ));
        let wq = WorkQueue::new(Arc::clone(&clock));
        let flusher = Flusher::new(Arc::clone(&cache), Arc::clone(&wq), 1_000_000);
        flusher.start();

        let buf = cache.bread(3).unwrap();
        buf.write(|d| d[0] = 0xDD);
        // Not yet flushed: the raw device still has zeros... but the IO
        // latency model advanced the clock during bread; pump only runs
        // the flusher once its interval elapses from arming time.
        let mut out = vec![0u8; BLOCK_SIZE];
        dev.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 0);
        clock.advance(1_000_000);
        assert!(wq.pump() >= 1);
        dev.read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 0xDD, "the daemon wrote it back");
        assert!(flusher.flush_count() >= 1);
        // And it re-armed itself.
        assert_eq!(wq.pending(), 1);
        clock.advance(1_000_000);
        assert!(wq.pump() >= 1);
        assert!(flusher.flush_count() >= 2);
    }
}
