//! Buffer cache with Linux `buffer_head` state flags.
//!
//! The paper's §4.4 singles out `buffer_head` as its example of complex
//! interface semantics: "includes 16 state flags … set independently,
//! resulting in many possible combinations of states. Not all of the
//! combinations are valid, but even determining which are can be
//! complicated." This module reproduces that interface: a write-back buffer
//! cache whose buffers carry the sixteen flags, set independently by file
//! systems and the journal, plus a [`BufferHead::validate`] routine encoding
//! the legal-combination rules — the machine-checkable fragment of the
//! specification the paper says a verified file system would need.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::block::BlockDevice;
use crate::errno::KResult;
use crate::lock::{LockRegistry, TrackedMutex, TrackedRwLock};

/// The sixteen `buffer_head` state flags (names follow Linux's
/// `enum bh_state_bits`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
#[allow(missing_docs)]
pub enum BhFlag {
    Uptodate = 1 << 0,
    Dirty = 1 << 1,
    Lock = 1 << 2,
    Req = 1 << 3,
    Mapped = 1 << 4,
    New = 1 << 5,
    AsyncRead = 1 << 6,
    AsyncWrite = 1 << 7,
    Delay = 1 << 8,
    Boundary = 1 << 9,
    WriteEio = 1 << 10,
    Unwritten = 1 << 11,
    Quiet = 1 << 12,
    Meta = 1 << 13,
    Prio = 1 << 14,
    DeferCompletion = 1 << 15,
}

/// All sixteen flags, for exhaustive enumeration in tests and the study.
pub const ALL_FLAGS: [BhFlag; 16] = [
    BhFlag::Uptodate,
    BhFlag::Dirty,
    BhFlag::Lock,
    BhFlag::Req,
    BhFlag::Mapped,
    BhFlag::New,
    BhFlag::AsyncRead,
    BhFlag::AsyncWrite,
    BhFlag::Delay,
    BhFlag::Boundary,
    BhFlag::WriteEio,
    BhFlag::Unwritten,
    BhFlag::Quiet,
    BhFlag::Meta,
    BhFlag::Prio,
    BhFlag::DeferCompletion,
];

/// A packed set of [`BhFlag`]s.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferState(pub u16);

impl BufferState {
    /// The empty state.
    pub const EMPTY: BufferState = BufferState(0);

    /// True if `flag` is set.
    pub fn has(self, flag: BhFlag) -> bool {
        self.0 & flag as u16 != 0
    }

    /// Returns the state with `flag` set.
    #[must_use]
    pub fn with(self, flag: BhFlag) -> BufferState {
        BufferState(self.0 | flag as u16)
    }

    /// Returns the state with `flag` cleared.
    #[must_use]
    pub fn without(self, flag: BhFlag) -> BufferState {
        BufferState(self.0 & !(flag as u16))
    }
}

/// A violated `buffer_head` flag invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagViolation {
    /// `Dirty` without `Uptodate`: modified contents that were never valid.
    DirtyNotUptodate,
    /// `Dirty` without `Mapped`: nothing to write the buffer back to.
    DirtyNotMapped,
    /// `Unwritten` without `Mapped`: an unwritten extent must be mapped.
    UnwrittenNotMapped,
    /// `New` without `Mapped`: `New` marks a freshly mapped block.
    NewNotMapped,
    /// `AsyncRead` without `Lock`: IO in flight must hold the buffer lock.
    AsyncReadNotLocked,
    /// `AsyncWrite` without `Lock`.
    AsyncWriteNotLocked,
    /// `AsyncRead` and `AsyncWrite` simultaneously.
    ReadWriteRace,
    /// `Unwritten` and `Dirty` simultaneously (ext4 converts before dirtying).
    DirtyUnwritten,
}

/// Checks the legal-combination rules for a flag state.
///
/// These eight rules are the subset of `buffer_head` semantics that the
/// workspace's file systems and journal rely on; they correspond to the
/// axioms the §4.4 "axiomatic model of unverified code" exports.
pub fn validate_state(s: BufferState) -> Result<(), FlagViolation> {
    use BhFlag::*;
    if s.has(Dirty) && !s.has(Uptodate) {
        return Err(FlagViolation::DirtyNotUptodate);
    }
    if s.has(Dirty) && !s.has(Mapped) {
        return Err(FlagViolation::DirtyNotMapped);
    }
    if s.has(Unwritten) && !s.has(Mapped) {
        return Err(FlagViolation::UnwrittenNotMapped);
    }
    if s.has(New) && !s.has(Mapped) {
        return Err(FlagViolation::NewNotMapped);
    }
    if s.has(AsyncRead) && !s.has(Lock) {
        return Err(FlagViolation::AsyncReadNotLocked);
    }
    if s.has(AsyncWrite) && !s.has(Lock) {
        return Err(FlagViolation::AsyncWriteNotLocked);
    }
    if s.has(AsyncRead) && s.has(AsyncWrite) {
        return Err(FlagViolation::ReadWriteRace);
    }
    if s.has(Unwritten) && s.has(Dirty) {
        return Err(FlagViolation::DirtyUnwritten);
    }
    Ok(())
}

/// In-memory state of one cached block.
#[derive(Debug)]
pub struct BufferHead {
    /// The block this buffer shadows.
    pub blkno: u64,
    /// Block contents.
    pub data: Vec<u8>,
    /// Packed flag state.
    pub state: BufferState,
}

impl BufferHead {
    /// Validates the flag combination currently set on this buffer.
    pub fn validate(&self) -> Result<(), FlagViolation> {
        validate_state(self.state)
    }
}

/// A cached buffer; shared between the cache and its users.
pub struct Buffer {
    blkno: u64,
    head: TrackedMutex<BufferHead>,
    /// Global LRU tick of the last access — updated with a relaxed store
    /// so the read fast path never takes an exclusive cache lock.
    last_used: AtomicU64,
}

impl Buffer {
    /// The block number this buffer shadows.
    pub fn blkno(&self) -> u64 {
        self.blkno
    }

    /// Runs `f` over the buffer contents.
    pub fn read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.head.lock().data)
    }

    /// Runs `f` over mutable contents and marks the buffer dirty
    /// (`Dirty | Uptodate | Mapped`), clearing `New`.
    pub fn write<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut h = self.head.lock();
        let r = f(&mut h.data);
        h.state = h
            .state
            .with(BhFlag::Uptodate)
            .with(BhFlag::Mapped)
            .with(BhFlag::Dirty)
            .without(BhFlag::New);
        r
    }

    /// Current flag state.
    pub fn state(&self) -> BufferState {
        self.head.lock().state
    }

    /// Sets a flag (raw access for legacy code and the journal).
    pub fn set_flag(&self, flag: BhFlag) {
        let mut h = self.head.lock();
        h.state = h.state.with(flag);
    }

    /// Clears a flag.
    pub fn clear_flag(&self, flag: BhFlag) {
        let mut h = self.head.lock();
        h.state = h.state.without(flag);
    }

    /// Tests a flag.
    pub fn test_flag(&self, flag: BhFlag) -> bool {
        self.head.lock().state.has(flag)
    }

    /// Validates the current flag combination.
    pub fn validate(&self) -> Result<(), FlagViolation> {
        self.head.lock().validate()
    }
}

/// Cache statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that went to the device.
    pub misses: u64,
    /// Dirty buffers written back.
    pub writebacks: u64,
    /// Clean buffers evicted to stay under capacity.
    pub evictions: u64,
    /// Blocks prefetched by sequential readahead.
    pub readaheads: u64,
}

/// Default shard count for [`BufferCache`] (a modest power of two: enough
/// to take lock contention off the storage hot path without fragmenting
/// small caches).
pub const DEFAULT_SHARDS: usize = 8;

/// One lock stripe: a hash-partitioned slice of the cache.
struct Shard {
    map: HashMap<u64, Arc<Buffer>>,
}

/// Per-shard statistics counters. Atomics so the read fast path (shard
/// read lock only) can still count hits.
#[derive(Default)]
struct ShardStats {
    hits: AtomicU64,
    misses: AtomicU64,
    writebacks: AtomicU64,
    evictions: AtomicU64,
    readaheads: AtomicU64,
}

impl ShardStats {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            readaheads: self.readaheads.load(Ordering::Relaxed),
        }
    }
}

/// Sequential-pattern detector state (one slot per concurrent sequential
/// stream, as Linux keeps per-file readahead state). Global across shards
/// — a stream's blocks stripe over all of them.
struct ReadaheadState {
    stream_cursors: [u64; 4],
    /// Round-robin eviction index for `stream_cursors`.
    cursor_clock: usize,
}

/// A write-back buffer cache over a block device, lock-striped into
/// [`DEFAULT_SHARDS`] shards (hash of the block number picks the stripe).
///
/// Reads of already-cached buffers take only a shard *read* lock plus the
/// buffer's own mutex; LRU position is a relaxed atomic tick on the
/// buffer, so concurrent readers of different blocks — and even of the
/// same shard — never serialize on an exclusive cache lock. Device IO
/// (miss fill, readahead) happens outside every shard lock, so slow
/// simulated IO overlaps across threads instead of queueing behind one
/// cache-wide mutex.
pub struct BufferCache {
    dev: Arc<dyn BlockDevice>,
    /// Per-shard buffer capacity (total ≈ `per_shard_cap × shards.len()`).
    per_shard_cap: usize,
    shards: Vec<TrackedRwLock<Shard>>,
    stats: Vec<ShardStats>,
    /// Global LRU tick source.
    tick: AtomicU64,
    /// Prefetch depth; 0 disables readahead.
    readahead: AtomicUsize,
    ra: TrackedMutex<ReadaheadState>,
    /// Lockdep registry observing the shard locks, buffer-head mutexes
    /// and the `BlockDevice` boundary.
    registry: Arc<LockRegistry>,
}

impl BufferCache {
    /// Creates a cache of at most `capacity` buffers over `dev`, striped
    /// into [`DEFAULT_SHARDS`] shards (fewer for tiny capacities).
    /// Lockdep is disabled; use [`BufferCache::with_registry`] to observe
    /// this cache in a shared registry.
    pub fn new(dev: Arc<dyn BlockDevice>, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self::with_shards(dev, capacity, DEFAULT_SHARDS)
    }

    /// Creates a cache with an explicit shard count (clamped to
    /// `[1, capacity]` so every shard holds at least one buffer). The
    /// single-shard configuration reproduces the old global-lock design
    /// for ablation benchmarks. Lockdep is disabled.
    pub fn with_shards(dev: Arc<dyn BlockDevice>, capacity: usize, shards: usize) -> Self {
        Self::with_registry(dev, capacity, shards, LockRegistry::new_disabled())
    }

    /// Creates a cache whose locks report to `registry`, so one lockdep
    /// graph can observe the cache together with the journal and file
    /// system built on top of it.
    pub fn with_registry(
        dev: Arc<dyn BlockDevice>,
        capacity: usize,
        shards: usize,
        registry: Arc<LockRegistry>,
    ) -> Self {
        let capacity = capacity.max(1);
        let nshards = shards.clamp(1, capacity);
        BufferCache {
            dev,
            per_shard_cap: (capacity / nshards).max(1),
            shards: (0..nshards)
                .map(|i| {
                    TrackedRwLock::new_ranked(
                        &registry,
                        "buffer.shard",
                        i as u64,
                        Shard {
                            map: HashMap::new(),
                        },
                    )
                })
                .collect(),
            stats: (0..nshards).map(|_| ShardStats::default()).collect(),
            tick: AtomicU64::new(0),
            readahead: AtomicUsize::new(0),
            ra: TrackedMutex::new(
                &registry,
                "buffer.readahead",
                ReadaheadState {
                    stream_cursors: [u64::MAX; 4],
                    cursor_clock: 0,
                },
            ),
            registry,
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.dev
    }

    /// The lockdep registry this cache reports to.
    pub fn lock_registry(&self) -> &Arc<LockRegistry> {
        &self.registry
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Enables sequential readahead: when `bread` detects a sequential
    /// pattern (block N follows block N-1), the next `depth` blocks are
    /// prefetched. `0` disables.
    pub fn set_readahead(&self, depth: usize) {
        self.readahead.store(depth, Ordering::Relaxed);
    }

    /// Shard index for a block number (multiplicative hash so strided
    /// access patterns still spread across stripes).
    fn shard_of(&self, blkno: u64) -> usize {
        let h = blkno.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.shards.len()
    }

    fn touch(&self, buf: &Buffer) {
        let t = self.tick.fetch_add(1, Ordering::Relaxed);
        buf.last_used.store(t, Ordering::Relaxed);
    }

    fn new_buffer(&self, blkno: u64, data: Vec<u8>, state: BufferState) -> Arc<Buffer> {
        let buf = Arc::new(Buffer {
            blkno,
            head: TrackedMutex::new(
                &self.registry,
                "buffer.head",
                BufferHead { blkno, data, state },
            ),
            last_used: AtomicU64::new(0),
        });
        self.touch(&buf);
        buf
    }

    /// Evicts clean, unreferenced buffers (least-recently used first)
    /// until the shard fits its capacity; buffers still referenced
    /// elsewhere are skipped. Dirty victims are *not* written back here —
    /// the caller holds the shard write lock, and device I/O under a
    /// shard lock is exactly what lockdep's held-across-I/O check
    /// forbids. They stay in the map and are returned for the caller to
    /// hand to [`BufferCache::writeback_deferred`] once the lock drops,
    /// which writes them back and then completes the eviction.
    ///
    /// Deferring (rather than remove-then-write) is load-bearing for the
    /// no-lost-update invariant: were a dirty victim removed before its
    /// home write landed, a concurrent miss on the same block would
    /// reserve a fresh buffer and fill it with the stale device image.
    #[must_use = "dirty victims must be written back after the shard lock drops"]
    fn shrink(&self, idx: usize, shard: &mut Shard) -> Vec<Arc<Buffer>> {
        let mut deferred: Vec<Arc<Buffer>> = Vec::new();
        if shard.map.len() <= self.per_shard_cap {
            return deferred;
        }
        let mut order: Vec<(u64, u64)> = shard
            .map
            .values()
            .map(|b| (b.last_used.load(Ordering::Relaxed), b.blkno()))
            .collect();
        order.sort_unstable();
        for (_, blkno) in order {
            if shard.map.len() <= self.per_shard_cap {
                break;
            }
            let buf = match shard.map.get(&blkno) {
                Some(b) => Arc::clone(b),
                None => continue,
            };
            // Two strong refs: the map's and ours.
            if Arc::strong_count(&buf) > 2 {
                continue;
            }
            // Delay-pinned: the newest image is not yet journal-durable,
            // so it must neither reach its home location nor be dropped.
            if buf.test_flag(BhFlag::Delay) {
                continue;
            }
            if buf.test_flag(BhFlag::Dirty) {
                deferred.push(buf);
                continue;
            }
            shard.map.remove(&blkno);
            self.stats[idx].evictions.fetch_add(1, Ordering::Relaxed);
        }
        deferred
    }

    /// Writes back the dirty victims a `shrink` pass deferred, then
    /// finishes their eviction. Must be called with no shard lock held:
    /// the device write happens lock-free, and the removal re-checks the
    /// buffer under the shard lock (a concurrent `bread` may have
    /// re-referenced, re-dirtied, or Delay-pinned it meanwhile — or
    /// replaced the map entry entirely).
    fn writeback_deferred(&self, deferred: &[Arc<Buffer>]) -> KResult<()> {
        for buf in deferred {
            let idx = self.shard_of(buf.blkno());
            self.writeback(idx, buf)?;
            let mut shard = self.shards[idx].write();
            match shard.map.get(&buf.blkno()) {
                Some(b) if Arc::ptr_eq(b, buf) => {}
                _ => continue,
            }
            // Two strong refs: the map's and the deferred list's.
            if Arc::strong_count(buf) > 2
                || buf.test_flag(BhFlag::Dirty)
                || buf.test_flag(BhFlag::Delay)
            {
                continue;
            }
            shard.map.remove(&buf.blkno());
            self.stats[idx].evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Writes one buffer back to the device. Dirtiness transfers to the
    /// in-flight IO at snapshot time: a concurrent re-dirty during the
    /// write stays set and reaches the device on the next sync, so no
    /// update is lost.
    fn writeback(&self, idx: usize, buf: &Buffer) -> KResult<()> {
        let data = {
            let mut h = buf.head.lock();
            h.state = h
                .state
                .with(BhFlag::Lock)
                .with(BhFlag::AsyncWrite)
                .without(BhFlag::Dirty);
            h.data.clone()
        };
        self.registry.note_blocking_io("write_block");
        let res = self.dev.write_block(buf.blkno(), &data);
        let mut h = buf.head.lock();
        h.state = h.state.without(BhFlag::AsyncWrite).without(BhFlag::Lock);
        match res {
            Ok(()) => {
                h.state = h.state.with(BhFlag::Req);
                self.stats[idx].writebacks.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                h.state = h.state.with(BhFlag::WriteEio).with(BhFlag::Dirty);
                Err(e)
            }
        }
    }

    /// Reads block `blkno` through the cache (`bread` in Linux terms):
    /// the returned buffer is `Uptodate | Mapped`.
    pub fn bread(&self, blkno: u64) -> KResult<Arc<Buffer>> {
        let idx = self.shard_of(blkno);
        // Fast path: shard read lock only. The common case — an
        // already-cached, uptodate buffer — never blocks other readers.
        // The lookup is a standalone statement so the read guard is
        // released before the miss path below takes the write lock
        // (an `if let` scrutinee guard would outlive the else branch
        // on edition 2021 and self-deadlock).
        let cached = self.shards[idx].read().map.get(&blkno).cloned();
        let mut deferred: Vec<Arc<Buffer>> = Vec::new();
        let buf = if let Some(buf) = cached {
            self.stats[idx].hits.fetch_add(1, Ordering::Relaxed);
            self.touch(&buf);
            buf
        } else {
            // Miss: reserve a placeholder under the shard write lock,
            // then fill it from the device *outside* the lock. The
            // reservation must come before the device read: with
            // read-then-insert, a concurrent thread can create, dirty,
            // write back, and evict a buffer for this block while our
            // read is in flight, and inserting our pre-writeback image
            // afterwards would silently discard its committed update.
            let mut shard = self.shards[idx].write();
            if let Some(raced) = shard.map.get(&blkno).cloned() {
                self.stats[idx].hits.fetch_add(1, Ordering::Relaxed);
                self.touch(&raced);
                raced
            } else {
                self.stats[idx].misses.fetch_add(1, Ordering::Relaxed);
                let buf = self.new_buffer(
                    blkno,
                    vec![0u8; self.dev.block_size()],
                    BufferState::EMPTY.with(BhFlag::Mapped),
                );
                shard.map.insert(blkno, Arc::clone(&buf));
                deferred = self.shrink(idx, &mut shard);
                buf
            }
        };
        self.writeback_deferred(&deferred)?;
        // Whether cached, raced, or freshly reserved: anything not yet
        // uptodate (placeholder or earlier getblk) is read in here, so
        // the documented `Uptodate | Mapped` contract holds on every
        // path. Device IO overlaps across threads — no shard lock held.
        self.fill_uptodate(&buf)?;
        self.maybe_readahead(blkno)?;
        Ok(buf)
    }

    /// Reads `buf` in from the device unless it is already uptodate.
    /// `Uptodate` is never cleared once set, so the re-check under the
    /// buffer's own mutex is decisive: a concurrent writer that made the
    /// buffer uptodate (and possibly dirty) wins, and the device image —
    /// which may predate that write — is discarded.
    fn fill_uptodate(&self, buf: &Arc<Buffer>) -> KResult<()> {
        if buf.test_flag(BhFlag::Uptodate) {
            return Ok(());
        }
        let mut data = vec![0u8; self.dev.block_size()];
        self.registry.note_blocking_io("read_block");
        self.dev.read_block(buf.blkno(), &mut data)?;
        let mut h = buf.head.lock();
        if !h.state.has(BhFlag::Uptodate) {
            h.data = data;
            h.state = h
                .state
                .with(BhFlag::Uptodate)
                .with(BhFlag::Mapped)
                .with(BhFlag::Req);
        }
        Ok(())
    }

    /// Sequential readahead: prefetch the blocks that are about to be
    /// asked for, while the "head" is in the neighbourhood. A block
    /// continues whichever stream it extends; otherwise it starts a new
    /// stream in a round-robin slot. The prefetch run is issued as one
    /// vectored [`BlockDevice::read_blocks`] extent.
    fn maybe_readahead(&self, blkno: u64) -> KResult<()> {
        let depth = self.readahead.load(Ordering::Relaxed);
        let sequential = {
            let mut ra = self.ra.lock();
            match ra
                .stream_cursors
                .iter()
                .position(|&c| c != u64::MAX && blkno == c + 1)
            {
                Some(slot) => {
                    ra.stream_cursors[slot] = blkno;
                    true
                }
                None => {
                    let slot = ra.cursor_clock;
                    ra.cursor_clock = (ra.cursor_clock + 1) % ra.stream_cursors.len();
                    ra.stream_cursors[slot] = blkno;
                    false
                }
            }
        };
        if !sequential || depth == 0 {
            return Ok(());
        }
        // Reserve placeholders for the run first, under each shard's
        // write lock; the run ends at device end or the first
        // already-cached block. Reserving before the vectored device
        // read closes the same stale-insert window as the bread miss
        // path: a block another thread caches (and possibly dirties and
        // writes back) meanwhile keeps that thread's buffer, and our
        // prefetched image only lands in buffers we reserved that are
        // still not uptodate.
        let bs = self.dev.block_size();
        let mut reserved: Vec<Arc<Buffer>> = Vec::new();
        let mut deferred: Vec<Arc<Buffer>> = Vec::new();
        for ahead in 0..depth as u64 {
            let next = blkno + 1 + ahead;
            if next >= self.dev.num_blocks() {
                break;
            }
            let idx = self.shard_of(next);
            let mut shard = self.shards[idx].write();
            if shard.map.contains_key(&next) {
                break;
            }
            let pre = self.new_buffer(next, vec![0u8; bs], BufferState::EMPTY.with(BhFlag::Mapped));
            shard.map.insert(next, Arc::clone(&pre));
            self.stats[idx].readaheads.fetch_add(1, Ordering::Relaxed);
            deferred.extend(self.shrink(idx, &mut shard));
            reserved.push(pre);
        }
        self.writeback_deferred(&deferred)?;
        if reserved.is_empty() {
            return Ok(());
        }
        let mut data = vec![0u8; reserved.len() * bs];
        self.registry.note_blocking_io("read_blocks");
        if self
            .dev
            .read_blocks(blkno + 1, reserved.len(), &mut data)
            .is_err()
        {
            // Prefetch is best-effort: the placeholders stay cached and
            // `bread` fills them on demand.
            return Ok(());
        }
        for (pre, chunk) in reserved.iter().zip(data.chunks(bs)) {
            let mut h = pre.head.lock();
            if !h.state.has(BhFlag::Uptodate) {
                h.data.copy_from_slice(chunk);
                h.state = h.state.with(BhFlag::Uptodate).with(BhFlag::Req);
            }
        }
        Ok(())
    }

    /// Gets a buffer for `blkno` without reading the device (`getblk`):
    /// contents are zeroed and the buffer is `Mapped | New`, not `Uptodate`.
    pub fn getblk(&self, blkno: u64) -> KResult<Arc<Buffer>> {
        let idx = self.shard_of(blkno);
        if let Some(buf) = self.shards[idx].read().map.get(&blkno).cloned() {
            self.stats[idx].hits.fetch_add(1, Ordering::Relaxed);
            self.touch(&buf);
            return Ok(buf);
        }
        let mut shard = self.shards[idx].write();
        if let Some(buf) = shard.map.get(&blkno).cloned() {
            self.stats[idx].hits.fetch_add(1, Ordering::Relaxed);
            self.touch(&buf);
            return Ok(buf);
        }
        self.stats[idx].misses.fetch_add(1, Ordering::Relaxed);
        let buf = self.new_buffer(
            blkno,
            vec![0u8; self.dev.block_size()],
            BufferState::EMPTY.with(BhFlag::Mapped).with(BhFlag::New),
        );
        shard.map.insert(blkno, Arc::clone(&buf));
        let deferred = self.shrink(idx, &mut shard);
        drop(shard);
        self.writeback_deferred(&deferred)?;
        Ok(buf)
    }

    /// Writes back one block if it is cached and dirty.
    pub fn sync_block(&self, blkno: u64) -> KResult<()> {
        let idx = self.shard_of(blkno);
        let buf = self.shards[idx].read().map.get(&blkno).cloned();
        if let Some(buf) = buf {
            if buf.test_flag(BhFlag::Dirty) && !buf.test_flag(BhFlag::Delay) {
                self.writeback(idx, &buf)?;
            }
        }
        Ok(())
    }

    /// Writes back every dirty buffer (ascending block order, for
    /// determinism) and issues a device flush barrier. Adjacent dirty
    /// blocks coalesce into vectored [`BlockDevice::write_blocks`]
    /// extents, charging one seek per run instead of one per block.
    pub fn sync_all(&self) -> KResult<()> {
        let mut dirty: Vec<Arc<Buffer>> = Vec::new();
        for shard in &self.shards {
            dirty.extend(
                shard
                    .read()
                    .map
                    .values()
                    // Delay-pinned buffers wait for their journal record
                    // to become durable before any home write.
                    .filter(|b| b.test_flag(BhFlag::Dirty) && !b.test_flag(BhFlag::Delay))
                    .cloned(),
            );
        }
        dirty.sort_by_key(|b| b.blkno());
        let mut run: Vec<Arc<Buffer>> = Vec::new();
        let mut payload: Vec<u8> = Vec::new();
        let mut i = 0;
        while i <= dirty.len() {
            let extends = i < dirty.len()
                && match run.last() {
                    Some(prev) => dirty[i].blkno() == prev.blkno() + 1,
                    None => true,
                };
            if extends {
                // Snapshot under the buffer lock, transferring dirtiness
                // to the in-flight extent (see `writeback`).
                let buf = &dirty[i];
                let mut h = buf.head.lock();
                h.state = h
                    .state
                    .with(BhFlag::Lock)
                    .with(BhFlag::AsyncWrite)
                    .without(BhFlag::Dirty);
                payload.extend_from_slice(&h.data);
                drop(h);
                run.push(Arc::clone(buf));
                i += 1;
                continue;
            }
            if !run.is_empty() {
                let start = run[0].blkno();
                self.registry.note_blocking_io("write_blocks");
                let res = self.dev.write_blocks(start, run.len(), &payload);
                for (j, buf) in run.iter().enumerate() {
                    let mut h = buf.head.lock();
                    h.state = h.state.without(BhFlag::AsyncWrite).without(BhFlag::Lock);
                    match &res {
                        Ok(()) => {
                            h.state = h.state.with(BhFlag::Req);
                            drop(h);
                            let idx = self.shard_of(start + j as u64);
                            self.stats[idx].writebacks.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            h.state = h.state.with(BhFlag::WriteEio).with(BhFlag::Dirty);
                        }
                    }
                }
                res?;
                run.clear();
                payload.clear();
            }
            if i >= dirty.len() {
                break;
            }
        }
        self.registry.note_blocking_io("flush");
        self.dev.flush()
    }

    /// Returns the cached buffer for `blkno`, if any, without touching
    /// LRU position, statistics, or the device — unlike [`Self::getblk`],
    /// a miss does not insert anything.
    pub fn peek(&self, blkno: u64) -> Option<Arc<Buffer>> {
        let idx = self.shard_of(blkno);
        self.shards[idx].read().map.get(&blkno).cloned()
    }

    /// Drops every cached buffer without writeback (used after a simulated
    /// crash, when cached state is by definition lost).
    pub fn invalidate(&self) {
        for shard in &self.shards {
            shard.write().map.clear();
        }
    }

    /// Drops the listed blocks' buffers without writeback — except
    /// buffers that are `Delay`-pinned, whose newest image belongs to an
    /// in-flight journal transaction and must stay visible to readers.
    /// Failed-commit paths use this to revert only their own published
    /// blocks instead of clobbering the whole cache.
    pub fn invalidate_blocks(&self, blknos: &[u64]) {
        for &blkno in blknos {
            let idx = self.shard_of(blkno);
            let mut shard = self.shards[idx].write();
            let pinned = shard
                .map
                .get(&blkno)
                .is_some_and(|b| b.test_flag(BhFlag::Delay));
            if !pinned {
                shard.map.remove(&blkno);
            }
        }
    }

    /// Number of buffers currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    /// True if the cache holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of cache statistics, summed over shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.stats {
            let snap = s.snapshot();
            total.hits += snap.hits;
            total.misses += snap.misses;
            total.writebacks += snap.writebacks;
            total.evictions += snap.evictions;
            total.readaheads += snap.readaheads;
        }
        total
    }

    /// Per-shard statistics snapshots (for the striping ablation).
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.stats.iter().map(|s| s.snapshot()).collect()
    }

    /// Validates the flag state of every cached buffer, returning the block
    /// numbers (with violations) that fail.
    pub fn validate_all(&self) -> Vec<(u64, FlagViolation)> {
        let mut bad: Vec<(u64, FlagViolation)> = Vec::new();
        for shard in &self.shards {
            bad.extend(
                shard
                    .read()
                    .map
                    .values()
                    .filter_map(|b| b.validate().err().map(|v| (b.blkno(), v))),
            );
        }
        bad.sort_by_key(|&(b, _)| b);
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{RamDisk, BLOCK_SIZE};

    fn cache(blocks: u64, cap: usize) -> BufferCache {
        BufferCache::new(Arc::new(RamDisk::new(blocks)), cap)
    }

    #[test]
    fn bread_sets_uptodate_mapped() {
        let c = cache(8, 4);
        let b = c.bread(0).unwrap();
        assert!(b.test_flag(BhFlag::Uptodate));
        assert!(b.test_flag(BhFlag::Mapped));
        assert!(!b.test_flag(BhFlag::Dirty));
        b.validate().unwrap();
    }

    #[test]
    fn getblk_is_new_not_uptodate() {
        let c = cache(8, 4);
        let b = c.getblk(1).unwrap();
        assert!(b.test_flag(BhFlag::New));
        assert!(!b.test_flag(BhFlag::Uptodate));
        b.validate().unwrap();
    }

    #[test]
    fn write_marks_dirty_and_sync_writes_back() {
        let c = cache(8, 4);
        let b = c.bread(2).unwrap();
        b.write(|d| d[0] = 0xEE);
        assert!(b.test_flag(BhFlag::Dirty));
        c.sync_all().unwrap();
        assert!(!b.test_flag(BhFlag::Dirty));
        let mut out = vec![0u8; BLOCK_SIZE];
        c.device().read_block(2, &mut out).unwrap();
        assert_eq!(out[0], 0xEE);
    }

    #[test]
    fn cache_hits_counted() {
        let c = cache(8, 4);
        c.bread(0).unwrap();
        c.bread(0).unwrap();
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn eviction_respects_capacity_and_writes_back_dirty() {
        // Single shard reproduces the global-LRU eviction order exactly.
        let c = BufferCache::with_shards(Arc::new(RamDisk::new(16)), 2, 1);
        for i in 0..4u64 {
            let b = c.bread(i).unwrap();
            b.write(|d| d[0] = i as u8);
            drop(b);
        }
        assert!(c.len() <= 2);
        assert!(c.stats().evictions >= 2);
        // Evicted dirty data must have reached the device.
        let mut out = vec![0u8; BLOCK_SIZE];
        c.device().read_block(0, &mut out).unwrap();
        assert_eq!(out[0], 0);
        c.device().read_block(1, &mut out).unwrap();
        assert_eq!(out[0], 1);
    }

    #[test]
    fn sharded_eviction_writes_back_dirty() {
        // With striping, which blocks evict is hash-dependent; what must
        // hold is that every dirty buffer's data is either still cached
        // or already on the device.
        let c = cache(64, 4);
        assert!(c.shard_count() > 1);
        for i in 0..16u64 {
            let b = c.bread(i).unwrap();
            b.write(|d| d[0] = 0x40 + i as u8);
            drop(b);
        }
        assert!(c.len() <= 8, "len {} exceeds total capacity", c.len());
        assert!(c.stats().evictions >= 8);
        c.sync_all().unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        for i in 0..16u64 {
            c.device().read_block(i, &mut out).unwrap();
            assert_eq!(out[0], 0x40 + i as u8, "block {i} lost its write");
        }
    }

    #[test]
    fn referenced_buffers_not_evicted() {
        let c = cache(16, 2);
        let held = c.bread(0).unwrap();
        for i in 1..5u64 {
            c.bread(i).unwrap();
        }
        // Buffer 0 is still reachable through `held` and must stay cached.
        let again = c.bread(0).unwrap();
        assert!(Arc::ptr_eq(&held, &again));
    }

    #[test]
    fn getblk_then_bread_reads_device() {
        let c = cache(8, 4);
        // Write directly to the device, then getblk (no read), then bread.
        let mut raw = vec![0u8; BLOCK_SIZE];
        raw[0] = 7;
        c.device().write_block(3, &raw).unwrap();
        let g = c.getblk(3).unwrap();
        assert!(!g.test_flag(BhFlag::Uptodate));
        let b = c.bread(3).unwrap();
        assert!(b.test_flag(BhFlag::Uptodate));
        assert_eq!(b.read(|d| d[0]), 7);
    }

    #[test]
    fn validate_rejects_illegal_combinations() {
        use BhFlag::*;
        let bad = BufferState::EMPTY.with(Dirty).with(Mapped);
        assert_eq!(validate_state(bad), Err(FlagViolation::DirtyNotUptodate));
        let bad = BufferState::EMPTY.with(Dirty).with(Uptodate);
        assert_eq!(validate_state(bad), Err(FlagViolation::DirtyNotMapped));
        let bad = BufferState::EMPTY.with(AsyncRead);
        assert_eq!(validate_state(bad), Err(FlagViolation::AsyncReadNotLocked));
        let bad = BufferState::EMPTY
            .with(AsyncRead)
            .with(AsyncWrite)
            .with(Lock);
        assert_eq!(validate_state(bad), Err(FlagViolation::ReadWriteRace));
        let ok = BufferState::EMPTY.with(Uptodate).with(Mapped).with(Dirty);
        assert_eq!(validate_state(ok), Ok(()));
    }

    #[test]
    fn validate_all_reports_bad_buffers() {
        let c = cache(8, 4);
        let b = c.bread(1).unwrap();
        // Force an illegal combination through the raw flag API.
        b.set_flag(BhFlag::AsyncWrite);
        let bad = c.validate_all();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, 1);
        assert_eq!(bad[0].1, FlagViolation::AsyncWriteNotLocked);
    }

    #[test]
    fn flag_set_has_sixteen_distinct_bits() {
        let mut seen = std::collections::HashSet::new();
        for f in ALL_FLAGS {
            assert!(seen.insert(f as u16));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn readahead_prefetches_sequential_runs() {
        let c = cache(64, 32);
        c.set_readahead(4);
        // Random access: no prefetch.
        c.bread(10).unwrap();
        c.bread(30).unwrap();
        assert_eq!(c.stats().readaheads, 0);
        // Sequential: 30 then 31 triggers prefetch of 32..=35.
        c.bread(31).unwrap();
        assert_eq!(c.stats().readaheads, 4);
        let misses_before = c.stats().misses;
        c.bread(32).unwrap();
        c.bread(33).unwrap();
        assert_eq!(c.stats().misses, misses_before, "prefetched blocks hit");
        // Prefetched buffers carry a valid flag state.
        assert!(c.validate_all().is_empty());
    }

    #[test]
    fn readahead_tracks_interleaved_streams() {
        // Two sequential streams, interleaved — per-stream cursors keep
        // both hot (the single-cursor design loses both).
        let c = cache(2048, 64);
        c.set_readahead(4);
        c.bread(0).unwrap();
        c.bread(1000).unwrap();
        c.bread(1).unwrap(); // continues stream A
        c.bread(1001).unwrap(); // continues stream B
        assert_eq!(c.stats().readaheads, 8, "both streams prefetched");
    }

    #[test]
    fn readahead_respects_device_end() {
        let c = cache(8, 8);
        c.set_readahead(8);
        c.bread(6).unwrap();
        c.bread(7).unwrap(); // sequential at the last block
        assert_eq!(c.stats().readaheads, 0, "nothing past the end");
    }

    /// Regression for the bread miss-path lost-update race: with
    /// read-then-insert, a thread's cold miss could read the device and
    /// lose the CPU while another thread inserted, dirtied, wrote back,
    /// and evicted the same block, then insert its stale pre-writeback
    /// image as clean and uptodate. The slow device stretches every read
    /// so the window — now closed by reserve-then-fill — is hit
    /// constantly if it exists at all.
    #[test]
    fn concurrent_cold_misses_lose_no_updates_on_slow_device() {
        use std::thread;

        struct SlowDev(RamDisk);
        impl BlockDevice for SlowDev {
            fn num_blocks(&self) -> u64 {
                self.0.num_blocks()
            }
            fn block_size(&self) -> usize {
                self.0.block_size()
            }
            fn read_block(&self, b: u64, buf: &mut [u8]) -> KResult<()> {
                std::thread::sleep(std::time::Duration::from_micros(20));
                self.0.read_block(b, buf)
            }
            fn write_block(&self, b: u64, buf: &[u8]) -> KResult<()> {
                self.0.write_block(b, buf)
            }
            fn flush(&self) -> KResult<()> {
                self.0.flush()
            }
            fn stats(&self) -> crate::block::DeviceStats {
                self.0.stats()
            }
        }

        const THREADS: usize = 4;
        const INCS: usize = 150;
        // More hot blocks than threads: shrink refuses to evict a
        // buffer some thread still holds, so with as many blocks as
        // threads the cache can reach a stable all-resident state and
        // stop missing entirely. With 8 blocks and at most 4 held,
        // every shrink finds an unreferenced victim and churn persists.
        const HOT_BLOCKS: u64 = 8;
        let dev: Arc<dyn BlockDevice> = Arc::new(SlowDev(RamDisk::new(16)));
        // Capacity 1, one shard: every miss immediately evicts (and
        // writes back) whatever the other threads just dirtied.
        let c = Arc::new(BufferCache::with_shards(Arc::clone(&dev), 1, 1));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                for i in 0..INCS {
                    let blk = (t as u64 + i as u64) % HOT_BLOCKS;
                    let buf = c.bread(blk).expect("bread");
                    buf.write(|d| d[t] = d[t].wrapping_add(1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        c.sync_all().unwrap();
        let mut expected = [[0u8; THREADS]; HOT_BLOCKS as usize];
        for t in 0..THREADS {
            for i in 0..INCS {
                expected[((t as u64 + i as u64) % HOT_BLOCKS) as usize][t] += 1;
            }
        }
        let mut out = vec![0u8; BLOCK_SIZE];
        for blk in 0..HOT_BLOCKS {
            dev.read_block(blk, &mut out).unwrap();
            for t in 0..THREADS {
                assert_eq!(
                    out[t], expected[blk as usize][t],
                    "block {blk} slot {t}: lost update"
                );
            }
        }
        assert!(c.stats().evictions > 0, "the cache actually churned");
    }

    #[test]
    fn peek_does_not_insert_or_count() {
        let c = cache(8, 4);
        assert!(c.peek(3).is_none());
        assert!(c.is_empty());
        c.bread(3).unwrap();
        let stats_before = c.stats();
        let b = c.peek(3).expect("cached");
        assert!(b.test_flag(BhFlag::Uptodate));
        assert_eq!(c.stats(), stats_before);
    }

    #[test]
    fn invalidate_blocks_spares_delay_pinned() {
        let c = cache(8, 8);
        let pinned = c.bread(1).unwrap();
        pinned.write(|d| d[0] = 9);
        pinned.set_flag(BhFlag::Delay);
        c.bread(2).unwrap();
        c.invalidate_blocks(&[1, 2]);
        assert!(c.peek(1).is_some(), "Delay-pinned buffer survives");
        assert!(c.peek(2).is_none(), "unpinned buffer dropped");
    }

    /// Regression for the shrink held-across-I/O bug: eviction used to
    /// write dirty victims back *inside* `shrink`, i.e. while the caller
    /// held the shard write lock — a blocking device write under a cache
    /// lock, the exact hazard lockdep's `BlockDevice`-boundary check
    /// exists to catch (and a real-kernel deadlock once the device path
    /// needs memory reclaim, which needs the cache lock). Reverting the
    /// deferred-writeback fix makes the `HeldAcrossIo` assertion fail.
    #[test]
    fn eviction_writeback_never_runs_under_a_shard_lock() {
        use crate::lock::{LockRegistry, Violation};
        let reg = LockRegistry::new();
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(16));
        // Capacity 1, one shard: every second miss must evict a dirty
        // victim, exercising the deferred-writeback path constantly.
        let c = BufferCache::with_registry(Arc::clone(&dev), 1, 1, Arc::clone(&reg));
        for i in 0..6u64 {
            let b = c.bread(i).unwrap();
            b.write(|d| d[0] = 0x50 + i as u8);
            drop(b);
        }
        c.sync_all().unwrap();
        let io: Vec<_> = reg
            .violations()
            .into_iter()
            .filter(|v| matches!(v, Violation::HeldAcrossIo { .. }))
            .collect();
        assert!(io.is_empty(), "device I/O under a shard lock: {io:?}");
        assert!(c.stats().evictions > 0, "eviction actually happened");
        // And the deferred writebacks lost nothing.
        let mut out = vec![0u8; BLOCK_SIZE];
        for i in 0..6u64 {
            dev.read_block(i, &mut out).unwrap();
            assert_eq!(out[0], 0x50 + i as u8, "block {i} lost its write");
        }
    }

    /// The whole cache hot path — misses, hits, eviction, readahead,
    /// sync — runs lockdep-clean: no cycles, no held-across-I/O, no
    /// same-class nesting.
    #[test]
    fn cache_hot_paths_are_lockdep_clean() {
        use crate::lock::LockRegistry;
        let reg = LockRegistry::new();
        let c = BufferCache::with_registry(Arc::new(RamDisk::new(64)), 8, 4, Arc::clone(&reg));
        c.set_readahead(4);
        for i in 0..32u64 {
            let b = c.bread(i % 20).unwrap();
            b.write(|d| d[1] = i as u8);
            drop(b);
        }
        c.sync_all().unwrap();
        c.invalidate_blocks(&[1, 2]);
        assert!(reg.violations().is_empty(), "{:?}", reg.violations());
        assert!(reg.class_count() >= 3, "shard, head, readahead classes");
    }

    #[test]
    fn invalidate_clears_cache() {
        let c = cache(8, 4);
        c.bread(0).unwrap();
        c.bread(1).unwrap();
        assert_eq!(c.len(), 2);
        c.invalidate();
        assert!(c.is_empty());
    }
}
