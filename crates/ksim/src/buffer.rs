//! Buffer cache with Linux `buffer_head` state flags.
//!
//! The paper's §4.4 singles out `buffer_head` as its example of complex
//! interface semantics: "includes 16 state flags … set independently,
//! resulting in many possible combinations of states. Not all of the
//! combinations are valid, but even determining which are can be
//! complicated." This module reproduces that interface: a write-back buffer
//! cache whose buffers carry the sixteen flags, set independently by file
//! systems and the journal, plus a [`BufferHead::validate`] routine encoding
//! the legal-combination rules — the machine-checkable fragment of the
//! specification the paper says a verified file system would need.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::block::BlockDevice;
use crate::errno::KResult;

/// The sixteen `buffer_head` state flags (names follow Linux's
/// `enum bh_state_bits`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
#[allow(missing_docs)]
pub enum BhFlag {
    Uptodate = 1 << 0,
    Dirty = 1 << 1,
    Lock = 1 << 2,
    Req = 1 << 3,
    Mapped = 1 << 4,
    New = 1 << 5,
    AsyncRead = 1 << 6,
    AsyncWrite = 1 << 7,
    Delay = 1 << 8,
    Boundary = 1 << 9,
    WriteEio = 1 << 10,
    Unwritten = 1 << 11,
    Quiet = 1 << 12,
    Meta = 1 << 13,
    Prio = 1 << 14,
    DeferCompletion = 1 << 15,
}

/// All sixteen flags, for exhaustive enumeration in tests and the study.
pub const ALL_FLAGS: [BhFlag; 16] = [
    BhFlag::Uptodate,
    BhFlag::Dirty,
    BhFlag::Lock,
    BhFlag::Req,
    BhFlag::Mapped,
    BhFlag::New,
    BhFlag::AsyncRead,
    BhFlag::AsyncWrite,
    BhFlag::Delay,
    BhFlag::Boundary,
    BhFlag::WriteEio,
    BhFlag::Unwritten,
    BhFlag::Quiet,
    BhFlag::Meta,
    BhFlag::Prio,
    BhFlag::DeferCompletion,
];

/// A packed set of [`BhFlag`]s.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferState(pub u16);

impl BufferState {
    /// The empty state.
    pub const EMPTY: BufferState = BufferState(0);

    /// True if `flag` is set.
    pub fn has(self, flag: BhFlag) -> bool {
        self.0 & flag as u16 != 0
    }

    /// Returns the state with `flag` set.
    #[must_use]
    pub fn with(self, flag: BhFlag) -> BufferState {
        BufferState(self.0 | flag as u16)
    }

    /// Returns the state with `flag` cleared.
    #[must_use]
    pub fn without(self, flag: BhFlag) -> BufferState {
        BufferState(self.0 & !(flag as u16))
    }
}

/// A violated `buffer_head` flag invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagViolation {
    /// `Dirty` without `Uptodate`: modified contents that were never valid.
    DirtyNotUptodate,
    /// `Dirty` without `Mapped`: nothing to write the buffer back to.
    DirtyNotMapped,
    /// `Unwritten` without `Mapped`: an unwritten extent must be mapped.
    UnwrittenNotMapped,
    /// `New` without `Mapped`: `New` marks a freshly mapped block.
    NewNotMapped,
    /// `AsyncRead` without `Lock`: IO in flight must hold the buffer lock.
    AsyncReadNotLocked,
    /// `AsyncWrite` without `Lock`.
    AsyncWriteNotLocked,
    /// `AsyncRead` and `AsyncWrite` simultaneously.
    ReadWriteRace,
    /// `Unwritten` and `Dirty` simultaneously (ext4 converts before dirtying).
    DirtyUnwritten,
}

/// Checks the legal-combination rules for a flag state.
///
/// These eight rules are the subset of `buffer_head` semantics that the
/// workspace's file systems and journal rely on; they correspond to the
/// axioms the §4.4 "axiomatic model of unverified code" exports.
pub fn validate_state(s: BufferState) -> Result<(), FlagViolation> {
    use BhFlag::*;
    if s.has(Dirty) && !s.has(Uptodate) {
        return Err(FlagViolation::DirtyNotUptodate);
    }
    if s.has(Dirty) && !s.has(Mapped) {
        return Err(FlagViolation::DirtyNotMapped);
    }
    if s.has(Unwritten) && !s.has(Mapped) {
        return Err(FlagViolation::UnwrittenNotMapped);
    }
    if s.has(New) && !s.has(Mapped) {
        return Err(FlagViolation::NewNotMapped);
    }
    if s.has(AsyncRead) && !s.has(Lock) {
        return Err(FlagViolation::AsyncReadNotLocked);
    }
    if s.has(AsyncWrite) && !s.has(Lock) {
        return Err(FlagViolation::AsyncWriteNotLocked);
    }
    if s.has(AsyncRead) && s.has(AsyncWrite) {
        return Err(FlagViolation::ReadWriteRace);
    }
    if s.has(Unwritten) && s.has(Dirty) {
        return Err(FlagViolation::DirtyUnwritten);
    }
    Ok(())
}

/// In-memory state of one cached block.
#[derive(Debug)]
pub struct BufferHead {
    /// The block this buffer shadows.
    pub blkno: u64,
    /// Block contents.
    pub data: Vec<u8>,
    /// Packed flag state.
    pub state: BufferState,
}

impl BufferHead {
    /// Validates the flag combination currently set on this buffer.
    pub fn validate(&self) -> Result<(), FlagViolation> {
        validate_state(self.state)
    }
}

/// A cached buffer; shared between the cache and its users.
pub struct Buffer {
    blkno: u64,
    head: Mutex<BufferHead>,
}

impl Buffer {
    /// The block number this buffer shadows.
    pub fn blkno(&self) -> u64 {
        self.blkno
    }

    /// Runs `f` over the buffer contents.
    pub fn read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.head.lock().data)
    }

    /// Runs `f` over mutable contents and marks the buffer dirty
    /// (`Dirty | Uptodate | Mapped`), clearing `New`.
    pub fn write<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut h = self.head.lock();
        let r = f(&mut h.data);
        h.state = h
            .state
            .with(BhFlag::Uptodate)
            .with(BhFlag::Mapped)
            .with(BhFlag::Dirty)
            .without(BhFlag::New);
        r
    }

    /// Current flag state.
    pub fn state(&self) -> BufferState {
        self.head.lock().state
    }

    /// Sets a flag (raw access for legacy code and the journal).
    pub fn set_flag(&self, flag: BhFlag) {
        let mut h = self.head.lock();
        h.state = h.state.with(flag);
    }

    /// Clears a flag.
    pub fn clear_flag(&self, flag: BhFlag) {
        let mut h = self.head.lock();
        h.state = h.state.without(flag);
    }

    /// Tests a flag.
    pub fn test_flag(&self, flag: BhFlag) -> bool {
        self.head.lock().state.has(flag)
    }

    /// Validates the current flag combination.
    pub fn validate(&self) -> Result<(), FlagViolation> {
        self.head.lock().validate()
    }
}

/// Cache statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that went to the device.
    pub misses: u64,
    /// Dirty buffers written back.
    pub writebacks: u64,
    /// Clean buffers evicted to stay under capacity.
    pub evictions: u64,
    /// Blocks prefetched by sequential readahead.
    pub readaheads: u64,
}

struct CacheInner {
    map: HashMap<u64, Arc<Buffer>>,
    /// LRU order, least-recent first.
    lru: Vec<u64>,
    stats: CacheStats,
    /// Recent stream cursors (sequential-pattern detector; one slot per
    /// concurrent sequential stream, as Linux keeps per-file readahead
    /// state).
    stream_cursors: [u64; 4],
    /// Round-robin eviction index for `stream_cursors`.
    cursor_clock: usize,
    /// Prefetch depth; 0 disables readahead.
    readahead: usize,
}

/// A write-back buffer cache over a block device.
pub struct BufferCache {
    dev: Arc<dyn BlockDevice>,
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl BufferCache {
    /// Creates a cache of at most `capacity` buffers over `dev`.
    pub fn new(dev: Arc<dyn BlockDevice>, capacity: usize) -> Self {
        BufferCache {
            dev,
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                lru: Vec::new(),
                stats: CacheStats::default(),
                stream_cursors: [u64::MAX; 4],
                cursor_clock: 0,
                readahead: 0,
            }),
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.dev
    }

    /// Enables sequential readahead: when `bread` detects a sequential
    /// pattern (block N follows block N-1), the next `depth` blocks are
    /// prefetched. `0` disables.
    pub fn set_readahead(&self, depth: usize) {
        self.inner.lock().readahead = depth;
    }

    fn touch(inner: &mut CacheInner, blkno: u64) {
        if let Some(pos) = inner.lru.iter().position(|&b| b == blkno) {
            inner.lru.remove(pos);
        }
        inner.lru.push(blkno);
    }

    /// Evicts clean, unreferenced buffers until the cache fits its capacity.
    /// Dirty buffers are written back first; buffers still referenced
    /// elsewhere are skipped.
    fn shrink(&self, inner: &mut CacheInner) -> KResult<()> {
        let mut idx = 0;
        while inner.map.len() > self.capacity && idx < inner.lru.len() {
            let blkno = inner.lru[idx];
            let buf = match inner.map.get(&blkno) {
                Some(b) => Arc::clone(b),
                None => {
                    inner.lru.remove(idx);
                    continue;
                }
            };
            // Two strong refs: the map's and ours.
            if Arc::strong_count(&buf) > 2 {
                idx += 1;
                continue;
            }
            if buf.test_flag(BhFlag::Dirty) {
                self.writeback(&buf, inner)?;
            }
            inner.map.remove(&blkno);
            inner.lru.remove(idx);
            inner.stats.evictions += 1;
        }
        Ok(())
    }

    fn writeback(&self, buf: &Buffer, inner: &mut CacheInner) -> KResult<()> {
        let data = {
            let mut h = buf.head.lock();
            h.state = h.state.with(BhFlag::Lock).with(BhFlag::AsyncWrite);
            h.data.clone()
        };
        let res = self.dev.write_block(buf.blkno(), &data);
        let mut h = buf.head.lock();
        h.state = h.state.without(BhFlag::AsyncWrite).without(BhFlag::Lock);
        match res {
            Ok(()) => {
                h.state = h.state.without(BhFlag::Dirty).with(BhFlag::Req);
                inner.stats.writebacks += 1;
                Ok(())
            }
            Err(e) => {
                h.state = h.state.with(BhFlag::WriteEio);
                Err(e)
            }
        }
    }

    /// Reads block `blkno` through the cache (`bread` in Linux terms):
    /// the returned buffer is `Uptodate | Mapped`.
    pub fn bread(&self, blkno: u64) -> KResult<Arc<Buffer>> {
        let mut inner = self.inner.lock();
        if let Some(buf) = inner.map.get(&blkno).cloned() {
            inner.stats.hits += 1;
            Self::touch(&mut inner, blkno);
            if buf.test_flag(BhFlag::Uptodate) {
                return Ok(buf);
            }
            // Cached but not uptodate (getblk'd earlier): read it in.
            let mut data = vec![0u8; self.dev.block_size()];
            self.dev.read_block(blkno, &mut data)?;
            let mut h = buf.head.lock();
            h.data = data;
            h.state = h.state.with(BhFlag::Uptodate).with(BhFlag::Mapped);
            drop(h);
            return Ok(buf);
        }
        inner.stats.misses += 1;
        let mut data = vec![0u8; self.dev.block_size()];
        self.dev.read_block(blkno, &mut data)?;
        let buf = Arc::new(Buffer {
            blkno,
            head: Mutex::new(BufferHead {
                blkno,
                data,
                state: BufferState::EMPTY
                    .with(BhFlag::Uptodate)
                    .with(BhFlag::Mapped)
                    .with(BhFlag::Req),
            }),
        });
        inner.map.insert(blkno, Arc::clone(&buf));
        Self::touch(&mut inner, blkno);
        // Sequential readahead: prefetch the blocks that are about to be
        // asked for, while the "head" is in the neighbourhood. A block
        // continues whichever stream it extends; otherwise it starts a new
        // stream in a round-robin slot.
        let sequential = match inner
            .stream_cursors
            .iter()
            .position(|&c| c != u64::MAX && blkno == c + 1)
        {
            Some(slot) => {
                inner.stream_cursors[slot] = blkno;
                true
            }
            None => {
                let slot = inner.cursor_clock;
                inner.cursor_clock = (inner.cursor_clock + 1) % inner.stream_cursors.len();
                inner.stream_cursors[slot] = blkno;
                false
            }
        };
        let depth = if sequential { inner.readahead } else { 0 };
        for ahead in 0..depth as u64 {
            let next = blkno + 1 + ahead;
            if next >= self.dev.num_blocks() || inner.map.contains_key(&next) {
                break;
            }
            let mut data = vec![0u8; self.dev.block_size()];
            if self.dev.read_block(next, &mut data).is_err() {
                break;
            }
            let pre = Arc::new(Buffer {
                blkno: next,
                head: Mutex::new(BufferHead {
                    blkno: next,
                    data,
                    state: BufferState::EMPTY
                        .with(BhFlag::Uptodate)
                        .with(BhFlag::Mapped)
                        .with(BhFlag::Req),
                }),
            });
            inner.map.insert(next, pre);
            Self::touch(&mut inner, next);
            inner.stats.readaheads += 1;
        }
        self.shrink(&mut inner)?;
        Ok(buf)
    }

    /// Gets a buffer for `blkno` without reading the device (`getblk`):
    /// contents are zeroed and the buffer is `Mapped | New`, not `Uptodate`.
    pub fn getblk(&self, blkno: u64) -> KResult<Arc<Buffer>> {
        let mut inner = self.inner.lock();
        if let Some(buf) = inner.map.get(&blkno).cloned() {
            inner.stats.hits += 1;
            Self::touch(&mut inner, blkno);
            return Ok(buf);
        }
        inner.stats.misses += 1;
        let buf = Arc::new(Buffer {
            blkno,
            head: Mutex::new(BufferHead {
                blkno,
                data: vec![0u8; self.dev.block_size()],
                state: BufferState::EMPTY.with(BhFlag::Mapped).with(BhFlag::New),
            }),
        });
        inner.map.insert(blkno, Arc::clone(&buf));
        Self::touch(&mut inner, blkno);
        self.shrink(&mut inner)?;
        Ok(buf)
    }

    /// Writes back one block if it is cached and dirty.
    pub fn sync_block(&self, blkno: u64) -> KResult<()> {
        let mut inner = self.inner.lock();
        if let Some(buf) = inner.map.get(&blkno).cloned() {
            if buf.test_flag(BhFlag::Dirty) {
                self.writeback(&buf, &mut inner)?;
            }
        }
        Ok(())
    }

    /// Writes back every dirty buffer (ascending block order, for
    /// determinism) and issues a device flush barrier.
    pub fn sync_all(&self) -> KResult<()> {
        let mut inner = self.inner.lock();
        let mut dirty: Vec<Arc<Buffer>> = inner
            .map
            .values()
            .filter(|b| b.test_flag(BhFlag::Dirty))
            .cloned()
            .collect();
        dirty.sort_by_key(|b| b.blkno());
        for buf in dirty {
            self.writeback(&buf, &mut inner)?;
        }
        drop(inner);
        self.dev.flush()
    }

    /// Drops every cached buffer without writeback (used after a simulated
    /// crash, when cached state is by definition lost).
    pub fn invalidate(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.lru.clear();
    }

    /// Number of buffers currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True if the cache holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Validates the flag state of every cached buffer, returning the block
    /// numbers (with violations) that fail.
    pub fn validate_all(&self) -> Vec<(u64, FlagViolation)> {
        let inner = self.inner.lock();
        let mut bad: Vec<(u64, FlagViolation)> = inner
            .map
            .values()
            .filter_map(|b| b.validate().err().map(|v| (b.blkno(), v)))
            .collect();
        bad.sort_by_key(|&(b, _)| b);
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{RamDisk, BLOCK_SIZE};

    fn cache(blocks: u64, cap: usize) -> BufferCache {
        BufferCache::new(Arc::new(RamDisk::new(blocks)), cap)
    }

    #[test]
    fn bread_sets_uptodate_mapped() {
        let c = cache(8, 4);
        let b = c.bread(0).unwrap();
        assert!(b.test_flag(BhFlag::Uptodate));
        assert!(b.test_flag(BhFlag::Mapped));
        assert!(!b.test_flag(BhFlag::Dirty));
        b.validate().unwrap();
    }

    #[test]
    fn getblk_is_new_not_uptodate() {
        let c = cache(8, 4);
        let b = c.getblk(1).unwrap();
        assert!(b.test_flag(BhFlag::New));
        assert!(!b.test_flag(BhFlag::Uptodate));
        b.validate().unwrap();
    }

    #[test]
    fn write_marks_dirty_and_sync_writes_back() {
        let c = cache(8, 4);
        let b = c.bread(2).unwrap();
        b.write(|d| d[0] = 0xEE);
        assert!(b.test_flag(BhFlag::Dirty));
        c.sync_all().unwrap();
        assert!(!b.test_flag(BhFlag::Dirty));
        let mut out = vec![0u8; BLOCK_SIZE];
        c.device().read_block(2, &mut out).unwrap();
        assert_eq!(out[0], 0xEE);
    }

    #[test]
    fn cache_hits_counted() {
        let c = cache(8, 4);
        c.bread(0).unwrap();
        c.bread(0).unwrap();
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn eviction_respects_capacity_and_writes_back_dirty() {
        let c = cache(16, 2);
        for i in 0..4u64 {
            let b = c.bread(i).unwrap();
            b.write(|d| d[0] = i as u8);
            drop(b);
        }
        assert!(c.len() <= 2);
        assert!(c.stats().evictions >= 2);
        // Evicted dirty data must have reached the device.
        let mut out = vec![0u8; BLOCK_SIZE];
        c.device().read_block(0, &mut out).unwrap();
        assert_eq!(out[0], 0);
        c.device().read_block(1, &mut out).unwrap();
        assert_eq!(out[0], 1);
    }

    #[test]
    fn referenced_buffers_not_evicted() {
        let c = cache(16, 2);
        let held = c.bread(0).unwrap();
        for i in 1..5u64 {
            c.bread(i).unwrap();
        }
        // Buffer 0 is still reachable through `held` and must stay cached.
        let again = c.bread(0).unwrap();
        assert!(Arc::ptr_eq(&held, &again));
    }

    #[test]
    fn getblk_then_bread_reads_device() {
        let c = cache(8, 4);
        // Write directly to the device, then getblk (no read), then bread.
        let mut raw = vec![0u8; BLOCK_SIZE];
        raw[0] = 7;
        c.device().write_block(3, &raw).unwrap();
        let g = c.getblk(3).unwrap();
        assert!(!g.test_flag(BhFlag::Uptodate));
        let b = c.bread(3).unwrap();
        assert!(b.test_flag(BhFlag::Uptodate));
        assert_eq!(b.read(|d| d[0]), 7);
    }

    #[test]
    fn validate_rejects_illegal_combinations() {
        use BhFlag::*;
        let bad = BufferState::EMPTY.with(Dirty).with(Mapped);
        assert_eq!(validate_state(bad), Err(FlagViolation::DirtyNotUptodate));
        let bad = BufferState::EMPTY.with(Dirty).with(Uptodate);
        assert_eq!(validate_state(bad), Err(FlagViolation::DirtyNotMapped));
        let bad = BufferState::EMPTY.with(AsyncRead);
        assert_eq!(validate_state(bad), Err(FlagViolation::AsyncReadNotLocked));
        let bad = BufferState::EMPTY
            .with(AsyncRead)
            .with(AsyncWrite)
            .with(Lock);
        assert_eq!(validate_state(bad), Err(FlagViolation::ReadWriteRace));
        let ok = BufferState::EMPTY.with(Uptodate).with(Mapped).with(Dirty);
        assert_eq!(validate_state(ok), Ok(()));
    }

    #[test]
    fn validate_all_reports_bad_buffers() {
        let c = cache(8, 4);
        let b = c.bread(1).unwrap();
        // Force an illegal combination through the raw flag API.
        b.set_flag(BhFlag::AsyncWrite);
        let bad = c.validate_all();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, 1);
        assert_eq!(bad[0].1, FlagViolation::AsyncWriteNotLocked);
    }

    #[test]
    fn flag_set_has_sixteen_distinct_bits() {
        let mut seen = std::collections::HashSet::new();
        for f in ALL_FLAGS {
            assert!(seen.insert(f as u16));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn readahead_prefetches_sequential_runs() {
        let c = cache(64, 32);
        c.set_readahead(4);
        // Random access: no prefetch.
        c.bread(10).unwrap();
        c.bread(30).unwrap();
        assert_eq!(c.stats().readaheads, 0);
        // Sequential: 30 then 31 triggers prefetch of 32..=35.
        c.bread(31).unwrap();
        assert_eq!(c.stats().readaheads, 4);
        let misses_before = c.stats().misses;
        c.bread(32).unwrap();
        c.bread(33).unwrap();
        assert_eq!(c.stats().misses, misses_before, "prefetched blocks hit");
        // Prefetched buffers carry a valid flag state.
        assert!(c.validate_all().is_empty());
    }

    #[test]
    fn readahead_tracks_interleaved_streams() {
        // Two sequential streams, interleaved — per-stream cursors keep
        // both hot (the single-cursor design loses both).
        let c = cache(2048, 64);
        c.set_readahead(4);
        c.bread(0).unwrap();
        c.bread(1000).unwrap();
        c.bread(1).unwrap(); // continues stream A
        c.bread(1001).unwrap(); // continues stream B
        assert_eq!(c.stats().readaheads, 8, "both streams prefetched");
    }

    #[test]
    fn readahead_respects_device_end() {
        let c = cache(8, 8);
        c.set_readahead(8);
        c.bread(6).unwrap();
        c.bread(7).unwrap(); // sequential at the last block
        assert_eq!(c.stats().readaheads, 0, "nothing past the end");
    }

    #[test]
    fn invalidate_clears_cache() {
        let c = cache(8, 4);
        c.bread(0).unwrap();
        c.bread(1).unwrap();
        assert_eq!(c.len(), 2);
        c.invalidate();
        assert!(c.is_empty());
    }
}
