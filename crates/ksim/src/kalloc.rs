//! Kernel object arena with generational handles.
//!
//! Linux kernel objects live in slab caches and are referenced by raw
//! pointers; use-after-free and double-free are therefore silent until they
//! corrupt something. This arena gives every object a slot plus a
//! **generation counter**: freeing a slot bumps the generation, so any stale
//! handle presented later is *detected* as [`AccessError::UseAfterFree`]
//! rather than silently reading recycled memory. The `sk-legacy` crate builds
//! its `void *` emulation on these handles, which is what lets the empirical
//! bug study count "this bug manifested" events without committing UB.
//!
//! Objects are stored type-erased (`dyn Any`); typed accessors return
//! [`AccessError::TypeConfusion`] on a mismatched downcast, the arena-level
//! analogue of casting a `void *` to the wrong struct.

use std::any::{type_name, Any, TypeId};

use parking_lot::Mutex;

/// An untyped handle to an arena object: slot index + generation.
///
/// Handles are `Copy` on purpose — like raw pointers, they can be duplicated
/// freely and may dangle; the arena detects dangling use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef {
    slot: u32,
    generation: u32,
}

impl ObjRef {
    /// A handle that never resolves, the arena's `NULL`.
    pub const NULL: ObjRef = ObjRef {
        slot: u32::MAX,
        generation: u32::MAX,
    };

    /// True if this is the null handle.
    pub fn is_null(self) -> bool {
        self == ObjRef::NULL
    }

    /// Packs the handle into a single machine word (slot in the high half).
    ///
    /// The legacy `ERR_PTR` emulation needs object references and error
    /// values to share one word, exactly as kernel pointers and `-errno` do.
    pub fn to_word(self) -> u64 {
        (u64::from(self.slot) << 32) | u64::from(self.generation)
    }

    /// Unpacks a handle previously packed with [`ObjRef::to_word`].
    pub fn from_word(w: u64) -> ObjRef {
        ObjRef {
            slot: (w >> 32) as u32,
            generation: w as u32,
        }
    }
}

/// Why an arena access failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessError {
    /// The handle's generation is stale: the object was freed (and the slot
    /// possibly reused). The C analogue is a use-after-free dereference.
    UseAfterFree,
    /// The slot was already free when a free was requested: double free.
    DoubleFree,
    /// The object is live but is not of the requested type: a bad cast.
    TypeConfusion {
        /// `type_name` of the type actually stored.
        actual: &'static str,
    },
    /// The handle never referred to an object (null or out of range).
    NullDeref,
}

struct Slot {
    generation: u32,
    /// `Some` while live. The stored `TypeId`/name pair is the "hidden tag"
    /// that makes type confusion detectable.
    value: Option<(TypeId, &'static str, Box<dyn Any + Send>)>,
}

/// Allocation statistics, used for leak accounting in the ownership study.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total successful allocations.
    pub allocs: u64,
    /// Total successful frees.
    pub frees: u64,
}

/// A type-erased generational object arena.
#[derive(Default)]
pub struct Arena {
    inner: Mutex<ArenaInner>,
}

#[derive(Default)]
struct ArenaInner {
    slots: Vec<Slot>,
    free_list: Vec<u32>,
    stats: ArenaStats,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Allocates `value`, returning its handle.
    pub fn insert<T: Any + Send>(&self, value: T) -> ObjRef {
        let mut inner = self.inner.lock();
        inner.stats.allocs += 1;
        let boxed: Box<dyn Any + Send> = Box::new(value);
        let entry = (TypeId::of::<T>(), type_name::<T>(), boxed);
        if let Some(slot) = inner.free_list.pop() {
            let s = &mut inner.slots[slot as usize];
            debug_assert!(s.value.is_none());
            s.value = Some(entry);
            ObjRef {
                slot,
                generation: s.generation,
            }
        } else {
            let slot = inner.slots.len() as u32;
            inner.slots.push(Slot {
                generation: 0,
                value: Some(entry),
            });
            ObjRef {
                slot,
                generation: 0,
            }
        }
    }

    fn locate(
        inner: &ArenaInner,
        r: ObjRef,
    ) -> Result<&(TypeId, &'static str, Box<dyn Any + Send>), AccessError> {
        if r.is_null() {
            return Err(AccessError::NullDeref);
        }
        let slot = inner
            .slots
            .get(r.slot as usize)
            .ok_or(AccessError::NullDeref)?;
        if slot.generation != r.generation {
            return Err(AccessError::UseAfterFree);
        }
        slot.value.as_ref().ok_or(AccessError::UseAfterFree)
    }

    /// Runs `f` over a shared view of the object, checking type and liveness.
    pub fn with<T: Any, R>(&self, r: ObjRef, f: impl FnOnce(&T) -> R) -> Result<R, AccessError> {
        let inner = self.inner.lock();
        let (tid, name, boxed) = Self::locate(&inner, r)?;
        if *tid != TypeId::of::<T>() {
            return Err(AccessError::TypeConfusion { actual: name });
        }
        // The downcast cannot fail after the TypeId check.
        Ok(f(boxed
            .downcast_ref::<T>()
            .expect("TypeId already checked")))
    }

    /// Runs `f` over an exclusive view of the object.
    pub fn with_mut<T: Any, R>(
        &self,
        r: ObjRef,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, AccessError> {
        let mut inner = self.inner.lock();
        if r.is_null() {
            return Err(AccessError::NullDeref);
        }
        let slot = inner
            .slots
            .get_mut(r.slot as usize)
            .ok_or(AccessError::NullDeref)?;
        if slot.generation != r.generation {
            return Err(AccessError::UseAfterFree);
        }
        let (tid, name, boxed) = slot.value.as_mut().ok_or(AccessError::UseAfterFree)?;
        if *tid != TypeId::of::<T>() {
            return Err(AccessError::TypeConfusion { actual: name });
        }
        Ok(f(boxed
            .downcast_mut::<T>()
            .expect("TypeId already checked")))
    }

    /// Returns the stored type name of a live object (the "hidden tag").
    pub fn type_name_of(&self, r: ObjRef) -> Result<&'static str, AccessError> {
        let inner = self.inner.lock();
        Self::locate(&inner, r).map(|(_, name, _)| *name)
    }

    /// Frees the object behind `r` and returns it, typed.
    pub fn remove<T: Any>(&self, r: ObjRef) -> Result<T, AccessError> {
        let mut inner = self.inner.lock();
        if r.is_null() {
            return Err(AccessError::NullDeref);
        }
        let slot = inner
            .slots
            .get_mut(r.slot as usize)
            .ok_or(AccessError::NullDeref)?;
        if slot.generation != r.generation {
            // Stale generation on a free path is a double free (the first
            // free bumped the generation).
            return Err(AccessError::DoubleFree);
        }
        let (tid, name, _) = slot.value.as_ref().ok_or(AccessError::DoubleFree)?;
        if *tid != TypeId::of::<T>() {
            return Err(AccessError::TypeConfusion { actual: name });
        }
        let (_, _, boxed) = slot.value.take().expect("checked live above");
        slot.generation = slot.generation.wrapping_add(1);
        let slot_idx = r.slot;
        inner.free_list.push(slot_idx);
        inner.stats.frees += 1;
        Ok(*boxed.downcast::<T>().expect("TypeId already checked"))
    }

    /// Frees the object behind `r` without naming its type (C's `kfree`).
    pub fn free(&self, r: ObjRef) -> Result<(), AccessError> {
        let mut inner = self.inner.lock();
        if r.is_null() {
            return Err(AccessError::NullDeref);
        }
        let slot = inner
            .slots
            .get_mut(r.slot as usize)
            .ok_or(AccessError::NullDeref)?;
        if slot.generation != r.generation || slot.value.is_none() {
            return Err(AccessError::DoubleFree);
        }
        slot.value = None;
        slot.generation = slot.generation.wrapping_add(1);
        let slot_idx = r.slot;
        inner.free_list.push(slot_idx);
        inner.stats.frees += 1;
        Ok(())
    }

    /// Number of currently live objects (allocs − frees).
    pub fn live_count(&self) -> u64 {
        let inner = self.inner.lock();
        inner.stats.allocs - inner.stats.frees
    }

    /// Snapshot of the allocation statistics.
    pub fn stats(&self) -> ArenaStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_access_remove() {
        let a = Arena::new();
        let r = a.insert(41u32);
        assert_eq!(a.with(r, |v: &u32| *v + 1).unwrap(), 42);
        a.with_mut(r, |v: &mut u32| *v = 7).unwrap();
        assert_eq!(a.remove::<u32>(r).unwrap(), 7);
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    fn use_after_free_detected() {
        let a = Arena::new();
        let r = a.insert(String::from("x"));
        a.free(r).unwrap();
        assert_eq!(
            a.with(r, |_: &String| ()).unwrap_err(),
            AccessError::UseAfterFree
        );
    }

    #[test]
    fn slot_reuse_does_not_resurrect_stale_handles() {
        let a = Arena::new();
        let r1 = a.insert(1u8);
        a.free(r1).unwrap();
        let r2 = a.insert(2u8);
        // Same slot, new generation: r1 is stale, r2 valid.
        assert_eq!(
            a.with(r1, |_: &u8| ()).unwrap_err(),
            AccessError::UseAfterFree
        );
        assert_eq!(a.with(r2, |v: &u8| *v).unwrap(), 2);
    }

    #[test]
    fn double_free_detected() {
        let a = Arena::new();
        let r = a.insert(3i64);
        a.free(r).unwrap();
        assert_eq!(a.free(r).unwrap_err(), AccessError::DoubleFree);
        assert_eq!(a.stats().frees, 1, "second free is not counted");
    }

    #[test]
    fn type_confusion_detected_with_actual_name() {
        let a = Arena::new();
        let r = a.insert(5u64);
        match a.with(r, |_: &String| ()).unwrap_err() {
            AccessError::TypeConfusion { actual } => assert!(actual.contains("u64")),
            other => panic!("expected TypeConfusion, got {other:?}"),
        }
    }

    #[test]
    fn null_handle_detected() {
        let a = Arena::new();
        assert_eq!(
            a.with(ObjRef::NULL, |_: &u8| ()).unwrap_err(),
            AccessError::NullDeref
        );
        assert!(ObjRef::NULL.is_null());
    }

    #[test]
    fn word_packing_roundtrip() {
        let a = Arena::new();
        let r = a.insert(9u32);
        let w = r.to_word();
        assert_eq!(ObjRef::from_word(w), r);
    }

    #[test]
    fn remove_with_wrong_type_is_confusion_not_free() {
        let a = Arena::new();
        let r = a.insert(1.5f64);
        assert!(matches!(
            a.remove::<u32>(r).unwrap_err(),
            AccessError::TypeConfusion { .. }
        ));
        // Object must still be live afterwards.
        assert_eq!(a.with(r, |v: &f64| *v).unwrap(), 1.5);
    }
}
