//! The block IO scheduler (elevator).
//!
//! The kernel does not dispatch writes in arrival order: the IO scheduler
//! queues them, merges rewrites of the same block, and dispatches sorted
//! sweeps to amortize head travel. [`ElevatorDevice`] is that layer for the
//! substrate — a queueing wrapper whose `flush` dispatches the pending
//! writes in ascending block order. Combined with the distance-based seek
//! model ([`RamDisk::set_seek_model`](crate::block::RamDisk::set_seek_model))
//! it makes the classic scheduling win measurable in simulated time; the
//! cache-ablation bench and the tests below quantify it.
//!
//! Semantics match a volatile write queue (like `CrashDevice`'s): reads
//! observe queued writes; durability still requires `flush`. Callers that
//! need write ordering for crash safety must therefore put the journal
//! *below* or flush around it — exactly the real-world interaction between
//! IO schedulers and journaling file systems.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use crate::block::{BlockDevice, DeviceStats};
use crate::errno::{Errno, KResult};

/// Elevator statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ElevatorStats {
    /// Writes accepted into the queue.
    pub queued: u64,
    /// Writes absorbed by merging into an already-queued block.
    pub merged: u64,
    /// Writes dispatched to the device.
    pub dispatched: u64,
    /// Sorted sweeps performed.
    pub sweeps: u64,
}

/// A request-merging, sweep-sorting IO scheduler over any device.
pub struct ElevatorDevice<D> {
    inner: D,
    queue: Mutex<BTreeMap<u64, Vec<u8>>>,
    /// Auto-dispatch threshold: a full queue triggers a sweep.
    max_queue: usize,
    stats: Mutex<ElevatorStats>,
}

impl<D: BlockDevice> ElevatorDevice<D> {
    /// Wraps `inner`; the queue holds at most `max_queue` distinct blocks
    /// before a sweep is forced.
    pub fn new(inner: D, max_queue: usize) -> Self {
        ElevatorDevice {
            inner,
            queue: Mutex::new(BTreeMap::new()),
            max_queue: max_queue.max(1),
            stats: Mutex::new(ElevatorStats::default()),
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Scheduler statistics.
    pub fn elevator_stats(&self) -> ElevatorStats {
        *self.stats.lock()
    }

    /// Number of distinct blocks currently queued.
    pub fn queued_len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Dispatches the queue as one ascending sweep.
    fn sweep(&self) -> KResult<()> {
        let drained: BTreeMap<u64, Vec<u8>> = std::mem::take(&mut *self.queue.lock());
        if drained.is_empty() {
            return Ok(());
        }
        let n = drained.len() as u64;
        // BTreeMap iteration is already the ascending elevator order.
        for (blkno, data) in drained {
            self.inner.write_block(blkno, &data)?;
        }
        let mut st = self.stats.lock();
        st.dispatched += n;
        st.sweeps += 1;
        Ok(())
    }
}

impl<D: BlockDevice> BlockDevice for ElevatorDevice<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
        if buf.len() != self.inner.block_size() {
            return Err(Errno::EINVAL);
        }
        // Reads must observe queued writes.
        if let Some(data) = self.queue.lock().get(&blkno) {
            buf.copy_from_slice(data);
            return Ok(());
        }
        self.inner.read_block(blkno, buf)
    }

    fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
        if buf.len() != self.inner.block_size() {
            return Err(Errno::EINVAL);
        }
        if blkno >= self.inner.num_blocks() {
            return Err(Errno::ENXIO);
        }
        let full = {
            let mut queue = self.queue.lock();
            let mut st = self.stats.lock();
            st.queued += 1;
            if queue.insert(blkno, buf.to_vec()).is_some() {
                st.merged += 1;
            }
            queue.len() >= self.max_queue
        };
        if full {
            self.sweep()?;
        }
        Ok(())
    }

    fn flush(&self) -> KResult<()> {
        self.sweep()?;
        self.inner.flush()
    }

    fn stats(&self) -> DeviceStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{RamDisk, BLOCK_SIZE};
    use crate::time::SimClock;
    use std::sync::Arc;

    #[test]
    fn queued_writes_visible_to_reads_and_durable_after_flush() {
        let e = ElevatorDevice::new(RamDisk::new(16), 64);
        let data = vec![9u8; BLOCK_SIZE];
        e.write_block(5, &data).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        e.read_block(5, &mut out).unwrap();
        assert_eq!(out[0], 9, "read observes the queue");
        let mut raw = vec![0u8; BLOCK_SIZE];
        e.inner().read_block(5, &mut raw).unwrap();
        assert_eq!(raw[0], 0, "not yet dispatched");
        e.flush().unwrap();
        e.inner().read_block(5, &mut raw).unwrap();
        assert_eq!(raw[0], 9);
    }

    #[test]
    fn rewrites_merge() {
        let e = ElevatorDevice::new(RamDisk::new(16), 64);
        let a = vec![1u8; BLOCK_SIZE];
        let b = vec![2u8; BLOCK_SIZE];
        e.write_block(3, &a).unwrap();
        e.write_block(3, &b).unwrap();
        e.flush().unwrap();
        let st = e.elevator_stats();
        assert_eq!(st.queued, 2);
        assert_eq!(st.merged, 1);
        assert_eq!(st.dispatched, 1, "one physical write for two logical");
        let mut out = vec![0u8; BLOCK_SIZE];
        e.inner().read_block(3, &mut out).unwrap();
        assert_eq!(out[0], 2, "last write wins");
    }

    #[test]
    fn full_queue_forces_a_sweep() {
        let e = ElevatorDevice::new(RamDisk::new(16), 4);
        let data = vec![7u8; BLOCK_SIZE];
        for blk in [9u64, 2, 14, 6] {
            e.write_block(blk, &data).unwrap();
        }
        assert_eq!(e.queued_len(), 0, "threshold sweep ran");
        assert_eq!(e.elevator_stats().sweeps, 1);
    }

    #[test]
    fn sorted_sweep_beats_fifo_on_a_seeking_device() {
        // The headline: with a distance-based seek model, the elevator's
        // sorted dispatch costs less simulated time than arrival order.
        let scattered: Vec<u64> = (0..64u64).map(|i| (i * 37) % 128).collect();
        let data = vec![1u8; BLOCK_SIZE];

        // FIFO baseline.
        let clock_fifo = Arc::new(SimClock::new());
        let mut disk = RamDisk::with_geometry(128, BLOCK_SIZE, Arc::clone(&clock_fifo));
        disk.set_seek_model(1_000);
        for &b in &scattered {
            disk.write_block(b, &data).unwrap();
        }
        let fifo_ns = clock_fifo.now_ns();

        // Elevator.
        let clock_elev = Arc::new(SimClock::new());
        let mut disk = RamDisk::with_geometry(128, BLOCK_SIZE, Arc::clone(&clock_elev));
        disk.set_seek_model(1_000);
        let e = ElevatorDevice::new(disk, 256);
        for &b in &scattered {
            e.write_block(b, &data).unwrap();
        }
        e.flush().unwrap();
        let elev_ns = clock_elev.now_ns();

        assert!(
            elev_ns * 2 < fifo_ns,
            "elevator {elev_ns}ns should be well under half of FIFO {fifo_ns}ns"
        );
    }

    #[test]
    fn geometry_errors_propagate() {
        let e = ElevatorDevice::new(RamDisk::new(4), 8);
        let data = vec![0u8; BLOCK_SIZE];
        assert_eq!(e.write_block(99, &data), Err(Errno::ENXIO));
        assert_eq!(e.write_block(0, &data[..5]), Err(Errno::EINVAL));
        let mut small = vec![0u8; 5];
        assert_eq!(e.read_block(0, &mut small), Err(Errno::EINVAL));
    }
}
