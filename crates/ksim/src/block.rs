//! Block device layer.
//!
//! Three devices compose into the substrate the file systems run on:
//!
//! - [`RamDisk`]: the "hardware" — a RAM-backed array of fixed-size blocks
//!   with IO accounting and a simple seek/transfer latency model driven by
//!   the simulated clock.
//! - [`FaultyDevice`]: wraps any device and injects deterministic faults
//!   (read/write `EIO`, torn writes, silent corruption) from a seeded RNG.
//! - [`FaultyDisk`]: the adversarial disk harness — everything
//!   [`FaultyDevice`] does plus flush errors, *sector*-granular torn
//!   writes, read-side corruption, and one-shot fail-the-nth-IO schedules
//!   for exhaustive error-point enumeration (the storage twin of
//!   `netstack::fault::FaultyLink`).
//! - [`CrashDevice`]: wraps any device and models a **volatile write cache**:
//!   writes land in the cache and only reach the backing device on `flush`.
//!   A simulated crash discards the cache — and, crucially for §4.4's
//!   crash-consistency checking, the wrapper can enumerate *every* crash
//!   point (each prefix of the pending write sequence, plus reorderings) so
//!   a checker can exhaustively explore what the disk may look like after a
//!   power failure.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::errno::{Errno, KResult};
use crate::scenario::{subsys, EngineStream, ScenarioEngine};
use crate::time::SimClock;

/// Default block size, matching Linux's default page/block size.
pub const BLOCK_SIZE: usize = 4096;

/// Sector size: the unit the hardware writes atomically. A power failure
/// mid-write can tear a 4 KiB block at any 512-byte sector boundary, but
/// never inside a sector — the granularity [`FaultyDisk`] tears at and
/// the `Torn` crash policy enumerates over.
pub const SECTOR_SIZE: usize = 512;

/// Cumulative IO statistics for a device.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DeviceStats {
    /// Number of block reads served.
    pub reads: u64,
    /// Number of block writes accepted.
    pub writes: u64,
    /// Number of flushes (cache barriers) processed.
    pub flushes: u64,
    /// Number of injected IO errors returned to callers.
    pub io_errors: u64,
    /// Number of writes that were torn at a sector boundary (only a prefix
    /// of the block's sectors reached media).
    pub torn_writes: u64,
    /// Number of reads whose returned data was silently corrupted.
    pub corrupt_reads: u64,
    /// Number of vectored multi-block requests served natively (devices
    /// falling back to the per-block default leave this at zero).
    pub vec_ios: u64,
}

/// A block device: fixed-size blocks addressed by index.
///
/// All file systems in the workspace — legacy and safe — sit on this trait,
/// which plays the role of the paper's "unverified block I/O layer" (§4.4).
/// The axiomatic model of this interface lives in `sk-core::spec::axioms`.
pub trait BlockDevice: Send + Sync {
    /// Number of blocks on the device.
    fn num_blocks(&self) -> u64;

    /// Block size in bytes. Every read/write moves exactly one block.
    fn block_size(&self) -> usize;

    /// Reads block `blkno` into `buf`.
    ///
    /// `buf.len()` must equal [`BlockDevice::block_size`]; short buffers
    /// return `EINVAL`, out-of-range block numbers return `ENXIO`.
    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()>;

    /// Writes `buf` to block `blkno`. Same size/range rules as reads.
    fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()>;

    /// Vectored read: `count` consecutive blocks starting at `start` into
    /// `buf` (`buf.len()` must be `count × block_size`). The default
    /// implementation loops over [`BlockDevice::read_block`]; devices with
    /// a seek cost override it to charge one seek for the whole extent.
    fn read_blocks(&self, start: u64, count: usize, buf: &mut [u8]) -> KResult<()> {
        let bs = self.block_size();
        if buf.len() != count * bs {
            return Err(Errno::EINVAL);
        }
        for (i, chunk) in buf.chunks_mut(bs).enumerate() {
            self.read_block(start + i as u64, chunk)?;
        }
        Ok(())
    }

    /// Vectored write: `count` consecutive blocks starting at `start` from
    /// `buf`. Same contract as [`BlockDevice::read_blocks`].
    fn write_blocks(&self, start: u64, count: usize, buf: &[u8]) -> KResult<()> {
        let bs = self.block_size();
        if buf.len() != count * bs {
            return Err(Errno::EINVAL);
        }
        for (i, chunk) in buf.chunks(bs).enumerate() {
            self.write_block(start + i as u64, chunk)?;
        }
        Ok(())
    }

    /// Write barrier: all previously accepted writes become durable.
    fn flush(&self) -> KResult<()>;

    /// Returns a snapshot of the device's IO statistics.
    fn stats(&self) -> DeviceStats;
}

struct RamDiskInner {
    data: Vec<u8>,
    stats: DeviceStats,
}

/// RAM-backed block device with a seek/transfer latency model.
///
/// The latency model exists so benchmarks have a stable notion of "device
/// time": each read/write advances the shared [`SimClock`] by a fixed
/// per-operation seek cost plus a per-byte transfer cost.
pub struct RamDisk {
    inner: Mutex<RamDiskInner>,
    num_blocks: u64,
    block_size: usize,
    clock: Arc<SimClock>,
    seek_ns: u64,
    ns_per_byte: u64,
    /// Extra simulated cost per block of head travel (0 = flat model).
    seek_ns_per_block: u64,
    last_blkno: Mutex<u64>,
}

impl RamDisk {
    /// Creates a RAM disk of `num_blocks` blocks of [`BLOCK_SIZE`] bytes.
    pub fn new(num_blocks: u64) -> Self {
        Self::with_geometry(num_blocks, BLOCK_SIZE, Arc::new(SimClock::new()))
    }

    /// Creates a RAM disk with explicit geometry and clock.
    pub fn with_geometry(num_blocks: u64, block_size: usize, clock: Arc<SimClock>) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(num_blocks > 0, "device must have at least one block");
        RamDisk {
            inner: Mutex::new(RamDiskInner {
                data: vec![0u8; num_blocks as usize * block_size],
                stats: DeviceStats::default(),
            }),
            num_blocks,
            block_size,
            clock,
            // Defaults loosely modelled on a fast NVMe device: ~10us access,
            // ~3GB/s transfer. Absolute values only matter relatively.
            seek_ns: 10_000,
            ns_per_byte: 1,
            seek_ns_per_block: 0,
            last_blkno: Mutex::new(0),
        }
    }

    /// Enables a rotational-style seek model: each IO additionally costs
    /// `ns_per_block` × the head-travel distance from the previous IO.
    /// Used by the elevator ablation.
    pub fn set_seek_model(&mut self, ns_per_block: u64) {
        self.seek_ns_per_block = ns_per_block;
    }

    fn charge_io(&self, blkno: u64) {
        self.charge_extent(blkno, 1);
    }

    /// Charges one seek plus per-byte transfer for a `count`-block extent
    /// starting at `blkno` — the latency model's reward for vectored IO.
    fn charge_extent(&self, blkno: u64, count: usize) {
        let mut cost = self.seek_ns + self.ns_per_byte * (count * self.block_size) as u64;
        if self.seek_ns_per_block > 0 {
            let mut last = self.last_blkno.lock();
            cost += self.seek_ns_per_block * blkno.abs_diff(*last);
            *last = blkno + count as u64 - 1;
        }
        self.clock.advance(cost);
    }

    fn check_extent(&self, start: u64, count: usize, len: usize) -> KResult<usize> {
        if count == 0 || len != count * self.block_size {
            return Err(Errno::EINVAL);
        }
        if start + count as u64 > self.num_blocks {
            return Err(Errno::ENXIO);
        }
        Ok(start as usize * self.block_size)
    }

    /// The simulated clock this device charges IO time to.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// Returns a full snapshot of the device contents (for crash checking).
    pub fn snapshot(&self) -> Vec<u8> {
        self.inner.lock().data.clone()
    }

    /// Restores a snapshot previously taken with [`RamDisk::snapshot`].
    ///
    /// Returns `EINVAL` if the image size does not match the geometry.
    pub fn restore(&self, image: &[u8]) -> KResult<()> {
        let mut inner = self.inner.lock();
        if image.len() != inner.data.len() {
            return Err(Errno::EINVAL);
        }
        inner.data.copy_from_slice(image);
        Ok(())
    }

    fn check(&self, blkno: u64, len: usize) -> KResult<usize> {
        if len != self.block_size {
            return Err(Errno::EINVAL);
        }
        if blkno >= self.num_blocks {
            return Err(Errno::ENXIO);
        }
        Ok(blkno as usize * self.block_size)
    }
}

impl BlockDevice for RamDisk {
    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
        let off = self.check(blkno, buf.len())?;
        let mut inner = self.inner.lock();
        buf.copy_from_slice(&inner.data[off..off + self.block_size]);
        inner.stats.reads += 1;
        drop(inner);
        self.charge_io(blkno);
        Ok(())
    }

    fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
        let off = self.check(blkno, buf.len())?;
        let mut inner = self.inner.lock();
        inner.data[off..off + self.block_size].copy_from_slice(buf);
        inner.stats.writes += 1;
        drop(inner);
        self.charge_io(blkno);
        Ok(())
    }

    fn read_blocks(&self, start: u64, count: usize, buf: &mut [u8]) -> KResult<()> {
        if count == 0 && buf.is_empty() {
            return Ok(());
        }
        let off = self.check_extent(start, count, buf.len())?;
        let mut inner = self.inner.lock();
        buf.copy_from_slice(&inner.data[off..off + buf.len()]);
        inner.stats.reads += count as u64;
        inner.stats.vec_ios += 1;
        drop(inner);
        self.charge_extent(start, count);
        Ok(())
    }

    fn write_blocks(&self, start: u64, count: usize, buf: &[u8]) -> KResult<()> {
        if count == 0 && buf.is_empty() {
            return Ok(());
        }
        let off = self.check_extent(start, count, buf.len())?;
        let mut inner = self.inner.lock();
        inner.data[off..off + buf.len()].copy_from_slice(buf);
        inner.stats.writes += count as u64;
        inner.stats.vec_ios += 1;
        drop(inner);
        self.charge_extent(start, count);
        Ok(())
    }

    fn flush(&self) -> KResult<()> {
        let mut inner = self.inner.lock();
        inner.stats.flushes += 1;
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.inner.lock().stats
    }
}

/// Configuration for [`FaultyDevice`].
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability in [0, 1] that a read fails with `EIO`.
    pub read_error_rate: f64,
    /// Probability in [0, 1] that a write fails with `EIO`.
    pub write_error_rate: f64,
    /// Probability in [0, 1] that a write is *torn*: only a prefix of the
    /// block reaches the media, the rest keeps its old contents.
    pub torn_write_rate: f64,
    /// Probability in [0, 1] that a write is silently corrupted (one byte
    /// flipped) — models media bit rot for checksum testing.
    pub corruption_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            read_error_rate: 0.0,
            write_error_rate: 0.0,
            torn_write_rate: 0.0,
            corruption_rate: 0.0,
        }
    }
}

/// Deterministic fault-injecting wrapper around a block device.
pub struct FaultyDevice<D> {
    inner: D,
    config: Mutex<FaultConfig>,
    rng: Mutex<StdRng>,
    injected: Mutex<DeviceStats>,
}

impl<D: BlockDevice> FaultyDevice<D> {
    /// Wraps `inner` with the given fault configuration and RNG seed.
    pub fn new(inner: D, config: FaultConfig, seed: u64) -> Self {
        FaultyDevice {
            inner,
            config: Mutex::new(config),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            injected: Mutex::new(DeviceStats::default()),
        }
    }

    /// Replaces the fault configuration at runtime.
    pub fn set_config(&self, config: FaultConfig) {
        *self.config.lock() = config;
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    fn roll(&self, p: f64) -> bool {
        p > 0.0 && self.rng.lock().gen_bool(p.clamp(0.0, 1.0))
    }
}

impl<D: BlockDevice> BlockDevice for FaultyDevice<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
        let rate = self.config.lock().read_error_rate;
        if self.roll(rate) {
            self.injected.lock().io_errors += 1;
            return Err(Errno::EIO);
        }
        self.inner.read_block(blkno, buf)
    }

    fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
        let cfg = *self.config.lock();
        if self.roll(cfg.write_error_rate) {
            self.injected.lock().io_errors += 1;
            return Err(Errno::EIO);
        }
        if self.roll(cfg.torn_write_rate) {
            // Tear the write: persist only a random prefix of the block.
            let bs = self.block_size();
            let cut = self.rng.lock().gen_range(1..bs);
            let mut old = vec![0u8; bs];
            self.inner.read_block(blkno, &mut old)?;
            old[..cut].copy_from_slice(&buf[..cut]);
            return self.inner.write_block(blkno, &old);
        }
        if self.roll(cfg.corruption_rate) {
            let bs = self.block_size();
            let mut corrupted = buf.to_vec();
            let (idx, bit) = {
                let mut rng = self.rng.lock();
                (rng.gen_range(0..bs), rng.gen_range(0..8u8))
            };
            corrupted[idx] ^= 1 << bit;
            return self.inner.write_block(blkno, &corrupted);
        }
        self.inner.write_block(blkno, buf)
    }

    fn flush(&self) -> KResult<()> {
        self.inner.flush()
    }

    fn stats(&self) -> DeviceStats {
        let mut s = self.inner.stats();
        s.io_errors += self.injected.lock().io_errors;
        s
    }
}

/// Fault probabilities for [`FaultyDisk`], all independent per operation.
///
/// The disk-side twin of `netstack::fault::FaultConfig`: every fault kind
/// is seeded, so a failing run replays exactly from its seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskFaultConfig {
    /// Probability a read fails with transient `EIO` (nothing delivered).
    pub read_eio: f64,
    /// Probability a write fails with transient `EIO` (nothing persisted).
    pub write_eio: f64,
    /// Probability a flush fails with transient `EIO` (barrier not issued).
    pub flush_eio: f64,
    /// Probability a read returns silently corrupted data (one bit flipped
    /// in the returned buffer; media contents untouched).
    pub read_corrupt: f64,
    /// Probability a write is torn at a sector boundary: only the first
    /// `k` sectors (seeded `k` in `1..sectors_per_block`) reach media.
    pub torn_write: f64,
    /// Wall-clock delay added to every write (nanoseconds). Models a
    /// slow device for backpressure tests: the sleep happens outside the
    /// fault-state lock, before the inner write.
    pub write_delay_ns: u64,
    /// Wall-clock delay added to every flush barrier (nanoseconds).
    pub flush_delay_ns: u64,
}

impl DiskFaultConfig {
    /// The adversarial profile used by the crash-enumeration soak: every
    /// fault kind enabled at rates a recoverable filesystem must survive.
    pub fn adversarial() -> DiskFaultConfig {
        DiskFaultConfig {
            read_eio: 0.02,
            write_eio: 0.02,
            flush_eio: 0.01,
            read_corrupt: 0.02,
            torn_write: 0.05,
            ..DiskFaultConfig::default()
        }
    }
}

struct FaultyDiskState {
    cfg: DiskFaultConfig,
    injected: DeviceStats,
    reads_seen: u64,
    writes_seen: u64,
    flushes_seen: u64,
    fail_read_at: Option<u64>,
    fail_write_at: Option<u64>,
    fail_flush_at: Option<u64>,
    tear_write_at: Option<(u64, usize)>,
}

/// Seeded fault-injecting disk: transient `EIO`, silent read corruption,
/// and sector-granular torn writes.
///
/// Two injection modes compose:
///
/// - **probabilistic** ([`DiskFaultConfig`] rates under a seeded RNG) for
///   soak testing — reproducible chaos;
/// - **scheduled** ([`FaultyDisk::fail_nth_write`] and friends) for
///   exhaustive error-point enumeration: run a workload once to count its
///   IOs, then re-run it once per IO index with exactly that operation
///   failing, so every mid-commit / mid-checkpoint / mid-replay `EIO` path
///   is visited deterministically.
///
/// `EIO` here is *transient and fail-stop*: the failed operation has no
/// effect on media and later operations succeed — the discipline a storage
/// stack must tolerate without corrupting itself. Torn writes model power
/// loss mid-write: the hardware promises sector atomicity ([`SECTOR_SIZE`])
/// but nothing block-wide, so only a prefix of the block's sectors lands.
///
/// Since the scenario-engine unification, every `FaultyDisk` draws its
/// fault decisions from a [`ScenarioEngine`]'s `disk` stream and logs each
/// injected fault to the engine trace. [`FaultyDisk::new`] wraps a private
/// single-seed engine for standalone use; [`FaultyDisk::on_engine`] joins
/// a shared scenario so disk, link, and crash schedules all replay from
/// one seed. Lock discipline: the fault decision is drawn from the stream
/// (its own short-lived lock), the lock is released, and only then is the
/// inner device touched — holding the shared stream mutex across device
/// IO would serialize every other subsystem's fault decisions behind this
/// disk (the held-across-IO probe test below pins this).
pub struct FaultyDisk<D> {
    inner: D,
    engine: Arc<ScenarioEngine>,
    stream: Arc<EngineStream>,
    state: Mutex<FaultyDiskState>,
}

impl<D: BlockDevice> FaultyDisk<D> {
    /// Wraps `inner` with `cfg` fault rates, deterministic under `seed`
    /// (a standalone engine is created; see [`FaultyDisk::on_engine`]).
    pub fn new(inner: D, cfg: DiskFaultConfig, seed: u64) -> Self {
        Self::on_engine(inner, cfg, &ScenarioEngine::new(seed))
    }

    /// Wraps `inner` with `cfg` fault rates, drawing every decision from
    /// `engine`'s `disk` stream so one engine seed replays the run.
    pub fn on_engine(inner: D, cfg: DiskFaultConfig, engine: &Arc<ScenarioEngine>) -> Self {
        FaultyDisk {
            inner,
            engine: Arc::clone(engine),
            stream: engine.stream(subsys::DISK),
            state: Mutex::new(FaultyDiskState {
                cfg,
                injected: DeviceStats::default(),
                reads_seen: 0,
                writes_seen: 0,
                flushes_seen: 0,
                fail_read_at: None,
                fail_write_at: None,
                fail_flush_at: None,
                tear_write_at: None,
            }),
        }
    }

    /// The scenario engine this disk draws from (for trace inspection).
    pub fn engine(&self) -> &Arc<ScenarioEngine> {
        &self.engine
    }

    /// Replaces the fault rates at runtime.
    pub fn set_config(&self, cfg: DiskFaultConfig) {
        self.state.lock().cfg = cfg;
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Arms a one-shot `EIO` on the `n`-th subsequent read (0-based).
    pub fn fail_nth_read(&self, n: u64) {
        let mut st = self.state.lock();
        let at = st.reads_seen + n;
        st.fail_read_at = Some(at);
    }

    /// Arms a one-shot `EIO` on the `n`-th subsequent write (0-based).
    pub fn fail_nth_write(&self, n: u64) {
        let mut st = self.state.lock();
        let at = st.writes_seen + n;
        st.fail_write_at = Some(at);
    }

    /// Arms a one-shot `EIO` on the `n`-th subsequent flush (0-based).
    pub fn fail_nth_flush(&self, n: u64) {
        let mut st = self.state.lock();
        let at = st.flushes_seen + n;
        st.fail_flush_at = Some(at);
    }

    /// Arms a one-shot torn write: the `n`-th subsequent write (0-based)
    /// persists only its first `keep_sectors` sectors.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ keep_sectors < block_size / SECTOR_SIZE` — keeping
    /// zero sectors is a dropped write and keeping all of them isn't torn.
    pub fn tear_nth_write(&self, n: u64, keep_sectors: usize) {
        let spb = self.inner.block_size() / SECTOR_SIZE;
        assert!(
            keep_sectors >= 1 && keep_sectors < spb,
            "keep_sectors must be in 1..{spb}"
        );
        let mut st = self.state.lock();
        let at = st.writes_seen + n;
        st.tear_write_at = Some((at, keep_sectors));
    }

    /// Disarms any scheduled one-shot faults.
    pub fn clear_schedule(&self) {
        let mut st = self.state.lock();
        st.fail_read_at = None;
        st.fail_write_at = None;
        st.fail_flush_at = None;
        st.tear_write_at = None;
    }

    /// Counters for faults injected so far (`io_errors`, `torn_writes`,
    /// `corrupt_reads`; the rest zero).
    pub fn injected(&self) -> DeviceStats {
        self.state.lock().injected
    }
}

impl<D: BlockDevice> BlockDevice for FaultyDisk<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
        // Scheduled one-shot faults are checked (and the IO indexed) under
        // the state lock; probabilistic decisions are drawn from the
        // engine stream after it drops, and the inner device is only
        // touched once neither lock is held.
        let cfg = {
            let mut st = self.state.lock();
            let idx = st.reads_seen;
            st.reads_seen += 1;
            if st.fail_read_at == Some(idx) {
                st.fail_read_at = None;
                st.injected.io_errors += 1;
                drop(st);
                self.stream
                    .emit(format!("read_eio blk={blkno} scheduled#{idx}"));
                return Err(Errno::EIO);
            }
            st.cfg
        };
        if self.stream.roll(cfg.read_eio) {
            self.state.lock().injected.io_errors += 1;
            self.stream.emit(format!("read_eio blk={blkno}"));
            return Err(Errno::EIO);
        }
        let corrupt = self.stream.roll(cfg.read_corrupt);
        self.inner.read_block(blkno, buf)?;
        if corrupt {
            let bit = self.stream.gen_range(0..buf.len() * 8);
            buf[bit / 8] ^= 1 << (bit % 8);
            self.state.lock().injected.corrupt_reads += 1;
            self.stream
                .emit(format!("read_corrupt blk={blkno} bit={bit}"));
        }
        Ok(())
    }

    fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
        let delay = self.state.lock().cfg.write_delay_ns;
        if delay > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(delay));
        }
        let (cfg, scheduled_tear) = {
            let mut st = self.state.lock();
            let idx = st.writes_seen;
            st.writes_seen += 1;
            if st.fail_write_at == Some(idx) {
                st.fail_write_at = None;
                st.injected.io_errors += 1;
                drop(st);
                self.stream
                    .emit(format!("write_eio blk={blkno} scheduled#{idx}"));
                return Err(Errno::EIO);
            }
            if let Some((at, keep)) = st.tear_write_at {
                if at == idx {
                    st.tear_write_at = None;
                    st.injected.torn_writes += 1;
                    drop(st);
                    self.stream.emit(format!(
                        "torn_write blk={blkno} keep={keep} scheduled#{idx}"
                    ));
                    (None, Some(keep))
                } else {
                    (Some(st.cfg), None)
                }
            } else {
                (Some(st.cfg), None)
            }
        };
        let tear = match (cfg, scheduled_tear) {
            (_, Some(keep)) => Some(keep),
            (Some(cfg), None) => {
                if self.stream.roll(cfg.write_eio) {
                    self.state.lock().injected.io_errors += 1;
                    self.stream.emit(format!("write_eio blk={blkno}"));
                    return Err(Errno::EIO);
                }
                if self.stream.roll(cfg.torn_write) {
                    let spb = (self.inner.block_size() / SECTOR_SIZE).max(2);
                    let keep = self.stream.gen_range(1..spb);
                    self.state.lock().injected.torn_writes += 1;
                    self.stream
                        .emit(format!("torn_write blk={blkno} keep={keep}"));
                    Some(keep)
                } else {
                    None
                }
            }
            (None, None) => None,
        };
        match tear {
            None => self.inner.write_block(blkno, buf),
            Some(keep_sectors) => {
                // Sector-atomic power loss: the first `keep_sectors` sectors
                // of the new data land, the rest of the block keeps its old
                // contents.
                let cut = keep_sectors * SECTOR_SIZE;
                let bs = self.inner.block_size();
                let mut merged = vec![0u8; bs];
                self.inner.read_block(blkno, &mut merged)?;
                merged[..cut].copy_from_slice(&buf[..cut]);
                self.inner.write_block(blkno, &merged)
            }
        }
    }

    fn flush(&self) -> KResult<()> {
        let delay = self.state.lock().cfg.flush_delay_ns;
        if delay > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(delay));
        }
        let cfg = {
            let mut st = self.state.lock();
            let idx = st.flushes_seen;
            st.flushes_seen += 1;
            if st.fail_flush_at == Some(idx) {
                st.fail_flush_at = None;
                st.injected.io_errors += 1;
                drop(st);
                self.stream.emit(format!("flush_eio scheduled#{idx}"));
                return Err(Errno::EIO);
            }
            st.cfg
        };
        if self.stream.roll(cfg.flush_eio) {
            self.state.lock().injected.io_errors += 1;
            self.stream.emit("flush_eio");
            return Err(Errno::EIO);
        }
        self.inner.flush()
    }

    fn stats(&self) -> DeviceStats {
        let mut s = self.inner.stats();
        let inj = self.state.lock().injected;
        s.io_errors += inj.io_errors;
        s.torn_writes += inj.torn_writes;
        s.corrupt_reads += inj.corrupt_reads;
        s
    }
}

/// A single write sitting in the volatile cache of a [`CrashDevice`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingWrite {
    /// Destination block number.
    pub blkno: u64,
    /// Full block payload.
    pub data: Vec<u8>,
}

struct CrashInner {
    /// Writes accepted since the last flush, in arrival order.
    pending: Vec<PendingWrite>,
    /// Set when `crash()` is called: all IO fails with `EIO` until `recover`.
    crashed: bool,
    stats: DeviceStats,
}

/// Volatile-write-cache wrapper used for crash-consistency checking.
///
/// Writes are buffered; `flush` drains them (in order) to the backing
/// device. [`CrashDevice::crash`] discards the cache and takes the device
/// offline, modelling power failure. For exhaustive checking,
/// [`CrashDevice::pending_writes`] exposes the buffered sequence so a checker
/// can replay every prefix (and, with reordering enabled in the checker,
/// every admissible subset) onto a snapshot of the backing store.
pub struct CrashDevice<D> {
    inner: D,
    state: Mutex<CrashInner>,
}

impl<D: BlockDevice> CrashDevice<D> {
    /// Wraps `inner` with an empty volatile cache.
    pub fn new(inner: D) -> Self {
        CrashDevice {
            inner,
            state: Mutex::new(CrashInner {
                pending: Vec::new(),
                crashed: false,
                stats: DeviceStats::default(),
            }),
        }
    }

    /// The wrapped (durable) device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Returns the writes currently sitting in the volatile cache.
    pub fn pending_writes(&self) -> Vec<PendingWrite> {
        self.state.lock().pending.clone()
    }

    /// Simulates power failure: the volatile cache is lost and the device
    /// goes offline (all IO returns `EIO`) until [`CrashDevice::recover`].
    pub fn crash(&self) {
        let mut st = self.state.lock();
        st.pending.clear();
        st.crashed = true;
    }

    /// Brings the device back online after a crash, cache empty.
    pub fn recover(&self) {
        let mut st = self.state.lock();
        st.pending.clear();
        st.crashed = false;
    }

    /// True if the device is currently offline after a crash.
    pub fn is_crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Number of writes in the volatile cache.
    pub fn pending_len(&self) -> usize {
        self.state.lock().pending.len()
    }
}

impl<D: BlockDevice> BlockDevice for CrashDevice<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
        if buf.len() != self.inner.block_size() {
            return Err(Errno::EINVAL);
        }
        if blkno >= self.inner.num_blocks() {
            return Err(Errno::ENXIO);
        }
        let mut st = self.state.lock();
        if st.crashed {
            return Err(Errno::EIO);
        }
        st.stats.reads += 1;
        // Reads must observe the cache: newest pending write to this block wins.
        if let Some(w) = st.pending.iter().rev().find(|w| w.blkno == blkno) {
            buf.copy_from_slice(&w.data);
            return Ok(());
        }
        drop(st);
        self.inner.read_block(blkno, buf)
    }

    fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
        if buf.len() != self.inner.block_size() {
            return Err(Errno::EINVAL);
        }
        if blkno >= self.inner.num_blocks() {
            return Err(Errno::ENXIO);
        }
        let mut st = self.state.lock();
        if st.crashed {
            return Err(Errno::EIO);
        }
        st.stats.writes += 1;
        st.pending.push(PendingWrite {
            blkno,
            data: buf.to_vec(),
        });
        Ok(())
    }

    fn flush(&self) -> KResult<()> {
        let drained = {
            let mut st = self.state.lock();
            if st.crashed {
                return Err(Errno::EIO);
            }
            st.stats.flushes += 1;
            std::mem::take(&mut st.pending)
        };
        for (i, w) in drained.iter().enumerate() {
            if let Err(e) = self.inner.write_block(w.blkno, &w.data) {
                // A mid-drain failure must not lose the undrained tail: put
                // it back ahead of anything accepted while we were unlocked,
                // preserving arrival order, so a retried flush still drains
                // FIFO and a crash still sees the correct pending set.
                let mut st = self.state.lock();
                let newer = std::mem::take(&mut st.pending);
                st.pending = drained[i..].to_vec();
                st.pending.extend(newer);
                return Err(e);
            }
        }
        self.inner.flush()
    }

    fn stats(&self) -> DeviceStats {
        self.state.lock().stats
    }
}

// `Arc<D>` devices forward transparently so subsystems can share one device.
impl<D: BlockDevice + ?Sized> BlockDevice for Arc<D> {
    fn num_blocks(&self) -> u64 {
        (**self).num_blocks()
    }
    fn block_size(&self) -> usize {
        (**self).block_size()
    }
    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
        (**self).read_block(blkno, buf)
    }
    fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
        (**self).write_block(blkno, buf)
    }
    fn read_blocks(&self, start: u64, count: usize, buf: &mut [u8]) -> KResult<()> {
        (**self).read_blocks(start, count, buf)
    }
    fn write_blocks(&self, start: u64, count: usize, buf: &[u8]) -> KResult<()> {
        (**self).write_blocks(start, count, buf)
    }
    fn flush(&self) -> KResult<()> {
        (**self).flush()
    }
    fn stats(&self) -> DeviceStats {
        (**self).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramdisk_read_back_what_was_written() {
        let d = RamDisk::new(8);
        let mut block = vec![0u8; BLOCK_SIZE];
        block[0] = 0xAB;
        block[BLOCK_SIZE - 1] = 0xCD;
        d.write_block(3, &block).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(3, &mut out).unwrap();
        assert_eq!(out, block);
    }

    #[test]
    fn ramdisk_rejects_bad_geometry() {
        let d = RamDisk::new(4);
        let mut small = vec![0u8; 16];
        assert_eq!(d.read_block(0, &mut small), Err(Errno::EINVAL));
        let mut ok = vec![0u8; BLOCK_SIZE];
        assert_eq!(d.read_block(4, &mut ok), Err(Errno::ENXIO));
        assert_eq!(d.write_block(99, &ok), Err(Errno::ENXIO));
    }

    #[test]
    fn ramdisk_counts_io_and_charges_time() {
        let d = RamDisk::new(4);
        let t0 = d.clock().now_ns();
        let buf = vec![0u8; BLOCK_SIZE];
        d.write_block(0, &buf).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(0, &mut out).unwrap();
        d.flush().unwrap();
        let s = d.stats();
        assert_eq!((s.reads, s.writes, s.flushes), (1, 1, 1));
        assert!(d.clock().now_ns() > t0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let d = RamDisk::new(2);
        let mut b = vec![7u8; BLOCK_SIZE];
        d.write_block(1, &b).unwrap();
        let snap = d.snapshot();
        b[0] = 9;
        d.write_block(1, &b).unwrap();
        d.restore(&snap).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(1, &mut out).unwrap();
        assert_eq!(out[0], 7);
        assert_eq!(d.restore(&[0u8; 3]), Err(Errno::EINVAL));
    }

    #[test]
    fn faulty_device_injects_read_errors_deterministically() {
        let cfg = FaultConfig {
            read_error_rate: 1.0,
            ..FaultConfig::default()
        };
        let d = FaultyDevice::new(RamDisk::new(4), cfg, 42);
        let mut buf = vec![0u8; BLOCK_SIZE];
        assert_eq!(d.read_block(0, &mut buf), Err(Errno::EIO));
        assert!(d.stats().io_errors >= 1);
    }

    #[test]
    fn faulty_device_torn_write_persists_prefix_only() {
        let cfg = FaultConfig {
            torn_write_rate: 1.0,
            ..FaultConfig::default()
        };
        let d = FaultyDevice::new(RamDisk::new(4), cfg, 7);
        let ones = vec![1u8; BLOCK_SIZE];
        d.write_block(0, &ones).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.inner().read_block(0, &mut out).unwrap();
        assert_eq!(out[0], 1, "some prefix must have landed");
        assert_eq!(out[BLOCK_SIZE - 1], 0, "the tail must be old data");
    }

    #[test]
    fn faulty_device_corruption_flips_one_bit() {
        let cfg = FaultConfig {
            corruption_rate: 1.0,
            ..FaultConfig::default()
        };
        let d = FaultyDevice::new(RamDisk::new(4), cfg, 3);
        let zeros = vec![0u8; BLOCK_SIZE];
        d.write_block(0, &zeros).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.inner().read_block(0, &mut out).unwrap();
        let flipped: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn crash_device_loses_unflushed_writes() {
        let d = CrashDevice::new(RamDisk::new(4));
        let ones = vec![1u8; BLOCK_SIZE];
        d.write_block(0, &ones).unwrap();
        assert_eq!(d.pending_len(), 1);
        d.crash();
        d.recover();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(0, &mut out).unwrap();
        assert_eq!(out[0], 0, "unflushed write must be gone");
    }

    #[test]
    fn crash_device_flush_makes_writes_durable() {
        let d = CrashDevice::new(RamDisk::new(4));
        let ones = vec![1u8; BLOCK_SIZE];
        d.write_block(0, &ones).unwrap();
        d.flush().unwrap();
        d.crash();
        d.recover();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(0, &mut out).unwrap();
        assert_eq!(out[0], 1);
    }

    #[test]
    fn crash_device_reads_observe_cache() {
        let d = CrashDevice::new(RamDisk::new(4));
        let ones = vec![1u8; BLOCK_SIZE];
        let twos = vec![2u8; BLOCK_SIZE];
        d.write_block(0, &ones).unwrap();
        d.write_block(0, &twos).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(0, &mut out).unwrap();
        assert_eq!(out[0], 2, "newest pending write wins");
    }

    #[test]
    fn crash_device_offline_until_recover() {
        let d = CrashDevice::new(RamDisk::new(4));
        d.crash();
        let mut out = vec![0u8; BLOCK_SIZE];
        assert_eq!(d.read_block(0, &mut out), Err(Errno::EIO));
        assert_eq!(d.write_block(0, &out), Err(Errno::EIO));
        assert_eq!(d.flush(), Err(Errno::EIO));
        assert!(d.is_crashed());
        d.recover();
        assert!(d.read_block(0, &mut out).is_ok());
    }

    #[test]
    fn pending_writes_exposed_in_order() {
        let d = CrashDevice::new(RamDisk::new(8));
        for i in 0..3u64 {
            let b = vec![i as u8; BLOCK_SIZE];
            d.write_block(i, &b).unwrap();
        }
        let pend = d.pending_writes();
        assert_eq!(pend.len(), 3);
        assert_eq!(pend[0].blkno, 0);
        assert_eq!(pend[2].blkno, 2);
        assert_eq!(pend[1].data[0], 1);
    }

    #[test]
    fn vectored_io_roundtrips_and_counts_one_io() {
        let d = RamDisk::new(16);
        let mut payload = vec![0u8; 4 * BLOCK_SIZE];
        for (i, chunk) in payload.chunks_mut(BLOCK_SIZE).enumerate() {
            chunk[0] = 0x10 + i as u8;
        }
        d.write_blocks(3, 4, &payload).unwrap();
        let mut back = vec![0u8; 4 * BLOCK_SIZE];
        d.read_blocks(3, 4, &mut back).unwrap();
        assert_eq!(payload, back);
        let s = d.stats();
        assert_eq!(s.reads, 4, "per-block read count still charged");
        assert_eq!(s.writes, 4, "per-block write count still charged");
        assert_eq!(s.vec_ios, 2, "one vectored IO each way");
        // The single blocks are what the extent wrote.
        let mut one = vec![0u8; BLOCK_SIZE];
        d.read_block(5, &mut one).unwrap();
        assert_eq!(one[0], 0x12);
    }

    #[test]
    fn vectored_io_validates_bounds() {
        let d = RamDisk::new(8);
        let mut buf = vec![0u8; 2 * BLOCK_SIZE];
        // Wrong buffer size for the count.
        assert_eq!(d.read_blocks(0, 3, &mut buf), Err(Errno::EINVAL));
        assert_eq!(d.write_blocks(0, 3, &buf), Err(Errno::EINVAL));
        // Extent running past the end of the device.
        assert_eq!(d.read_blocks(7, 2, &mut buf), Err(Errno::ENXIO));
        assert_eq!(d.write_blocks(7, 2, &buf), Err(Errno::ENXIO));
        // Zero-count is a no-op, not an error.
        d.read_blocks(0, 0, &mut []).unwrap();
    }

    #[test]
    fn vectored_extent_charges_single_seek() {
        let d = RamDisk::new(64);
        let base = d.clock().now_ns();
        let mut buf = vec![0u8; 8 * BLOCK_SIZE];
        d.read_blocks(0, 8, &mut buf).unwrap();
        let vectored = d.clock().now_ns() - base;
        // Eight scattered single-block reads pay eight seeks.
        let d2 = RamDisk::new(64);
        let base2 = d2.clock().now_ns();
        let mut one = vec![0u8; BLOCK_SIZE];
        for i in 0..8 {
            d2.read_block(i * 7, &mut one).unwrap();
        }
        let scattered = d2.clock().now_ns() - base2;
        assert!(
            vectored < scattered,
            "extent read ({vectored} ns) should be cheaper than scattered reads ({scattered} ns)"
        );
    }

    #[test]
    fn crash_device_read_validates_before_counting() {
        let d = CrashDevice::new(RamDisk::new(4));
        let mut small = vec![0u8; 16];
        // Validation must not depend on whether the block is in the cache,
        // and rejected reads must not bump the counters.
        assert_eq!(d.read_block(0, &mut small), Err(Errno::EINVAL));
        let mut ok = vec![0u8; BLOCK_SIZE];
        assert_eq!(d.read_block(9, &mut ok), Err(Errno::ENXIO));
        assert_eq!(d.stats().reads, 0);
        d.write_block(0, &ok).unwrap();
        assert_eq!(d.read_block(0, &mut small), Err(Errno::EINVAL));
        assert_eq!(d.stats().reads, 0);
    }

    #[test]
    fn crash_device_flush_error_keeps_unflushed_tail() {
        // Back the cache with a disk that fails the second home write: the
        // drain stops there and everything not yet durable must stay pending.
        let faulty = FaultyDisk::new(RamDisk::new(8), DiskFaultConfig::default(), 1);
        let d = CrashDevice::new(faulty);
        for i in 0..3u64 {
            let b = vec![i as u8 + 1; BLOCK_SIZE];
            d.write_block(i, &b).unwrap();
        }
        d.inner().fail_nth_write(1);
        assert_eq!(d.flush(), Err(Errno::EIO));
        let pend = d.pending_writes();
        assert_eq!(
            pend.iter().map(|w| w.blkno).collect::<Vec<_>>(),
            vec![1, 2],
            "the failed write and the undrained tail stay cached, in order"
        );
        // A retried flush drains the remainder; nothing was lost.
        d.flush().unwrap();
        assert_eq!(d.pending_len(), 0);
        let mut out = vec![0u8; BLOCK_SIZE];
        for i in 0..3u64 {
            d.inner().inner().read_block(i, &mut out).unwrap();
            assert_eq!(out[0], i as u8 + 1);
        }
    }

    #[test]
    fn faulty_disk_scheduled_write_error_is_one_shot() {
        let d = FaultyDisk::new(RamDisk::new(8), DiskFaultConfig::default(), 0);
        let b = vec![5u8; BLOCK_SIZE];
        d.fail_nth_write(2);
        d.write_block(0, &b).unwrap();
        d.write_block(1, &b).unwrap();
        assert_eq!(d.write_block(2, &b), Err(Errno::EIO));
        d.write_block(2, &b).unwrap();
        assert_eq!(d.stats().io_errors, 1);
        // The failed write had no effect on media before the retry.
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(2, &mut out).unwrap();
        assert_eq!(out[0], 5);
    }

    #[test]
    fn faulty_disk_scheduled_flush_error_is_one_shot() {
        let d = FaultyDisk::new(RamDisk::new(4), DiskFaultConfig::default(), 0);
        d.fail_nth_flush(0);
        assert_eq!(d.flush(), Err(Errno::EIO));
        d.flush().unwrap();
        assert_eq!(d.stats().io_errors, 1);
    }

    #[test]
    fn faulty_disk_tears_at_sector_boundaries() {
        let d = FaultyDisk::new(RamDisk::new(4), DiskFaultConfig::default(), 0);
        let ones = vec![1u8; BLOCK_SIZE];
        d.tear_nth_write(0, 3);
        d.write_block(0, &ones).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.inner().read_block(0, &mut out).unwrap();
        let cut = 3 * SECTOR_SIZE;
        assert!(out[..cut].iter().all(|&b| b == 1), "first 3 sectors landed");
        assert!(out[cut..].iter().all(|&b| b == 0), "tail kept old data");
        assert_eq!(d.stats().torn_writes, 1);
    }

    #[test]
    fn faulty_disk_read_corruption_leaves_media_intact() {
        let cfg = DiskFaultConfig {
            read_corrupt: 1.0,
            ..DiskFaultConfig::default()
        };
        let d = FaultyDisk::new(RamDisk::new(4), cfg, 9);
        let zeros = vec![0u8; BLOCK_SIZE];
        d.write_block(0, &zeros).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(0, &mut out).unwrap();
        let flipped: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped in the returned copy");
        assert!(d.stats().corrupt_reads >= 1);
        // The media itself is clean: corruption happens on the wire.
        d.inner().read_block(0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn faulty_disk_seeded_runs_are_reproducible() {
        let run = || {
            let d = FaultyDisk::new(RamDisk::new(16), DiskFaultConfig::adversarial(), 1234);
            let b = vec![7u8; BLOCK_SIZE];
            let mut outcomes = Vec::new();
            for i in 0..64u64 {
                outcomes.push(d.write_block(i % 16, &b).is_ok());
                let mut out = vec![0u8; BLOCK_SIZE];
                outcomes.push(d.read_block(i % 16, &mut out).is_ok());
            }
            outcomes.push(d.flush().is_ok());
            // The trace is part of the replay contract: same seed, same
            // fault schedule, byte-identical trace text.
            (outcomes, d.injected(), d.engine().trace_text())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn faulty_disk_logs_injected_faults_to_the_engine_trace() {
        let engine = ScenarioEngine::new(5);
        let d = FaultyDisk::on_engine(RamDisk::new(8), DiskFaultConfig::default(), &engine);
        let b = vec![1u8; BLOCK_SIZE];
        d.fail_nth_write(0);
        assert_eq!(d.write_block(2, &b), Err(Errno::EIO));
        d.tear_nth_write(0, 2);
        d.write_block(3, &b).unwrap();
        d.fail_nth_flush(0);
        assert_eq!(d.flush(), Err(Errno::EIO));
        let text = engine.trace_text();
        assert!(text.contains("write_eio blk=2 scheduled#0"), "{text}");
        assert!(text.contains("torn_write blk=3 keep=2"), "{text}");
        assert!(text.contains("flush_eio scheduled#"), "{text}");
        // Successful, un-faulted IO stays out of the trace.
        d.write_block(4, &b).unwrap();
        assert_eq!(engine.trace_len(), 3);
    }

    /// Satellite-2 regression: the fault decision is drawn from the
    /// engine stream and the stream lock *released* before the inner
    /// device is touched. The probe device asserts the stream mutex is
    /// free inside every inner call — if a refactor ever moves the draw
    /// back under a lock held across IO (serializing every subsystem's
    /// fault decisions behind the slowest disk, and deadlocking any
    /// inner device that itself draws from the engine), this fails at
    /// the exact offending call instead of as a distant soak timeout.
    #[test]
    fn faulty_disk_never_holds_the_stream_lock_across_inner_io() {
        struct Probe {
            inner: RamDisk,
            stream: Arc<EngineStream>,
        }
        impl Probe {
            fn check(&self, op: &str) {
                assert!(
                    !self.stream.locked_now(),
                    "disk stream lock held across inner {op}"
                );
            }
        }
        impl BlockDevice for Probe {
            fn num_blocks(&self) -> u64 {
                self.inner.num_blocks()
            }
            fn block_size(&self) -> usize {
                self.inner.block_size()
            }
            fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
                self.check("read");
                self.inner.read_block(blkno, buf)
            }
            fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
                self.check("write");
                self.inner.write_block(blkno, buf)
            }
            fn flush(&self) -> KResult<()> {
                self.check("flush");
                self.inner.flush()
            }
            fn stats(&self) -> DeviceStats {
                self.inner.stats()
            }
        }

        let engine = ScenarioEngine::new(0xD15C);
        let probe = Probe {
            inner: RamDisk::new(16),
            stream: engine.stream(subsys::DISK),
        };
        // Every fault class armed, plus the slow-disk delay knobs, so the
        // probe sees the full decision surface: plain writes, torn-write
        // merges (inner read + write), corrupt reads, and flush barriers.
        let cfg = DiskFaultConfig {
            read_eio: 0.1,
            write_eio: 0.1,
            flush_eio: 0.1,
            read_corrupt: 0.2,
            torn_write: 0.3,
            write_delay_ns: 50,
            flush_delay_ns: 50,
        };
        let d = FaultyDisk::on_engine(probe, cfg, &engine);
        let b = vec![9u8; BLOCK_SIZE];
        let mut out = vec![0u8; BLOCK_SIZE];
        for i in 0..200u64 {
            let _ = d.write_block(i % 16, &b);
            let _ = d.read_block(i % 16, &mut out);
            if i % 16 == 0 {
                let _ = d.flush();
            }
        }
        let inj = d.injected();
        assert!(
            inj.io_errors > 0 && inj.torn_writes > 0 && inj.corrupt_reads > 0,
            "probe run must actually exercise the fault paths: {inj:?}"
        );
    }

    #[test]
    fn crash_device_vectored_writes_stay_per_block_pending() {
        // CrashDevice keeps the default per-block implementation so crash
        // enumeration can cut between any two blocks of an extent.
        let d = CrashDevice::new(RamDisk::new(8));
        let payload = vec![9u8; 3 * BLOCK_SIZE];
        d.write_blocks(2, 3, &payload).unwrap();
        let pend = d.pending_writes();
        assert_eq!(pend.len(), 3);
        assert_eq!(pend[0].blkno, 2);
        assert_eq!(pend[2].blkno, 4);
        let mut back = vec![0u8; 3 * BLOCK_SIZE];
        d.read_blocks(2, 3, &mut back).unwrap();
        assert_eq!(back, payload);
    }
}
