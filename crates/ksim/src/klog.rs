//! Ring-buffer kernel log (a miniature `dmesg`).
//!
//! Modules log through a shared [`KLog`]; the ring bounds memory use and the
//! test harness asserts on log contents (e.g. that a contract violation was
//! reported exactly once).

use std::collections::VecDeque;

use parking_lot::Mutex;

/// Severity of a log record, mirroring the kernel's printk levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Debug chatter.
    Debug,
    /// Normal operational messages.
    Info,
    /// Something unexpected but recoverable.
    Warn,
    /// An error the subsystem handled.
    Err,
    /// A detected safety violation (the substrate's analogue of an oops).
    Oops,
}

/// One log record.
#[derive(Debug, Clone)]
pub struct Record {
    /// Severity.
    pub level: Level,
    /// Subsystem tag, e.g. `"vfs"` or `"rsfs"`.
    pub tag: &'static str,
    /// Message body.
    pub msg: String,
}

/// Bounded ring-buffer log.
#[derive(Debug)]
pub struct KLog {
    ring: Mutex<VecDeque<Record>>,
    capacity: usize,
}

impl Default for KLog {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl KLog {
    /// Creates a log holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        KLog {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn log(&self, level: Level, tag: &'static str, msg: impl Into<String>) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(Record {
            level,
            tag,
            msg: msg.into(),
        });
    }

    /// Returns a copy of all retained records, oldest first.
    pub fn records(&self) -> Vec<Record> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Counts retained records at `level` or above.
    pub fn count_at_least(&self, level: Level) -> usize {
        self.ring.lock().iter().filter(|r| r.level >= level).count()
    }

    /// Drops all retained records.
    pub fn clear(&self) {
        self.ring.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_in_order_and_bounds_capacity() {
        let log = KLog::new(3);
        for i in 0..5 {
            log.log(Level::Info, "t", format!("m{i}"));
        }
        let recs = log.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].msg, "m2");
        assert_eq!(recs[2].msg, "m4");
    }

    #[test]
    fn level_counting() {
        let log = KLog::default();
        log.log(Level::Debug, "t", "d");
        log.log(Level::Warn, "t", "w");
        log.log(Level::Oops, "t", "o");
        assert_eq!(log.count_at_least(Level::Warn), 2);
        assert_eq!(log.count_at_least(Level::Oops), 1);
        log.clear();
        assert_eq!(log.records().len(), 0);
    }
}
