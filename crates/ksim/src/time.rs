//! Simulated time.
//!
//! The substrate never reads wall-clock time: every latency (device IO,
//! retransmission timers, lease expiry) is charged to a [`SimClock`] that
//! only moves when a component advances it. This keeps every experiment in
//! the workspace deterministic and lets benches report simulated device time
//! separately from host CPU time.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing simulated clock, in nanoseconds.
#[derive(Debug, Default)]
pub struct SimClock {
    now_ns: AtomicU64,
}

impl SimClock {
    /// Creates a clock at t = 0.
    pub fn new() -> Self {
        SimClock {
            now_ns: AtomicU64::new(0),
        }
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }

    /// Advances the clock by `delta_ns`, returning the new time.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.now_ns.fetch_add(delta_ns, Ordering::Relaxed) + delta_ns
    }

    /// Advances the clock to at least `target_ns` (no-op if already past).
    pub fn advance_to(&self, target_ns: u64) {
        self.now_ns.fetch_max(target_ns, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now_ns(), 15);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = SimClock::new();
        c.advance_to(100);
        assert_eq!(c.now_ns(), 100);
        c.advance_to(50);
        assert_eq!(c.now_ns(), 100, "clock never goes backwards");
    }
}
