//! # sk-ksim — simulated kernel substrate
//!
//! This crate is the "hardware and core-kernel" substrate that the rest of
//! the workspace runs on. The paper ("An Incremental Path Towards a Safer OS
//! Kernel", HotOS '21) targets the real Linux kernel; since we reproduce its
//! roadmap in an offline, deterministic setting, this crate supplies the
//! pieces of Linux the roadmap's modules interact with:
//!
//! - [`block`]: block devices — a RAM disk, a fault-injecting wrapper, and a
//!   crash-capturing wrapper that models a volatile write cache so that
//!   crash-consistency checking can enumerate every crash point.
//! - [`buffer`]: a buffer cache with Linux's `buffer_head` state flags (the
//!   paper's §4.4 uses `buffer_head`'s sixteen flags as its motivating
//!   example of complex interface semantics) and flag-combination validation.
//! - [`kalloc`]: a kernel object arena with generational handles. This is the
//!   mechanism that lets the `sk-legacy` crate *detect* use-after-free and
//!   double-free instead of committing them.
//! - [`lock`]: lock primitives with discipline tracking — lock-order
//!   recording and "which lock protects this field" contracts, modelling the
//!   paper's §4.3 `i_lock`/`i_size` example.
//! - [`time`]: a simulated clock used by the latency model and the netstack.
//! - [`klog`]: a ring-buffer kernel log.
//! - [`errno`]: Linux-style error numbers shared by every crate.
//!
//! Everything here is deterministic: fault injection and latency use seeded
//! RNGs, and the clock only advances when told to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod buffer;
pub mod elevator;
pub mod errno;
pub mod kalloc;
pub mod klog;
pub mod lock;
pub mod scenario;
pub mod time;
pub mod workqueue;

pub use block::{BlockDevice, CrashDevice, FaultConfig, FaultyDevice, RamDisk};
pub use buffer::{BufferCache, BufferHead, BufferState};
pub use elevator::ElevatorDevice;
pub use errno::{Errno, KResult};
pub use kalloc::{Arena, ObjRef};
pub use lock::{KLock, LockRegistry};
pub use scenario::{EngineStream, ScenarioEngine, TraceEvent};
pub use time::SimClock;
pub use workqueue::{Flusher, WorkQueue};
