//! Lock primitives with discipline tracking.
//!
//! The paper's §4.3 example: the VFS `inode` has fields "only modified on
//! specific, known code paths protected by other synchronization mechanisms",
//! three fields protected by `i_lock`, and one (`i_size`) "only *maybe*
//! protected, according to the relevant comment". Nothing but vigilant code
//! review enforces any of this in C.
//!
//! This module makes the discipline *observable*: [`KLock`] registers every
//! acquisition with a [`LockRegistry`] that tracks, per thread, which locks
//! are held and in what order (detecting lock-order inversions), and
//! [`Protected`] wraps a field with the identity of the lock that must be
//! held to touch it, recording a [`Violation`] on undisciplined access. The
//! legacy file system commits exactly the undisciplined `i_size` access the
//! paper describes, and the bug study counts the recorded violations; the
//! safe interfaces make the same access unrepresentable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, ThreadId};

use parking_lot::{Mutex, MutexGuard};

/// Identity of a registered lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockId(u64);

/// A recorded lock-discipline violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A [`Protected`] field was accessed without holding its lock.
    UnlockedFieldAccess {
        /// Name of the protecting lock.
        lock: &'static str,
        /// Name of the field that was touched.
        field: &'static str,
    },
    /// Two locks were acquired in both orders by different call paths.
    OrderInversion {
        /// Name of the first lock of the inverted pair.
        a: &'static str,
        /// Name of the second lock of the inverted pair.
        b: &'static str,
    },
}

#[derive(Default)]
struct RegistryInner {
    /// Locks currently held, per thread, in acquisition order.
    held: HashMap<ThreadId, Vec<LockId>>,
    /// Observed acquired-before pairs: (a, b) means b was taken while a held.
    order: HashMap<(LockId, LockId), ()>,
    names: HashMap<LockId, &'static str>,
    violations: Vec<Violation>,
}

/// Tracks lock acquisitions across a subsystem.
#[derive(Default)]
pub struct LockRegistry {
    inner: Mutex<RegistryInner>,
    next_id: AtomicU64,
}

impl LockRegistry {
    /// Creates an empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(LockRegistry::default())
    }

    fn register(&self, name: &'static str) -> LockId {
        let id = LockId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.inner.lock().names.insert(id, name);
        id
    }

    fn on_acquire(&self, id: LockId) {
        let tid = thread::current().id();
        let mut inner = self.inner.lock();
        let held = inner.held.entry(tid).or_default().clone();
        for &h in &held {
            if h == id {
                continue;
            }
            // Record h -> id; if id -> h already exists, that's an inversion.
            if inner.order.contains_key(&(id, h)) && !inner.order.contains_key(&(h, id)) {
                let a = inner.names.get(&h).copied().unwrap_or("?");
                let b = inner.names.get(&id).copied().unwrap_or("?");
                inner.violations.push(Violation::OrderInversion { a, b });
            }
            inner.order.insert((h, id), ());
        }
        inner.held.entry(tid).or_default().push(id);
    }

    fn on_release(&self, id: LockId) {
        let tid = thread::current().id();
        let mut inner = self.inner.lock();
        if let Some(held) = inner.held.get_mut(&tid) {
            if let Some(pos) = held.iter().rposition(|&h| h == id) {
                held.remove(pos);
            }
        }
    }

    /// True if the calling thread currently holds `id`.
    pub fn holds(&self, id: LockId) -> bool {
        let tid = thread::current().id();
        self.inner
            .lock()
            .held
            .get(&tid)
            .map(|v| v.contains(&id))
            .unwrap_or(false)
    }

    /// Records an undisciplined access to a protected field.
    pub fn record_field_violation(&self, lock: &'static str, field: &'static str) {
        self.inner
            .lock()
            .violations
            .push(Violation::UnlockedFieldAccess { lock, field });
    }

    /// Returns all recorded violations.
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.lock().violations.clone()
    }

    /// Clears recorded violations (between test cases).
    pub fn clear_violations(&self) {
        self.inner.lock().violations.clear();
    }
}

/// A mutex whose acquisitions are tracked by a [`LockRegistry`].
pub struct KLock<T> {
    mutex: Mutex<T>,
    id: LockId,
    name: &'static str,
    registry: Arc<LockRegistry>,
}

/// Guard for a [`KLock`]; releases and unregisters on drop.
pub struct KLockGuard<'a, T> {
    guard: Option<MutexGuard<'a, T>>,
    id: LockId,
    registry: &'a LockRegistry,
}

impl<T> KLock<T> {
    /// Creates a tracked lock named `name` in `registry`.
    pub fn new(registry: Arc<LockRegistry>, name: &'static str, value: T) -> Self {
        let id = registry.register(name);
        KLock {
            mutex: Mutex::new(value),
            id,
            name,
            registry,
        }
    }

    /// Acquires the lock, recording the acquisition.
    pub fn lock(&self) -> KLockGuard<'_, T> {
        let guard = self.mutex.lock();
        self.registry.on_acquire(self.id);
        KLockGuard {
            guard: Some(guard),
            id: self.id,
            registry: &self.registry,
        }
    }

    /// This lock's registry identity (for [`Protected`] contracts).
    pub fn id(&self) -> LockId {
        self.id
    }

    /// This lock's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The registry this lock reports to.
    pub fn registry(&self) -> &Arc<LockRegistry> {
        &self.registry
    }
}

impl<T> std::ops::Deref for KLockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for KLockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for KLockGuard<'_, T> {
    fn drop(&mut self) {
        // Unregister before the underlying mutex releases so a racing
        // acquirer never observes us as "still holding".
        self.registry.on_release(self.id);
        drop(self.guard.take());
    }
}

/// A field that a specific lock is documented to protect.
///
/// Reads and writes go through [`Protected::read`] / [`Protected::write`],
/// which verify the protecting lock is held by the calling thread, or
/// through the `_unchecked` variants, which model the legacy kernel's
/// "access it anyway" paths and record a [`Violation`] when undisciplined.
///
/// Interior storage is a plain atomic-free cell guarded by its own private
/// mutex, so *memory* safety is never at stake — only the discipline is.
pub struct Protected<T> {
    value: Mutex<T>,
    lock: LockId,
    lock_name: &'static str,
    field: &'static str,
    registry: Arc<LockRegistry>,
}

impl<T: Clone> Protected<T> {
    /// Declares that `field` is protected by `lock`.
    pub fn new<L>(lock: &KLock<L>, field: &'static str, value: T) -> Self {
        Protected {
            value: Mutex::new(value),
            lock: lock.id(),
            lock_name: lock.name(),
            field,
            registry: Arc::clone(lock.registry()),
        }
    }

    /// Disciplined read: requires the protecting lock to be held.
    ///
    /// Returns `None` (and records a violation) when undisciplined, so
    /// callers cannot accidentally ignore the contract.
    pub fn read(&self) -> Option<T> {
        if !self.registry.holds(self.lock) {
            self.registry
                .record_field_violation(self.lock_name, self.field);
            return None;
        }
        Some(self.value.lock().clone())
    }

    /// Disciplined write; same contract as [`Protected::read`].
    pub fn write(&self, v: T) -> bool {
        if !self.registry.holds(self.lock) {
            self.registry
                .record_field_violation(self.lock_name, self.field);
            return false;
        }
        *self.value.lock() = v;
        true
    }

    /// Legacy-style read that goes through regardless, recording a
    /// violation when the lock is not held (the `i_size` "maybe protected"
    /// pattern).
    pub fn read_unchecked(&self) -> T {
        if !self.registry.holds(self.lock) {
            self.registry
                .record_field_violation(self.lock_name, self.field);
        }
        self.value.lock().clone()
    }

    /// Legacy-style write that goes through regardless (recording a
    /// violation when undisciplined).
    pub fn write_unchecked(&self, v: T) {
        if !self.registry.holds(self.lock) {
            self.registry
                .record_field_violation(self.lock_name, self.field);
        }
        *self.value.lock() = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_registers_and_unregisters() {
        let reg = LockRegistry::new();
        let l = KLock::new(Arc::clone(&reg), "l", 0u32);
        assert!(!reg.holds(l.id()));
        {
            let _g = l.lock();
            assert!(reg.holds(l.id()));
        }
        assert!(!reg.holds(l.id()));
    }

    #[test]
    fn protected_field_requires_lock() {
        let reg = LockRegistry::new();
        let l = KLock::new(Arc::clone(&reg), "i_lock", ());
        let size = Protected::new(&l, "i_size", 0u64);
        assert_eq!(size.read(), None, "undisciplined read refused");
        assert!(!size.write(10));
        assert_eq!(reg.violations().len(), 2);
        let _g = l.lock();
        assert!(size.write(10));
        assert_eq!(size.read(), Some(10));
        assert_eq!(reg.violations().len(), 2, "disciplined access is clean");
    }

    #[test]
    fn unchecked_access_goes_through_but_is_recorded() {
        let reg = LockRegistry::new();
        let l = KLock::new(Arc::clone(&reg), "i_lock", ());
        let size = Protected::new(&l, "i_size", 5u64);
        size.write_unchecked(6);
        assert_eq!(size.read_unchecked(), 6);
        assert_eq!(
            reg.violations(),
            vec![
                Violation::UnlockedFieldAccess {
                    lock: "i_lock",
                    field: "i_size"
                };
                2
            ]
        );
    }

    #[test]
    fn lock_order_inversion_detected() {
        let reg = LockRegistry::new();
        let a = KLock::new(Arc::clone(&reg), "a", ());
        let b = KLock::new(Arc::clone(&reg), "b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // Order a -> b recorded.
        }
        {
            let _gb = b.lock();
            let _ga = a.lock(); // Order b -> a: inversion.
        }
        let v = reg.violations();
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::OrderInversion { .. }));
    }

    #[test]
    fn reacquiring_same_pair_in_same_order_is_clean() {
        let reg = LockRegistry::new();
        let a = KLock::new(Arc::clone(&reg), "a", ());
        let b = KLock::new(Arc::clone(&reg), "b", ());
        for _ in 0..3 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        assert!(reg.violations().is_empty());
    }

    #[test]
    fn violations_clearable() {
        let reg = LockRegistry::new();
        reg.record_field_violation("l", "f");
        assert_eq!(reg.violations().len(), 1);
        reg.clear_violations();
        assert!(reg.violations().is_empty());
    }
}
