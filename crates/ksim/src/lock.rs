//! Lock primitives with lockdep-style discipline tracking.
//!
//! The paper's §4.3 example: the VFS `inode` has fields "only modified on
//! specific, known code paths protected by other synchronization mechanisms",
//! three fields protected by `i_lock`, and one (`i_size`) "only *maybe*
//! protected, according to the relevant comment". Nothing but vigilant code
//! review enforces any of this in C.
//!
//! This module makes the discipline *observable*, in the style of the Linux
//! kernel's lockdep:
//!
//! - **Lock classes.** Every tracked lock belongs to a *class* named at
//!   construction ("buffer.shard", "journal.group", …). All N shards of a
//!   striped structure share one class, so the acquires-after graph stays
//!   small no matter how wide the striping is. Per-instance [`LockId`]s are
//!   retained for [`Protected`] field contracts.
//! - **Acquires-after DAG with transitive cycle detection.** Taking lock
//!   class B while holding class A records the edge A→B. Before a new edge
//!   is admitted, a BFS checks whether the reverse path already exists; if
//!   it does, the full witness chain (A→B→…→A) is reported — not just the
//!   closing pair — and the closing edge is *not* inserted, so the graph
//!   stays acyclic and later witnesses stay meaningful. Direct two-lock
//!   inversions still report as [`Violation::OrderInversion`]; longer
//!   cycles report as [`Violation::OrderCycle`].
//! - **Trylock exemption.** A trylock is not an ordering commitment: a
//!   successful `try_lock` never *creates* incoming edges (the acquirer
//!   would have backed off rather than blocked), but the lock it now holds
//!   does source edges for later blocking acquisitions.
//! - **Same-class nesting ranks.** Holding two locks of one class is
//!   normally a self-deadlock hazard and reports
//!   [`Violation::SameClassNesting`]; striped structures that sweep their
//!   shards in fixed index order declare a per-instance *rank* and may nest
//!   in strictly increasing rank order (the dcache's snapshot walk). A
//!   successful same-class `try_lock` is exempt like any other trylock —
//!   it backs off rather than deadlocks (the sharded op-lock extension).
//! - **Held-across-blocking-I/O.** Device drivers call
//!   [`LockRegistry::note_blocking_io`] at the `BlockDevice` boundary; any
//!   lock class held there that was not declared `io_ok` at construction is
//!   reported as [`Violation::HeldAcrossIo`]. In the simulated substrate
//!   "blocking I/O" means a `BlockDevice` call — the operation a real
//!   kernel would sleep on.
//! - **Per-class counters.** Acquisitions, contended acquisitions and
//!   cumulative hold time per class, surfaced via
//!   [`LockRegistry::class_stats`] for `bench_report --lockdep`.
//!
//! Reports are deduplicated per class pair (cycles), per class (nesting)
//! and per class+operation (I/O), so a hot loop produces one finding, not
//! a flood.
//!
//! [`KLock`] / [`Protected`] keep the original field-discipline semantics:
//! the legacy file system commits exactly the undisciplined `i_size` access
//! the paper describes, and the bug study counts the recorded violations.
//! [`TrackedMutex`] and [`TrackedRwLock`] wrap `parking_lot` primitives for
//! the hot paths (buffer-cache shards, journal state, dcache shards,
//! netstack tables); a registry constructed with
//! [`LockRegistry::new_disabled`] skips all graph work so benchmarks can
//! opt out of the instrumentation cost.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, ThreadId};
use std::time::Instant;

use parking_lot::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Identity of a registered lock *instance*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockId(u64);

/// A recorded lock-discipline violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A [`Protected`] field was accessed without holding its lock.
    UnlockedFieldAccess {
        /// Name of the protecting lock.
        lock: &'static str,
        /// Name of the field that was touched.
        field: &'static str,
    },
    /// Two lock classes were acquired in both orders by different call
    /// paths (a direct two-class cycle).
    OrderInversion {
        /// Name of the class held first on the established path.
        a: &'static str,
        /// Name of the class whose acquisition closed the cycle.
        b: &'static str,
    },
    /// A new acquires-after edge closed a cycle of three or more classes.
    OrderCycle {
        /// The witness chain: class names from the held class through the
        /// existing path back to itself (first and last entries repeat).
        chain: Vec<&'static str>,
    },
    /// A lock class not declared `io_ok` was held across a blocking
    /// `BlockDevice` operation.
    HeldAcrossIo {
        /// Name of the held class.
        lock: &'static str,
        /// The device operation (e.g. `"write_block"`).
        op: &'static str,
    },
    /// Two locks of one class were nested outside the fixed-rank order.
    SameClassNesting {
        /// Name of the class.
        class: &'static str,
    },
}

/// Per-class usage counters (snapshot from [`LockRegistry::class_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassStats {
    /// Class name.
    pub name: &'static str,
    /// Successful acquisitions (including trylocks and reacquisitions
    /// after a condvar wait).
    pub acquisitions: u64,
    /// Acquisitions that found the lock held and had to block.
    pub contended: u64,
    /// Cumulative wall-clock hold time in nanoseconds.
    pub held_ns: u64,
}

#[derive(Default)]
struct ClassCounters {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    held_ns: AtomicU64,
}

struct ClassInfo {
    name: &'static str,
    io_ok: bool,
    counters: Arc<ClassCounters>,
}

struct HeldEntry {
    id: LockId,
    class: u32,
    rank: Option<u64>,
}

#[derive(Default)]
struct RegistryInner {
    /// Locks currently held, per thread, in acquisition order.
    held: HashMap<ThreadId, Vec<HeldEntry>>,
    /// Class name → class index.
    classes: HashMap<&'static str, u32>,
    class_info: Vec<ClassInfo>,
    /// Acquires-after edges between classes; kept acyclic.
    edges: HashMap<u32, HashSet<u32>>,
    /// Cycle reports already made, per (held, acquired) class pair.
    cycle_reported: HashSet<(u32, u32)>,
    /// Held-across-I/O reports already made, per (class, op).
    io_reported: HashSet<(u32, &'static str)>,
    /// Same-class nesting reports already made, per class.
    nest_reported: HashSet<u32>,
    cycles_found: u64,
    violations: Vec<Violation>,
}

/// BFS over `edges` from `from` to `to`; returns the node path
/// (inclusive of both endpoints) if one exists.
fn reach(edges: &HashMap<u32, HashSet<u32>>, from: u32, to: u32) -> Option<Vec<u32>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut parent: HashMap<u32, u32> = HashMap::new();
    parent.insert(from, from);
    let mut queue = VecDeque::from([from]);
    while let Some(n) = queue.pop_front() {
        let Some(next) = edges.get(&n) else { continue };
        for &m in next {
            if parent.contains_key(&m) {
                continue;
            }
            parent.insert(m, n);
            if m == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(m);
        }
    }
    None
}

/// Tracks lock acquisitions across a subsystem.
pub struct LockRegistry {
    inner: Mutex<RegistryInner>,
    next_id: AtomicU64,
    enabled: AtomicBool,
}

impl Default for LockRegistry {
    fn default() -> Self {
        LockRegistry {
            inner: Mutex::new(RegistryInner::default()),
            next_id: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }
}

impl LockRegistry {
    /// Creates an empty registry with lockdep checking enabled.
    pub fn new() -> Arc<Self> {
        Arc::new(LockRegistry::default())
    }

    /// Creates a registry with lockdep checking disabled: counters still
    /// accumulate, but no graph or held-stack work happens for the
    /// tracked wrapper types (benchmarks use this to measure the
    /// uninstrumented hot path).
    pub fn new_disabled() -> Arc<Self> {
        let r = LockRegistry::default();
        r.enabled.store(false, Ordering::Relaxed);
        Arc::new(r)
    }

    /// Turns lockdep checking on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether lockdep checking is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Registers one lock instance under class `name`. The first
    /// registration of a class fixes its `io_ok` policy.
    fn register(&self, name: &'static str, io_ok: bool) -> (LockId, u32, Arc<ClassCounters>) {
        let id = LockId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let mut inner = self.inner.lock();
        let class = match inner.classes.get(name) {
            Some(&c) => c,
            None => {
                let c = inner.class_info.len() as u32;
                inner.classes.insert(name, c);
                inner.class_info.push(ClassInfo {
                    name,
                    io_ok,
                    counters: Arc::default(),
                });
                c
            }
        };
        let counters = Arc::clone(&inner.class_info[class as usize].counters);
        (id, class, counters)
    }

    /// Graph bookkeeping for one blocking or trylock acquisition. The
    /// held-stack push happens here too, so pairing with
    /// [`LockRegistry::on_release`] is the caller's only obligation.
    fn on_acquire(&self, id: LockId, class: u32, rank: Option<u64>, trylock: bool) {
        let tid = thread::current().id();
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let held: Vec<(u32, Option<u64>)> = inner
            .held
            .get(&tid)
            .map(|v| v.iter().map(|e| (e.class, e.rank)).collect())
            .unwrap_or_default();

        // Same-class nesting: legal only in strictly increasing rank
        // order (the fixed-index shard sweep) — or via trylock, which
        // cannot self-deadlock because it backs off instead of blocking
        // (the sharded op-lock path uses this for out-of-order stripe
        // extension); anything else is a self-deadlock hazard.
        if !trylock {
            for &(hc, hr) in &held {
                if hc != class {
                    continue;
                }
                let ordered = matches!((hr, rank), (Some(a), Some(b)) if a < b);
                if !ordered && inner.nest_reported.insert(class) {
                    inner.violations.push(Violation::SameClassNesting {
                        class: inner.class_info[class as usize].name,
                    });
                }
            }
        }

        // A trylock is not an ordering commitment: had the lock been
        // held, the acquirer would have backed off, not blocked.
        if !trylock {
            for &(hc, _) in &held {
                if hc == class {
                    continue;
                }
                if inner.edges.get(&hc).is_some_and(|s| s.contains(&class)) {
                    continue;
                }
                // New edge hc → class. If class already reaches hc the
                // edge would close a cycle: report the witness and leave
                // the graph acyclic.
                if let Some(path) = reach(&inner.edges, class, hc) {
                    if inner.cycle_reported.insert((hc, class)) {
                        inner.cycles_found += 1;
                        let name = |c: u32| inner.class_info[c as usize].name;
                        if path.len() == 2 {
                            inner.violations.push(Violation::OrderInversion {
                                a: name(hc),
                                b: name(class),
                            });
                        } else {
                            let mut chain: Vec<&'static str> = Vec::with_capacity(path.len() + 1);
                            chain.push(name(hc));
                            chain.extend(path.iter().map(|&c| name(c)));
                            inner.violations.push(Violation::OrderCycle { chain });
                        }
                    }
                } else {
                    inner.edges.entry(hc).or_default().insert(class);
                }
            }
        }

        inner
            .held
            .entry(tid)
            .or_default()
            .push(HeldEntry { id, class, rank });
    }

    fn on_release(&self, id: LockId) {
        let tid = thread::current().id();
        let mut inner = self.inner.lock();
        if let Some(held) = inner.held.get_mut(&tid) {
            if let Some(pos) = held.iter().rposition(|e| e.id == id) {
                held.remove(pos);
            }
        }
    }

    /// Reports a blocking `BlockDevice` operation: every lock class the
    /// calling thread holds that was not declared `io_ok` is flagged
    /// (once per class+operation).
    pub fn note_blocking_io(&self, op: &'static str) {
        if !self.is_enabled() {
            return;
        }
        let tid = thread::current().id();
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let held: Vec<u32> = inner
            .held
            .get(&tid)
            .map(|v| v.iter().map(|e| e.class).collect())
            .unwrap_or_default();
        for c in held {
            if inner.class_info[c as usize].io_ok {
                continue;
            }
            if inner.io_reported.insert((c, op)) {
                inner.violations.push(Violation::HeldAcrossIo {
                    lock: inner.class_info[c as usize].name,
                    op,
                });
            }
        }
    }

    /// True if the calling thread currently holds `id`.
    pub fn holds(&self, id: LockId) -> bool {
        let tid = thread::current().id();
        self.inner
            .lock()
            .held
            .get(&tid)
            .map(|v| v.iter().any(|e| e.id == id))
            .unwrap_or(false)
    }

    /// Records an undisciplined access to a protected field.
    pub fn record_field_violation(&self, lock: &'static str, field: &'static str) {
        self.inner
            .lock()
            .violations
            .push(Violation::UnlockedFieldAccess { lock, field });
    }

    /// Returns all recorded violations.
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.lock().violations.clone()
    }

    /// Clears recorded violations (between test cases). The graph, the
    /// report-dedup sets and the counters are left intact.
    pub fn clear_violations(&self) {
        self.inner.lock().violations.clear();
    }

    /// Number of lock classes registered so far.
    pub fn class_count(&self) -> usize {
        self.inner.lock().class_info.len()
    }

    /// Number of cycles found (deduplicated) since creation.
    pub fn cycles_found(&self) -> u64 {
        self.inner.lock().cycles_found
    }

    /// Snapshot of the acquires-after edges, as class-name pairs.
    pub fn edges(&self) -> Vec<(&'static str, &'static str)> {
        let inner = self.inner.lock();
        let mut out: Vec<(&'static str, &'static str)> = Vec::new();
        for (&a, next) in &inner.edges {
            for &b in next {
                out.push((
                    inner.class_info[a as usize].name,
                    inner.class_info[b as usize].name,
                ));
            }
        }
        out.sort_unstable();
        out
    }

    /// Per-class counter snapshot, sorted by class name.
    pub fn class_stats(&self) -> Vec<ClassStats> {
        let inner = self.inner.lock();
        let mut out: Vec<ClassStats> = inner
            .class_info
            .iter()
            .map(|c| ClassStats {
                name: c.name,
                acquisitions: c.counters.acquisitions.load(Ordering::Relaxed),
                contended: c.counters.contended.load(Ordering::Relaxed),
                held_ns: c.counters.held_ns.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_unstable_by_key(|s| s.name);
        out
    }
}

/// A mutex whose acquisitions are tracked by a [`LockRegistry`].
///
/// `KLock` is the op-level primitive: it always maintains the held stack
/// (so [`Protected`] contracts work even on a disabled registry) and
/// participates in the acquires-after graph when the registry is enabled.
pub struct KLock<T> {
    mutex: Mutex<T>,
    id: LockId,
    class: u32,
    name: &'static str,
    counters: Arc<ClassCounters>,
    registry: Arc<LockRegistry>,
}

/// Guard for a [`KLock`]; releases and unregisters on drop.
pub struct KLockGuard<'a, T> {
    guard: Option<MutexGuard<'a, T>>,
    id: LockId,
    counters: &'a ClassCounters,
    registry: &'a LockRegistry,
    since: Instant,
}

impl<T> KLock<T> {
    /// Creates a tracked lock in class `name` in `registry`.
    pub fn new(registry: Arc<LockRegistry>, name: &'static str, value: T) -> Self {
        let (id, class, counters) = registry.register(name, false);
        KLock {
            mutex: Mutex::new(value),
            id,
            class,
            name,
            counters,
            registry,
        }
    }

    /// Acquires the lock, recording the acquisition.
    pub fn lock(&self) -> KLockGuard<'_, T> {
        let guard = match self.mutex.try_lock() {
            Some(g) => g,
            None => {
                self.counters.contended.fetch_add(1, Ordering::Relaxed);
                self.mutex.lock()
            }
        };
        self.counters.acquisitions.fetch_add(1, Ordering::Relaxed);
        self.registry.on_acquire(self.id, self.class, None, false);
        KLockGuard {
            guard: Some(guard),
            id: self.id,
            counters: &self.counters,
            registry: &self.registry,
            since: Instant::now(),
        }
    }

    /// This lock's registry identity (for [`Protected`] contracts).
    pub fn id(&self) -> LockId {
        self.id
    }

    /// This lock's class name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The registry this lock reports to.
    pub fn registry(&self) -> &Arc<LockRegistry> {
        &self.registry
    }
}

impl<T> std::ops::Deref for KLockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for KLockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for KLockGuard<'_, T> {
    fn drop(&mut self) {
        self.counters
            .held_ns
            .fetch_add(self.since.elapsed().as_nanos() as u64, Ordering::Relaxed);
        // Unregister before the underlying mutex releases so a racing
        // acquirer never observes us as "still holding".
        self.registry.on_release(self.id);
        drop(self.guard.take());
    }
}

/// A `parking_lot::Mutex` whose acquisitions feed the lockdep graph.
///
/// This is the hot-path primitive: when the registry is disabled the only
/// overhead over the raw mutex is three relaxed atomic counter updates.
pub struct TrackedMutex<T> {
    mutex: Mutex<T>,
    id: LockId,
    class: u32,
    rank: Option<u64>,
    counters: Arc<ClassCounters>,
    registry: Arc<LockRegistry>,
}

/// Guard for a [`TrackedMutex`].
pub struct TrackedMutexGuard<'a, T> {
    guard: Option<MutexGuard<'a, T>>,
    lock: &'a TrackedMutex<T>,
    registered: bool,
    since: Instant,
}

impl<T> TrackedMutex<T> {
    fn build(
        registry: &Arc<LockRegistry>,
        name: &'static str,
        rank: Option<u64>,
        io_ok: bool,
        value: T,
    ) -> Self {
        let (id, class, counters) = registry.register(name, io_ok);
        TrackedMutex {
            mutex: Mutex::new(value),
            id,
            class,
            rank,
            counters,
            registry: Arc::clone(registry),
        }
    }

    /// Creates a tracked mutex in class `name` (no rank, I/O under it
    /// flagged).
    pub fn new(registry: &Arc<LockRegistry>, name: &'static str, value: T) -> Self {
        Self::build(registry, name, None, false, value)
    }

    /// Creates a tracked mutex with a same-class nesting rank: locks of
    /// one class may be nested only in strictly increasing rank order
    /// (the fixed-index shard sweep).
    pub fn new_ranked(
        registry: &Arc<LockRegistry>,
        name: &'static str,
        rank: u64,
        value: T,
    ) -> Self {
        Self::build(registry, name, Some(rank), false, value)
    }

    /// Creates a tracked mutex whose class may legitimately be held
    /// across blocking device I/O (e.g. a lock that exists to serialize
    /// the I/O itself).
    pub fn new_io_ok(registry: &Arc<LockRegistry>, name: &'static str, value: T) -> Self {
        Self::build(registry, name, None, true, value)
    }

    /// Ranked *and* I/O-exempt: a striped lock whose stripes are taken
    /// in fixed ascending index order and held across the device I/O
    /// they serialize (the sharded op-lock idiom).
    pub fn new_ranked_io_ok(
        registry: &Arc<LockRegistry>,
        name: &'static str,
        rank: u64,
        value: T,
    ) -> Self {
        Self::build(registry, name, Some(rank), true, value)
    }

    /// Acquires the lock, blocking if contended.
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        let guard = match self.mutex.try_lock() {
            Some(g) => g,
            None => {
                self.counters.contended.fetch_add(1, Ordering::Relaxed);
                self.mutex.lock()
            }
        };
        self.counters.acquisitions.fetch_add(1, Ordering::Relaxed);
        let registered = self.registry.is_enabled();
        if registered {
            self.registry
                .on_acquire(self.id, self.class, self.rank, false);
        }
        TrackedMutexGuard {
            guard: Some(guard),
            lock: self,
            registered,
            since: Instant::now(),
        }
    }

    /// Opportunistic acquisition; exempt from ordering checks (a failed
    /// or opportunistic trylock is not an ordering commitment).
    pub fn try_lock(&self) -> Option<TrackedMutexGuard<'_, T>> {
        let guard = self.mutex.try_lock()?;
        self.counters.acquisitions.fetch_add(1, Ordering::Relaxed);
        let registered = self.registry.is_enabled();
        if registered {
            self.registry
                .on_acquire(self.id, self.class, self.rank, true);
        }
        Some(TrackedMutexGuard {
            guard: Some(guard),
            lock: self,
            registered,
            since: Instant::now(),
        })
    }
}

impl<'a, T> TrackedMutexGuard<'a, T> {
    fn flush_hold_time(&mut self) {
        self.lock
            .counters
            .held_ns
            .fetch_add(self.since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Blocks on `cv`, releasing the mutex while waiting. The lock is
    /// de-registered for the duration — a waiter holds nothing.
    pub fn wait(&mut self, cv: &Condvar) {
        self.flush_hold_time();
        if self.registered {
            self.lock.registry.on_release(self.lock.id);
        }
        cv.wait(self.guard.as_mut().expect("guard present until drop"));
        if self.registered {
            self.lock
                .registry
                .on_acquire(self.lock.id, self.lock.class, self.lock.rank, false);
        }
        self.lock
            .counters
            .acquisitions
            .fetch_add(1, Ordering::Relaxed);
        self.since = Instant::now();
    }

    /// Temporarily releases the mutex around `f` (device I/O without the
    /// lock), re-acquiring afterwards.
    pub fn unlocked<R>(&mut self, f: impl FnOnce() -> R) -> R {
        self.flush_hold_time();
        if self.registered {
            self.lock.registry.on_release(self.lock.id);
        }
        let r = MutexGuard::unlocked(self.guard.as_mut().expect("guard present until drop"), f);
        if self.registered {
            self.lock
                .registry
                .on_acquire(self.lock.id, self.lock.class, self.lock.rank, false);
        }
        self.lock
            .counters
            .acquisitions
            .fetch_add(1, Ordering::Relaxed);
        self.since = Instant::now();
        r
    }
}

impl<T> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.flush_hold_time();
        if self.registered {
            self.lock.registry.on_release(self.lock.id);
        }
        drop(self.guard.take());
    }
}

/// A `parking_lot::RwLock` whose acquisitions feed the lockdep graph.
///
/// Read acquisitions participate in the ordering graph exactly like
/// writes: a reader blocking on a writer deadlocks the same way.
pub struct TrackedRwLock<T> {
    rw: RwLock<T>,
    id: LockId,
    class: u32,
    rank: Option<u64>,
    counters: Arc<ClassCounters>,
    registry: Arc<LockRegistry>,
}

/// Shared-read guard for a [`TrackedRwLock`].
pub struct TrackedReadGuard<'a, T> {
    guard: Option<RwLockReadGuard<'a, T>>,
    lock: &'a TrackedRwLock<T>,
    registered: bool,
    since: Instant,
}

/// Exclusive-write guard for a [`TrackedRwLock`].
pub struct TrackedWriteGuard<'a, T> {
    guard: Option<RwLockWriteGuard<'a, T>>,
    lock: &'a TrackedRwLock<T>,
    registered: bool,
    since: Instant,
}

impl<T> TrackedRwLock<T> {
    fn build(
        registry: &Arc<LockRegistry>,
        name: &'static str,
        rank: Option<u64>,
        io_ok: bool,
        value: T,
    ) -> Self {
        let (id, class, counters) = registry.register(name, io_ok);
        TrackedRwLock {
            rw: RwLock::new(value),
            id,
            class,
            rank,
            counters,
            registry: Arc::clone(registry),
        }
    }

    /// Creates a tracked rwlock in class `name`.
    pub fn new(registry: &Arc<LockRegistry>, name: &'static str, value: T) -> Self {
        Self::build(registry, name, None, false, value)
    }

    /// Creates a tracked rwlock with a same-class nesting rank (see
    /// [`TrackedMutex::new_ranked`]).
    pub fn new_ranked(
        registry: &Arc<LockRegistry>,
        name: &'static str,
        rank: u64,
        value: T,
    ) -> Self {
        Self::build(registry, name, Some(rank), false, value)
    }

    fn note_acquire(&self, trylock: bool) -> bool {
        self.counters.acquisitions.fetch_add(1, Ordering::Relaxed);
        let registered = self.registry.is_enabled();
        if registered {
            self.registry
                .on_acquire(self.id, self.class, self.rank, trylock);
        }
        registered
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        let guard = match self.rw.try_read() {
            Some(g) => g,
            None => {
                self.counters.contended.fetch_add(1, Ordering::Relaxed);
                self.rw.read()
            }
        };
        let registered = self.note_acquire(false);
        TrackedReadGuard {
            guard: Some(guard),
            lock: self,
            registered,
            since: Instant::now(),
        }
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        let guard = match self.rw.try_write() {
            Some(g) => g,
            None => {
                self.counters.contended.fetch_add(1, Ordering::Relaxed);
                self.rw.write()
            }
        };
        let registered = self.note_acquire(false);
        TrackedWriteGuard {
            guard: Some(guard),
            lock: self,
            registered,
            since: Instant::now(),
        }
    }

    /// Opportunistic write acquisition; exempt from ordering checks.
    pub fn try_write(&self) -> Option<TrackedWriteGuard<'_, T>> {
        let guard = self.rw.try_write()?;
        let registered = self.note_acquire(true);
        Some(TrackedWriteGuard {
            guard: Some(guard),
            lock: self,
            registered,
            since: Instant::now(),
        })
    }
}

macro_rules! rw_guard_impl {
    ($guard:ident) => {
        impl<T> std::ops::Deref for $guard<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                self.guard.as_ref().expect("guard present until drop")
            }
        }

        impl<T> Drop for $guard<'_, T> {
            fn drop(&mut self) {
                self.lock
                    .counters
                    .held_ns
                    .fetch_add(self.since.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if self.registered {
                    self.lock.registry.on_release(self.lock.id);
                }
                drop(self.guard.take());
            }
        }
    };
}

rw_guard_impl!(TrackedReadGuard);
rw_guard_impl!(TrackedWriteGuard);

impl<T> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

/// A field that a specific lock is documented to protect.
///
/// Reads and writes go through [`Protected::read`] / [`Protected::write`],
/// which verify the protecting lock is held by the calling thread, or
/// through the `_unchecked` variants, which model the legacy kernel's
/// "access it anyway" paths and record a [`Violation`] when undisciplined.
///
/// Interior storage is a plain atomic-free cell guarded by its own private
/// mutex, so *memory* safety is never at stake — only the discipline is.
pub struct Protected<T> {
    value: Mutex<T>,
    lock: LockId,
    lock_name: &'static str,
    field: &'static str,
    registry: Arc<LockRegistry>,
}

impl<T: Clone> Protected<T> {
    /// Declares that `field` is protected by `lock`.
    pub fn new<L>(lock: &KLock<L>, field: &'static str, value: T) -> Self {
        Protected {
            value: Mutex::new(value),
            lock: lock.id(),
            lock_name: lock.name(),
            field,
            registry: Arc::clone(lock.registry()),
        }
    }

    /// Disciplined read: requires the protecting lock to be held.
    ///
    /// Returns `None` (and records a violation) when undisciplined, so
    /// callers cannot accidentally ignore the contract.
    pub fn read(&self) -> Option<T> {
        if !self.registry.holds(self.lock) {
            self.registry
                .record_field_violation(self.lock_name, self.field);
            return None;
        }
        Some(self.value.lock().clone())
    }

    /// Disciplined write; same contract as [`Protected::read`].
    pub fn write(&self, v: T) -> bool {
        if !self.registry.holds(self.lock) {
            self.registry
                .record_field_violation(self.lock_name, self.field);
            return false;
        }
        *self.value.lock() = v;
        true
    }

    /// Legacy-style read that goes through regardless, recording a
    /// violation when the lock is not held (the `i_size` "maybe protected"
    /// pattern).
    pub fn read_unchecked(&self) -> T {
        if !self.registry.holds(self.lock) {
            self.registry
                .record_field_violation(self.lock_name, self.field);
        }
        self.value.lock().clone()
    }

    /// Legacy-style write that goes through regardless (recording a
    /// violation when undisciplined).
    pub fn write_unchecked(&self, v: T) {
        if !self.registry.holds(self.lock) {
            self.registry
                .record_field_violation(self.lock_name, self.field);
        }
        *self.value.lock() = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_registers_and_unregisters() {
        let reg = LockRegistry::new();
        let l = KLock::new(Arc::clone(&reg), "l", 0u32);
        assert!(!reg.holds(l.id()));
        {
            let _g = l.lock();
            assert!(reg.holds(l.id()));
        }
        assert!(!reg.holds(l.id()));
    }

    #[test]
    fn protected_field_requires_lock() {
        let reg = LockRegistry::new();
        let l = KLock::new(Arc::clone(&reg), "i_lock", ());
        let size = Protected::new(&l, "i_size", 0u64);
        assert_eq!(size.read(), None, "undisciplined read refused");
        assert!(!size.write(10));
        assert_eq!(reg.violations().len(), 2);
        let _g = l.lock();
        assert!(size.write(10));
        assert_eq!(size.read(), Some(10));
        assert_eq!(reg.violations().len(), 2, "disciplined access is clean");
    }

    #[test]
    fn unchecked_access_goes_through_but_is_recorded() {
        let reg = LockRegistry::new();
        let l = KLock::new(Arc::clone(&reg), "i_lock", ());
        let size = Protected::new(&l, "i_size", 5u64);
        size.write_unchecked(6);
        assert_eq!(size.read_unchecked(), 6);
        assert_eq!(
            reg.violations(),
            vec![
                Violation::UnlockedFieldAccess {
                    lock: "i_lock",
                    field: "i_size"
                };
                2
            ]
        );
    }

    #[test]
    fn lock_order_inversion_detected() {
        let reg = LockRegistry::new();
        let a = KLock::new(Arc::clone(&reg), "a", ());
        let b = KLock::new(Arc::clone(&reg), "b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // Order a -> b recorded.
        }
        {
            let _gb = b.lock();
            let _ga = a.lock(); // Order b -> a: inversion.
        }
        let v = reg.violations();
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::OrderInversion { .. }));
        assert_eq!(reg.cycles_found(), 1);
    }

    #[test]
    fn reacquiring_same_pair_in_same_order_is_clean() {
        let reg = LockRegistry::new();
        let a = KLock::new(Arc::clone(&reg), "a", ());
        let b = KLock::new(Arc::clone(&reg), "b", ());
        for _ in 0..3 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        assert!(reg.violations().is_empty());
    }

    #[test]
    fn violations_clearable() {
        let reg = LockRegistry::new();
        reg.record_field_violation("l", "f");
        assert_eq!(reg.violations().len(), 1);
        reg.clear_violations();
        assert!(reg.violations().is_empty());
    }

    /// The acceptance-criteria case: a transitive three-lock cycle
    /// (a→b, b→c, then c→a) that the old pairwise check — which only
    /// looked for a direct (new, held) edge — could never see.
    #[test]
    fn transitive_three_lock_cycle_detected_with_witness_chain() {
        let reg = LockRegistry::new();
        let a = KLock::new(Arc::clone(&reg), "a", ());
        let b = KLock::new(Arc::clone(&reg), "b", ());
        let c = KLock::new(Arc::clone(&reg), "c", ());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // a -> b
        }
        {
            let _gb = b.lock();
            let _gc = c.lock(); // b -> c
        }
        assert!(
            reg.violations().is_empty(),
            "no direct pair is ever inverted"
        );
        {
            let _gc = c.lock();
            let _ga = a.lock(); // c -> a closes a ⇒ b ⇒ c ⇒ a
        }
        let v = reg.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        match &v[0] {
            Violation::OrderCycle { chain } => {
                assert_eq!(chain, &vec!["c", "a", "b", "c"], "full witness chain");
            }
            other => panic!("expected OrderCycle, got {other:?}"),
        }
        assert_eq!(reg.cycles_found(), 1);
    }

    /// Satellite: repeated traversals of a known-bad pair report once,
    /// not once per acquisition.
    #[test]
    fn cycle_reports_dedupe_per_class_pair() {
        let reg = LockRegistry::new();
        let a = KLock::new(Arc::clone(&reg), "a", ());
        let b = KLock::new(Arc::clone(&reg), "b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        for _ in 0..10 {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        assert_eq!(reg.violations().len(), 1, "one report for ten traversals");
        assert_eq!(reg.cycles_found(), 1);
    }

    /// Satellite: a successful trylock against the established order is
    /// not an ordering commitment — had the lock been held, the acquirer
    /// would have backed off rather than deadlocked.
    #[test]
    fn trylock_is_exempt_from_ordering() {
        let reg = LockRegistry::new();
        let a = TrackedMutex::new(&reg, "a", ());
        let b = TrackedMutex::new(&reg, "b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // a -> b
        }
        {
            let _gb = b.lock();
            let _ga = a.try_lock().expect("uncontended"); // reversed, but try
        }
        assert!(reg.violations().is_empty(), "{:?}", reg.violations());
    }

    /// …but a lock *held* via trylock does source edges for later
    /// blocking acquisitions: blocking while holding it can deadlock.
    #[test]
    fn trylock_held_lock_still_sources_edges() {
        let reg = LockRegistry::new();
        let a = TrackedMutex::new(&reg, "a", ());
        let b = TrackedMutex::new(&reg, "b", ());
        {
            let _ga = a.try_lock().expect("uncontended");
            let _gb = b.lock(); // records a -> b even though a came via try
        }
        {
            let _gb = b.lock();
            let _ga = a.lock(); // b -> a: inversion against the try-sourced edge
        }
        assert_eq!(reg.violations().len(), 1);
        assert!(matches!(
            reg.violations()[0],
            Violation::OrderInversion { a: "b", b: "a" }
        ));
    }

    #[test]
    fn held_across_blocking_io_flagged_once_per_class_and_op() {
        let reg = LockRegistry::new();
        let shard = TrackedMutex::new(&reg, "shard", ());
        let iolock = TrackedMutex::new_io_ok(&reg, "iolock", ());
        {
            let _s = shard.lock();
            let _i = iolock.lock();
            reg.note_blocking_io("write_block");
            reg.note_blocking_io("write_block"); // deduped
            reg.note_blocking_io("flush"); // distinct op: second report
        }
        let v = reg.violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v
            .iter()
            .all(|v| matches!(v, Violation::HeldAcrossIo { lock: "shard", .. })));
        reg.note_blocking_io("write_block");
        assert_eq!(reg.violations().len(), 2, "nothing held: no new report");
    }

    #[test]
    fn same_class_nesting_needs_increasing_rank() {
        let reg = LockRegistry::new();
        let s0 = TrackedMutex::new_ranked(&reg, "shard", 0, ());
        let s1 = TrackedMutex::new_ranked(&reg, "shard", 1, ());
        {
            let _a = s0.lock();
            let _b = s1.lock(); // ascending sweep: fine
        }
        assert!(reg.violations().is_empty());
        {
            let _b = s1.lock();
            let _a = s0.lock(); // descending: self-deadlock hazard
        }
        let v = reg.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(
            v[0],
            Violation::SameClassNesting { class: "shard" }
        ));
    }

    #[test]
    fn unranked_same_class_nesting_flagged() {
        let reg = LockRegistry::new();
        let x = TrackedMutex::new(&reg, "table", ());
        let y = TrackedMutex::new(&reg, "table", ());
        let _gx = x.lock();
        let _gy = y.lock();
        assert_eq!(reg.violations().len(), 1);
        assert!(matches!(
            reg.violations()[0],
            Violation::SameClassNesting { class: "table" }
        ));
    }

    #[test]
    fn disabled_registry_skips_graph_but_keeps_counters() {
        let reg = LockRegistry::new_disabled();
        let a = TrackedMutex::new(&reg, "a", ());
        let b = TrackedMutex::new(&reg, "b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock();
            reg.note_blocking_io("write_block");
        }
        assert!(reg.violations().is_empty(), "lockdep off: no findings");
        let stats = reg.class_stats();
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.acquisitions == 2));
    }

    #[test]
    fn class_stats_and_edges_snapshot() {
        let reg = LockRegistry::new();
        let a = TrackedMutex::new(&reg, "outer", ());
        let b = TrackedRwLock::new(&reg, "inner", 0u32);
        {
            let _ga = a.lock();
            let _gb = b.write();
        }
        {
            let _gb = b.read();
        }
        assert_eq!(reg.class_count(), 2);
        assert_eq!(reg.edges(), vec![("outer", "inner")]);
        let stats = reg.class_stats();
        let inner = stats.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.acquisitions, 2, "read and write both counted");
        assert_eq!(reg.cycles_found(), 0);
    }

    #[test]
    fn condvar_wait_releases_the_lock_for_ordering_purposes() {
        let reg = LockRegistry::new();
        let m = Arc::new(TrackedMutex::new(&reg, "group", false));
        let cv = Arc::new(Condvar::new());
        let waiter = {
            let m = Arc::clone(&m);
            let cv = Arc::clone(&cv);
            std::thread::spawn(move || {
                let mut g = m.lock();
                while !*g {
                    g.wait(&cv);
                }
            })
        };
        {
            let mut g = m.lock();
            *g = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
        assert!(reg.violations().is_empty());
    }
}
