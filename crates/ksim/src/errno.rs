//! Linux-style error numbers.
//!
//! The kernel's C interfaces report failure as negative `errno` values, often
//! punned into pointers (`ERR_PTR`). The safe interfaces in this workspace
//! use [`KResult`] instead; the legacy emulation in `sk-legacy` reproduces the
//! punning on top of this enum.

use std::fmt;

/// A Linux-style error number.
///
/// The numeric values match the classic Linux `errno` assignments so that the
/// legacy `ERR_PTR` emulation can pun them into machine words the same way
/// the kernel does (`(void *)-ENOENT` etc.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(i32)]
#[allow(missing_docs)]
pub enum Errno {
    EPERM = 1,
    ENOENT = 2,
    EIO = 5,
    ENXIO = 6,
    EBADF = 9,
    EAGAIN = 11,
    ENOMEM = 12,
    EACCES = 13,
    EFAULT = 14,
    EBUSY = 16,
    EEXIST = 17,
    ENODEV = 19,
    ENOTDIR = 20,
    EISDIR = 21,
    EINVAL = 22,
    ENFILE = 23,
    EMFILE = 24,
    EFBIG = 27,
    ENOSPC = 28,
    ESPIPE = 29,
    EROFS = 30,
    EMLINK = 31,
    EPIPE = 32,
    ERANGE = 34,
    ENAMETOOLONG = 36,
    ENOSYS = 38,
    ENOTEMPTY = 39,
    EOVERFLOW = 75,
    EBADMSG = 74,
    EPROTO = 71,
    ENOTSOCK = 88,
    EPROTONOSUPPORT = 93,
    EADDRINUSE = 98,
    EADDRNOTAVAIL = 99,
    ENETUNREACH = 101,
    ECONNRESET = 104,
    ENOBUFS = 105,
    EISCONN = 106,
    ENOTCONN = 107,
    ETIMEDOUT = 110,
    ECONNREFUSED = 111,
    EALREADY = 114,
    EINPROGRESS = 115,
    ESTALE = 116,
    EUCLEAN = 117,
}

impl Errno {
    /// Returns the numeric errno value (positive, as in `errno.h`).
    pub const fn as_i32(self) -> i32 {
        self as i32
    }

    /// Reconstructs an [`Errno`] from its numeric value.
    ///
    /// Unknown values map to [`Errno::EINVAL`]; the legacy `ERR_PTR` decoder
    /// relies on this being total.
    pub fn from_i32(v: i32) -> Errno {
        use Errno::*;
        match v {
            1 => EPERM,
            2 => ENOENT,
            5 => EIO,
            6 => ENXIO,
            9 => EBADF,
            11 => EAGAIN,
            12 => ENOMEM,
            13 => EACCES,
            14 => EFAULT,
            16 => EBUSY,
            17 => EEXIST,
            19 => ENODEV,
            20 => ENOTDIR,
            21 => EISDIR,
            22 => EINVAL,
            23 => ENFILE,
            24 => EMFILE,
            27 => EFBIG,
            28 => ENOSPC,
            29 => ESPIPE,
            30 => EROFS,
            31 => EMLINK,
            32 => EPIPE,
            34 => ERANGE,
            36 => ENAMETOOLONG,
            38 => ENOSYS,
            39 => ENOTEMPTY,
            71 => EPROTO,
            74 => EBADMSG,
            75 => EOVERFLOW,
            88 => ENOTSOCK,
            93 => EPROTONOSUPPORT,
            98 => EADDRINUSE,
            99 => EADDRNOTAVAIL,
            101 => ENETUNREACH,
            104 => ECONNRESET,
            105 => ENOBUFS,
            106 => EISCONN,
            107 => ENOTCONN,
            110 => ETIMEDOUT,
            111 => ECONNREFUSED,
            114 => EALREADY,
            115 => EINPROGRESS,
            116 => ESTALE,
            117 => EUCLEAN,
            _ => EINVAL,
        }
    }

    /// The symbolic name, e.g. `"ENOENT"`.
    pub fn name(self) -> &'static str {
        use Errno::*;
        match self {
            EPERM => "EPERM",
            ENOENT => "ENOENT",
            EIO => "EIO",
            ENXIO => "ENXIO",
            EBADF => "EBADF",
            EAGAIN => "EAGAIN",
            ENOMEM => "ENOMEM",
            EACCES => "EACCES",
            EFAULT => "EFAULT",
            EBUSY => "EBUSY",
            EEXIST => "EEXIST",
            ENODEV => "ENODEV",
            ENOTDIR => "ENOTDIR",
            EISDIR => "EISDIR",
            EINVAL => "EINVAL",
            ENFILE => "ENFILE",
            EMFILE => "EMFILE",
            EFBIG => "EFBIG",
            ENOSPC => "ENOSPC",
            ESPIPE => "ESPIPE",
            EROFS => "EROFS",
            EMLINK => "EMLINK",
            EPIPE => "EPIPE",
            ERANGE => "ERANGE",
            ENAMETOOLONG => "ENAMETOOLONG",
            ENOSYS => "ENOSYS",
            ENOTEMPTY => "ENOTEMPTY",
            EOVERFLOW => "EOVERFLOW",
            EBADMSG => "EBADMSG",
            EPROTO => "EPROTO",
            ENOTSOCK => "ENOTSOCK",
            EPROTONOSUPPORT => "EPROTONOSUPPORT",
            EADDRINUSE => "EADDRINUSE",
            EADDRNOTAVAIL => "EADDRNOTAVAIL",
            ENETUNREACH => "ENETUNREACH",
            ECONNRESET => "ECONNRESET",
            ENOBUFS => "ENOBUFS",
            EISCONN => "EISCONN",
            ENOTCONN => "ENOTCONN",
            ETIMEDOUT => "ETIMEDOUT",
            ECONNREFUSED => "ECONNREFUSED",
            EALREADY => "EALREADY",
            EINPROGRESS => "EINPROGRESS",
            ESTALE => "ESTALE",
            EUCLEAN => "EUCLEAN",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.as_i32())
    }
}

impl std::error::Error for Errno {}

/// Result type used by every safe interface in the workspace.
///
/// This is the paper's Step-2 replacement for `ERR_PTR`-style punning: a sum
/// type that can hold either valid data or an error, so no caller ever has to
/// remember to `IS_ERR()`-check a pointer.
pub type KResult<T> = Result<T, Errno>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_errnos() {
        for v in 1..=120 {
            let e = Errno::from_i32(v);
            // Every known errno must roundtrip; unknown values collapse to EINVAL.
            if e.as_i32() == v {
                assert_eq!(Errno::from_i32(e.as_i32()), e);
            } else {
                assert_eq!(e, Errno::EINVAL);
            }
        }
    }

    #[test]
    fn display_contains_name_and_number() {
        let s = format!("{}", Errno::ENOENT);
        assert!(s.contains("ENOENT"));
        assert!(s.contains('2'));
    }

    #[test]
    fn known_values_match_linux() {
        assert_eq!(Errno::ENOENT.as_i32(), 2);
        assert_eq!(Errno::EIO.as_i32(), 5);
        assert_eq!(Errno::EINVAL.as_i32(), 22);
        assert_eq!(Errno::ENOSPC.as_i32(), 28);
        assert_eq!(Errno::ECONNRESET.as_i32(), 104);
    }
}
